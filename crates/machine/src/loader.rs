//! Program loading: placing globals into the simulated memory.
//!
//! The loader walks every global's type under the given data layout and
//! writes its initializer leaves at their laid-out offsets — so the same
//! [`GlobalInit::Scalars`] works under any ABI, and the Fig. 4 layout
//! mismatch can be demonstrated by loading the same module under two
//! layouts.

use offload_ir::module::GlobalInit;
use offload_ir::{ConstValue, DataLayout, Module, Type};

use crate::mem::{BackingPolicy, MemError, Memory};
use crate::uva_map;
use crate::vm::{encode_scalar, RtVal};

/// A loaded program image: memory with initialized globals.
#[derive(Debug, Clone)]
pub struct Image {
    /// The initialized memory.
    pub mem: Memory,
    /// UVA address of each global, by [`offload_ir::GlobalId`] index.
    pub global_addrs: Vec<u64>,
    /// First free address after the globals segment.
    pub globals_end: u64,
}

/// Load failure.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    /// An initializer had the wrong number of leaves.
    BadInitializer {
        /// Global name.
        name: String,
    },
    /// Memory error while writing initializers.
    Mem(MemError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadInitializer { name } => write!(f, "bad initializer for global {name}"),
            LoadError::Mem(e) => write!(f, "load failed: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<MemError> for LoadError {
    fn from(e: MemError) -> Self {
        LoadError::Mem(e)
    }
}

/// Load `module`'s globals into a fresh demand-zero memory under `layout`,
/// resolving function-pointer initializers to **mobile** stub addresses
/// (the canonical image the offload runtime shares).
///
/// # Errors
///
/// Returns [`LoadError`] on malformed initializers.
pub fn load(module: &Module, layout: &DataLayout) -> Result<Image, LoadError> {
    load_at(
        module,
        layout,
        uva_map::GLOBALS_BASE,
        uva_map::MOBILE_FN_BASE,
    )
}

/// Like [`load`] but resolving function pointers to the *server* back-end's
/// stub addresses — for running a binary standalone on the server device
/// (the Table 1 desktop measurements). A mobile-loaded image executed on
/// the server bank faults on its own function-pointer tables, which is
/// precisely the §3.4 problem the function map tables solve.
pub fn load_for_server(module: &Module, layout: &DataLayout) -> Result<Image, LoadError> {
    load_at(
        module,
        layout,
        uva_map::GLOBALS_BASE,
        uva_map::SERVER_FN_BASE,
    )
}

/// Like [`load`], starting the globals segment at `base` and resolving
/// function pointers against `fn_base`.
///
/// # Errors
///
/// Returns [`LoadError`] on malformed initializers.
pub fn load_at(
    module: &Module,
    layout: &DataLayout,
    base: u64,
    fn_base: u64,
) -> Result<Image, LoadError> {
    load_at_into(
        module,
        layout,
        base,
        fn_base,
        Memory::new(BackingPolicy::DemandZero),
    )
}

/// Like [`load`] but initializing into `mem`, a memory recycled from a
/// finished session: the image is byte-identical to a fresh [`load`], but
/// steady-state loads reuse the pooled page frames instead of allocating.
///
/// # Errors
///
/// Returns [`LoadError`] on malformed initializers.
pub fn load_into(module: &Module, layout: &DataLayout, mem: Memory) -> Result<Image, LoadError> {
    load_at_into(
        module,
        layout,
        uva_map::GLOBALS_BASE,
        uva_map::MOBILE_FN_BASE,
        mem,
    )
}

fn load_at_into(
    module: &Module,
    layout: &DataLayout,
    base: u64,
    fn_base: u64,
    mut mem: Memory,
) -> Result<Image, LoadError> {
    mem.recycle(BackingPolicy::DemandZero);
    let mut cursor = base;
    let mut global_addrs = Vec::with_capacity(module.global_count());

    for (_, g) in module.iter_globals() {
        let align = layout.align_of(&g.ty, module).max(16);
        let size = layout.size_of(&g.ty, module);
        cursor = cursor.div_ceil(align) * align;
        global_addrs.push(cursor);
        cursor += size;
    }

    for ((_, g), addr) in module.iter_globals().zip(global_addrs.clone()) {
        match &g.init {
            GlobalInit::Zeroed => {
                // Demand-zero memory is already zero; force the pages
                // present so dirty tracking behaves uniformly.
                let size = layout.size_of(&g.ty, module);
                mem.write(addr, &vec![0u8; size as usize])?;
            }
            GlobalInit::Bytes(bytes) => {
                mem.write(addr, bytes)?;
            }
            GlobalInit::Scalars(leaves) => {
                let mut iter = leaves.iter();
                write_leaves(module, layout, fn_base, &mut mem, addr, &g.ty, &mut iter).map_err(
                    |_| LoadError::BadInitializer {
                        name: g.name.clone(),
                    },
                )?;
                if iter.next().is_some() {
                    return Err(LoadError::BadInitializer {
                        name: g.name.clone(),
                    });
                }
            }
        }
    }
    mem.clear_dirty();
    Ok(Image {
        mem,
        global_addrs,
        globals_end: cursor,
    })
}

fn write_leaves<'a>(
    module: &Module,
    layout: &DataLayout,
    fn_base: u64,
    mem: &mut Memory,
    addr: u64,
    ty: &Type,
    leaves: &mut impl Iterator<Item = &'a ConstValue>,
) -> Result<(), LoadError> {
    match ty {
        Type::Array(elem, len) => {
            let esize = layout.size_of(elem, module);
            for i in 0..*len {
                write_leaves(
                    module,
                    layout,
                    fn_base,
                    mem,
                    addr + i as u64 * esize,
                    elem,
                    leaves,
                )?;
            }
            Ok(())
        }
        Type::Struct(sid) => {
            let sl = layout.struct_layout(*sid, module);
            let fields = module.struct_def(*sid).fields.clone();
            for (field, off) in fields.iter().zip(&sl.offsets) {
                write_leaves(module, layout, fn_base, mem, addr + off, field, leaves)?;
            }
            Ok(())
        }
        scalar => {
            let leaf = leaves.next().ok_or(LoadError::BadInitializer {
                name: String::new(),
            })?;
            let v = match leaf {
                ConstValue::I8(v) => RtVal::I(*v as i64),
                ConstValue::I16(v) => RtVal::I(*v as i64),
                ConstValue::I32(v) => RtVal::I(*v as i64),
                ConstValue::I64(v) => RtVal::I(*v),
                ConstValue::F64(v) => RtVal::F(*v),
                ConstValue::Null(_) => RtVal::I(0),
                ConstValue::FuncAddr(f) => {
                    RtVal::I((fn_base + f.0 as u64 * uva_map::FN_STRIDE) as i64)
                }
                ConstValue::GlobalAddr(_) => {
                    // Cross-global addresses need the final address map; the
                    // loader handles them in a second pass below.
                    RtVal::I(0)
                }
            };
            let size = layout.size_of(scalar, module) as usize;
            let mut buf = [0u8; 8];
            encode_scalar(v, scalar, layout.endian, &mut buf[..size]);
            mem.write(addr, &buf[..size])?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_ir::{StructDef, TargetAbi};

    fn compile(src: &str) -> Module {
        offload_minic::compile(src, "t").unwrap()
    }

    #[test]
    fn loads_scalar_globals() {
        let m = compile("int x = 42; double d = 2.5; int main() { return 0; }");
        let layout = TargetAbi::MobileArm32.data_layout();
        let mut img = load(&m, &layout).unwrap();
        let xa = img.global_addrs[m.global_by_name("x").unwrap().0 as usize];
        let mut buf = [0u8; 4];
        img.mem.read(xa, &mut buf).unwrap();
        assert_eq!(i32::from_le_bytes(buf), 42);
    }

    #[test]
    fn loads_arrays_and_strings() {
        let m = compile("int primes[4] = {2,3,5,7}; char msg[4] = \"ok\"; int main(){return 0;}");
        let layout = TargetAbi::MobileArm32.data_layout();
        let mut img = load(&m, &layout).unwrap();
        let pa = img.global_addrs[m.global_by_name("primes").unwrap().0 as usize];
        let mut buf = [0u8; 16];
        img.mem.read(pa, &mut buf).unwrap();
        let vals: Vec<i32> = buf
            .chunks(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![2, 3, 5, 7]);
        let ma = img.global_addrs[m.global_by_name("msg").unwrap().0 as usize];
        let mut s = [0u8; 4];
        img.mem.read(ma, &mut s).unwrap();
        assert_eq!(&s, b"ok\0\0");
    }

    #[test]
    fn struct_fields_land_on_layout_offsets() {
        // The Fig. 4 Move struct: score must land at offset 8 under the
        // ARM (unified) layout and offset 4 under IA32.
        let mut m = Module::new("t");
        let sid = m.define_struct(StructDef {
            name: "Move".into(),
            fields: vec![Type::I8, Type::I8, Type::F64],
        });
        m.define_global(
            "mv",
            Type::Struct(sid),
            GlobalInit::Scalars(vec![
                ConstValue::I8(1),
                ConstValue::I8(2),
                ConstValue::F64(9.5),
            ]),
        );

        for (abi, score_off) in [
            (TargetAbi::MobileArm32, 8u64),
            (TargetAbi::ServerIa32, 4u64),
        ] {
            let layout = abi.data_layout();
            let mut img = load(&m, &layout).unwrap();
            let base = img.global_addrs[0];
            let mut buf = [0u8; 8];
            img.mem.read(base + score_off, &mut buf).unwrap();
            assert_eq!(f64::from_bits(u64::from_le_bytes(buf)), 9.5, "{abi}");
        }
    }

    #[test]
    fn function_pointer_tables_resolve_to_mobile_stubs() {
        let m = compile(
            "double half(double x) { return x / 2.0; }\n\
             double (*table[1])(double) = { half };\n\
             int main() { return 0; }",
        );
        let layout = TargetAbi::MobileArm32.data_layout();
        let mut img = load(&m, &layout).unwrap();
        let ta = img.global_addrs[m.global_by_name("table").unwrap().0 as usize];
        let mut buf = [0u8; 4];
        img.mem.read(ta, &mut buf).unwrap();
        let addr = u32::from_le_bytes(buf) as u64;
        let half = m.function_by_name("half").unwrap();
        assert_eq!(
            addr,
            uva_map::MOBILE_FN_BASE + half.0 as u64 * uva_map::FN_STRIDE
        );
    }

    #[test]
    fn load_into_recycled_memory_matches_fresh_load() {
        let m = compile("int xs[2000]; int y = 7; int main() { return 0; }");
        let layout = TargetAbi::MobileArm32.data_layout();
        let fresh = load(&m, &layout).unwrap();

        // Dirty a memory with unrelated pages, then recycle it through the
        // pooled entry point: the image must be byte-identical.
        let mut used = Memory::new(BackingPolicy::DemandZero);
        used.write(0x0DEA_D000, &[0xAA; 512]).unwrap();
        used.write(0x1_0000, &[0x55; 4096]).unwrap();
        let allocs_before = used.frame_allocs();
        let pooled = load_into(&m, &layout, used).unwrap();

        assert_eq!(pooled.global_addrs, fresh.global_addrs);
        assert_eq!(pooled.globals_end, fresh.globals_end);
        let fresh_pages: Vec<u64> = fresh.mem.present_pages().collect();
        let pooled_pages: Vec<u64> = pooled.mem.present_pages().collect();
        assert_eq!(fresh_pages, pooled_pages);
        for p in fresh_pages {
            assert_eq!(fresh.mem.page_bytes(p), pooled.mem.page_bytes(p));
        }
        assert_eq!(pooled.mem.dirty_count(), 0);
        assert!(
            pooled.mem.frame_allocs() >= allocs_before,
            "lifetime counter survives recycling"
        );
    }

    #[test]
    fn globals_are_clean_after_load() {
        let m = compile("int x = 1; int main() { return 0; }");
        let img = load(&m, &TargetAbi::MobileArm32.data_layout()).unwrap();
        assert_eq!(img.mem.dirty_count(), 0);
        assert!(img.mem.present_count() > 0);
    }
}
