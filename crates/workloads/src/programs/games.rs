//! Game-playing miniatures: `445.gobmk`, `458.sjeng`, `462.libquantum`.
//!
//! `458.sjeng` is the paper's flagship interactive program: `think` runs
//! once per move (3 invocations), dereferences the `evalRoutines` function
//! pointer table per node (the Fig. 7 translation overhead) and ships
//! 240 MB per invocation (slow-network refusal). `445.gobmk` dispatches
//! commands through a function-pointer array *and* reads its play-record
//! file remotely — the §5.2 program whose radio never sleeps (Fig. 8(b)).
//! `462.libquantum` is a plain compute loop over a modest state vector.

use crate::{PaperRow, WorkloadSpec};
use native_offloader::WorkloadInput;

const SJENG_SRC: &str = r#"
// 458.sjeng miniature: fixed-depth chess search with a function-pointer
// evaluation table and large search-history tables.
typedef int (*EVALF)(int);

char board[64];
int history[16384];
int trans[32768];
int seed;

int evalPawn(int sq)   { return 100 + (sq % 8); }
int evalKnight(int sq) { return 300 + (sq % 5); }
int evalBishop(int sq) { return 310 + (sq % 7); }
int evalRook(int sq)   { return 500 + (sq % 3); }
int evalQueen(int sq)  { return 900 + (sq % 9); }
int evalKing(int sq)   { return 10000 + (sq % 2); }
int evalEmpty(int sq)  { return 0; }

EVALF evalRoutines[7] = { evalEmpty, evalPawn, evalKnight, evalBishop,
                          evalRook, evalQueen, evalKing };

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

int think(int nodes) {
    int n; int sq; int score = 0; int h;
    EVALF eval;
    for (n = 0; n < nodes; n++) {
        sq = (n * 17 + seed) % 64;
        int piece = board[sq] % 7;
        if (piece < 0) piece = -piece;
        eval = (evalRoutines)[piece];
        score += eval(sq) % 1000;
        h = (score * 31 + sq) & 16383;
        history[h]++;
        trans[(score + n) & 32767] = score;
        if (history[h] > 3) score -= history[h] % 5;
        board[(sq + 1) % 64] = (char)((board[sq] + 1) % 7);
    }
    return score;
}

int main() {
    int nodes; int moves; int m; int i;
    scanf("%d %d", &nodes, &moves);
    seed = 2;
    for (i = 0; i < 64; i++) board[i] = (char)(i % 7);
    int total = 0;
    for (m = 0; m < moves; m++) {
        int s = think(nodes);
        total = (total + s) % 1000000;
        // the opponent's move arrives interactively
        int dummy;
        scanf("%d", &dummy);
        board[dummy % 64] = (char)(dummy % 7);
    }
    printf("line %d\n", total);
    return 0;
}
"#;

/// The `458.sjeng` miniature.
pub fn sjeng() -> WorkloadSpec {
    WorkloadSpec {
        name: "458.sjeng",
        short: "sjeng",
        description: "chess search with a function-pointer eval table (SPEC CPU2006)",
        source: SJENG_SRC,
        profile_input: || WorkloadInput::from_stdin("60000 3\n12 9 33\n"),
        eval_input: || WorkloadInput::from_stdin("130000 3\n7 22 41\n"),
        expected_target: "think",
        paper: PaperRow {
            loc_k: 10.5,
            exec_time_s: 950.8,
            offloaded_fns: (91, 144),
            referenced_gv: (495, 624),
            fn_ptr_uses: 1,
            target: "think",
            coverage_pct: 99.95,
            invocations: 3,
            traffic_mb_per_inv: 240.2,
            refused_on_slow: true,
        },
    }
}

const GOBMK_SRC: &str = r#"
// 445.gobmk miniature: Go engine command loop. Commands arrive from a
// play-record file read *inside* the offloaded region (remote input), and
// each command dispatches through the `commands` function-pointer table.
typedef int (*CMDF)(int);

char record[2048];
char goboard[361];
int seed;

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

int cmd_play(int arg) {
    goboard[arg % 361] = (char)(1 + arg % 2);
    return 1;
}
int cmd_score(int arg) {
    int i; int s = 0;
    for (i = 0; i < 361; i++) s += goboard[i] * ((i + arg) % 3);
    return s;
}
int cmd_undo(int arg) {
    goboard[arg % 361] = 0;
    return 2;
}
int cmd_est(int arg) {
    int i; int s = 0;
    for (i = 0; i < 361; i++) s += (goboard[i] + arg) % 5;
    return s;
}

CMDF commands[4] = { cmd_play, cmd_score, cmd_undo, cmd_est };

int gtp_main_loop(int rounds) {
    int r; int k; int total = 0;
    int fd = fopen("record.sgf", "r");
    for (r = 0; r < rounds; r++) {
        // Fetch the next chunk of the play record (a remote input per
        // round when running on the server).
        long got = fread(record, 1, 2048, fd);
        if (got < 1) break;
        for (k = 0; k < 2048; k++) {
            int c = record[k];
            if (c < 0) c = c + 256;
            CMDF f = (commands)[c % 4];
            total = (total + f(c)) % 1000000;
            int probe;
            for (probe = 0; probe < 24; probe++) total = (total + probe * c) % 1000000;
        }
    }
    fclose(fd);
    return total;
}

int main() {
    int rounds; int i;
    scanf("%d", &rounds);
    seed = 4;
    for (i = 0; i < 361; i++) goboard[i] = 0;
    int t = gtp_main_loop(rounds);
    printf("game %d\n", t);
    return 0;
}
"#;

fn record_file(chunks: usize) -> Vec<u8> {
    (0..2048 * chunks)
        .map(|i| ((i as u32).wrapping_mul(2246822519) >> 24) as u8)
        .collect()
}

/// The `445.gobmk` miniature.
pub fn gobmk() -> WorkloadSpec {
    WorkloadSpec {
        name: "445.gobmk",
        short: "gobmk",
        description: "Go engine with remote play-record input and fn-ptr commands (SPEC CPU2006)",
        source: GOBMK_SRC,
        profile_input: || WorkloadInput::from_stdin("8\n").with_file("record.sgf", record_file(8)),
        eval_input: || WorkloadInput::from_stdin("18\n").with_file("record.sgf", record_file(18)),
        expected_target: "gtp_main_loop",
        paper: PaperRow {
            loc_k: 156.3,
            exec_time_s: 361.8,
            offloaded_fns: (6, 2679),
            referenced_gv: (21844, 22090),
            fn_ptr_uses: 77,
            target: "gtp_main_loop",
            coverage_pct: 99.96,
            invocations: 1,
            traffic_mb_per_inv: 25.7,
            refused_on_slow: false,
        },
    }
}

const LIBQUANTUM_SRC: &str = r#"
// 462.libquantum miniature: quantum register simulation of modular
// exponentiation (Shor's kernel).
int state_re[4096];
int state_im[4096];
int seed;

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

long quantum_exp_mod_n(int gates) {
    int g; int i;
    long phase = 0;
    for (g = 0; g < gates; g++) {
        int mask = 1 << (g % 12);
        for (i = 0; i < 4096; i++) {
            if ((i & mask) != 0) {
                int tr = state_re[i];
                state_re[i] = -state_im[i];
                state_im[i] = tr;
            }
            phase += state_re[i] % 3;
        }
    }
    return phase;
}

int main() {
    int gates; int i;
    scanf("%d", &gates);
    seed = 77;
    for (i = 0; i < 4096; i++) {
        state_re[i] = rnd() % 256 - 128;
        state_im[i] = rnd() % 256 - 128;
    }
    long p = quantum_exp_mod_n(gates);
    printf("phase %d\n", (int)(p % 100000));
    return 0;
}
"#;

/// The `462.libquantum` miniature.
pub fn libquantum() -> WorkloadSpec {
    WorkloadSpec {
        name: "462.libquantum",
        short: "libquantum",
        description: "quantum register simulation (SPEC CPU2006)",
        source: LIBQUANTUM_SRC,
        profile_input: || WorkloadInput::from_stdin("60\n"),
        eval_input: || WorkloadInput::from_stdin("140\n"),
        expected_target: "quantum_exp_mod_n",
        paper: PaperRow {
            loc_k: 2.6,
            exec_time_s: 71.0,
            offloaded_fns: (62, 116),
            referenced_gv: (0, 44),
            fn_ptr_uses: 0,
            target: "quantum_exp_mod_n",
            coverage_pct: 92.56,
            invocations: 1,
            traffic_mb_per_inv: 6.3,
            refused_on_slow: false,
        },
    }
}
