//! Prediction layer for speculative page streaming.
//!
//! The streamer ([`offload_net::StreamWindow`]) models the link; this
//! module decides *which* pages to push onto it, and how many. Three
//! predictors are selectable per session (plus `off`):
//!
//! * **static** — the profiler's §4 prefetch set, streamed lazily instead
//!   of shipped up front (useful when `prefetch` is disabled or the set is
//!   too big to pay for at initialization);
//! * **stride** — a run detector over the server VM's page-access
//!   sequence (TLB-miss feed from `offload_machine::mem`), predicting
//!   continuations of constant-stride scans;
//! * **history** — a Markov page-succession table seeded from a prior
//!   session's trace: each demand fault chains to the page that faulted
//!   next last time.
//!
//! All predictors are deterministic: ties in the history table break
//! toward the smallest page, the stride detector is a pure function of
//! the observed sequence, and the adaptive window adjusts with integer
//! arithmetic only.

use std::collections::BTreeMap;
use std::sync::Arc;

use offload_net::StreamWindow;
use offload_obs::{EventKind, Record, Span};

/// Which predictor feeds the streamer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamMode {
    /// No streaming: the synchronous demand path, bit-identical to the
    /// pre-streaming runtime.
    #[default]
    Off,
    /// Stream the profiler's static prefetch set.
    Static,
    /// Stream constant-stride continuations of the observed access run.
    Stride,
    /// Stream the Markov successor chain from a prior session's trace.
    History,
}

impl StreamMode {
    /// Stable lowercase name (CLI + bench artifact key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StreamMode::Off => "off",
            StreamMode::Static => "static",
            StreamMode::Stride => "stride",
            StreamMode::History => "history",
        }
    }

    /// Parse a CLI name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(StreamMode::Off),
            "static" => Some(StreamMode::Static),
            "stride" => Some(StreamMode::Stride),
            "history" => Some(StreamMode::History),
            _ => None,
        }
    }

    /// All modes in ablation order.
    pub const ALL: [StreamMode; 4] = [
        StreamMode::Off,
        StreamMode::Static,
        StreamMode::Stride,
        StreamMode::History,
    ];
}

/// Markov page-succession table: for each page, how often each other page
/// faulted right after it.
#[derive(Debug, Clone, Default)]
pub struct PageHistory {
    succ: BTreeMap<u64, BTreeMap<u64, u64>>,
}

impl PageHistory {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one observed succession.
    pub fn observe(&mut self, prev: u64, next: u64) {
        if prev != next {
            *self.succ.entry(prev).or_default().entry(next).or_default() += 1;
        }
    }

    /// Seed the table from a prior session's trace. Each
    /// [`EventKind::DemandFault`] batch is expanded to its page run
    /// (`page .. page+pages`) — fault-ahead batches pull sequential
    /// successors by construction — and consecutive pages chain, across
    /// batches too. Chains reset at each offload boundary so the last
    /// page of one invocation does not "predict" the first of the next.
    #[must_use]
    pub fn from_records(records: &[Record]) -> Self {
        let mut h = Self::new();
        let mut prev: Option<u64> = None;
        for rec in records {
            match rec.kind {
                EventKind::Begin(Span::Offload { .. }) => prev = None,
                EventKind::DemandFault { page, pages, .. } => {
                    for i in 0..u64::from(pages.max(1)) {
                        let cur = page + i;
                        if let Some(p) = prev {
                            h.observe(p, cur);
                        }
                        prev = Some(cur);
                    }
                }
                _ => {}
            }
        }
        h
    }

    /// The most frequent successor of `page` (ties break toward the
    /// smallest page number — deterministic).
    #[must_use]
    pub fn successor(&self, page: u64) -> Option<u64> {
        let succ = self.succ.get(&page)?;
        let mut best: Option<(u64, u64)> = None;
        for (&next, &count) in succ {
            match best {
                Some((_, best_count)) if count <= best_count => {}
                _ => best = Some((next, count)),
            }
        }
        best.map(|(next, _)| next)
    }

    /// `true` if no successions were observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }
}

/// Constant-stride run detector over the page-access sequence.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrideDetector {
    last: Option<u64>,
    stride: i64,
    run_len: u32,
}

impl StrideDetector {
    /// Feed one accessed page.
    pub fn observe(&mut self, page: u64) {
        if let Some(last) = self.last {
            if page != last {
                let stride = page.wrapping_sub(last) as i64;
                if stride == self.stride {
                    self.run_len = self.run_len.saturating_add(1);
                } else {
                    self.stride = stride;
                    self.run_len = 1;
                }
            }
        }
        self.last = Some(page);
    }

    /// Predicted continuation of the current run (up to `n` pages), empty
    /// unless at least two consecutive equal strides were seen.
    #[must_use]
    pub fn predict(&self, n: usize) -> Vec<u64> {
        let Some(last) = self.last else {
            return Vec::new();
        };
        if self.run_len < 2 || self.stride == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(n);
        let mut cur = last;
        for _ in 0..n {
            let Some(next) = cur.checked_add_signed(self.stride) else {
                break;
            };
            out.push(next);
            cur = next;
        }
        out
    }
}

/// Waste-driven streaming window: widens while predictions land, narrows
/// when streamed pages go untouched.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveWindow {
    window: u64,
    min: u64,
    max: u64,
}

/// Widest window the controller will open.
pub const MAX_STREAM_WINDOW: u64 = 64;

impl AdaptiveWindow {
    /// A controller starting at `start` pages (clamped to `[1, 64]`).
    #[must_use]
    pub fn new(start: u64) -> Self {
        AdaptiveWindow {
            window: start.clamp(1, MAX_STREAM_WINDOW),
            min: 1,
            max: MAX_STREAM_WINDOW,
        }
    }

    /// The current window, pages.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Fold in one offload's outcome: `wasted` of `streamed` pages went
    /// untouched. Waste above 25% halves the window; below 10% doubles
    /// it (integer arithmetic — deterministic).
    pub fn observe_offload(&mut self, streamed: u64, wasted: u64) {
        if streamed == 0 {
            return;
        }
        if wasted * 4 > streamed {
            self.window = (self.window / 2).max(self.min);
        } else if wasted * 10 < streamed {
            self.window = (self.window * 2).min(self.max);
        }
    }
}

/// The per-session streaming engine: predictor state, the adaptive
/// window, and the in-flight link model, bundled so the session threads
/// one value through its offloads.
#[derive(Debug, Clone)]
pub struct StreamEngine {
    mode: StreamMode,
    /// Waste-feedback window controller.
    pub window: AdaptiveWindow,
    /// Stride-run detector (fed by faults and the VM access log).
    pub stride: StrideDetector,
    history: Option<Arc<PageHistory>>,
    /// Pages currently occupying the link.
    pub in_flight: StreamWindow,
    /// Pages streamed during the current offload (controller feedback).
    pub streamed_this_offload: u64,
    /// Certified read pages of the active region (set per offload by the
    /// session when a precise certificate is available). `Static` and
    /// `History` fall back to these when their primary source runs dry —
    /// the certificate proves the region may read them, so streaming
    /// them early can only convert future demand faults into hits.
    /// Empty when certificates are off: candidate lists (and therefore
    /// wire traffic and timing) are bit-identical to the uncertified run.
    pub seed: Vec<u64>,
}

impl StreamEngine {
    /// An engine in `mode`, starting the window at `fault_ahead`.
    #[must_use]
    pub fn new(mode: StreamMode, fault_ahead: u64, history: Option<Arc<PageHistory>>) -> Self {
        StreamEngine {
            mode,
            window: AdaptiveWindow::new(fault_ahead.max(1)),
            stride: StrideDetector::default(),
            history,
            in_flight: StreamWindow::new(),
            streamed_this_offload: 0,
            seed: Vec::new(),
        }
    }

    /// The configured mode.
    #[must_use]
    pub fn mode(&self) -> StreamMode {
        self.mode
    }

    /// `true` if any predictor is active. When `false` the session takes
    /// the synchronous path untouched (bit-identical timing).
    #[must_use]
    pub fn active(&self) -> bool {
        self.mode != StreamMode::Off
    }

    /// Predicted pages to stream after a fault on `fault_page`, at most
    /// filling the adaptive window's remaining in-flight capacity.
    /// `static_list` is the task's profile prefetch set; `eligible`
    /// answers whether a page can usefully ship (present on the mobile,
    /// not server-private, absent on the server). In-flight pages and the
    /// fault page itself are always excluded.
    #[must_use]
    pub fn candidates(
        &self,
        fault_page: u64,
        static_list: &[u64],
        eligible: &dyn Fn(u64) -> bool,
    ) -> Vec<u64> {
        let capacity = self
            .window
            .window()
            .saturating_sub(self.in_flight.len() as u64) as usize;
        if capacity == 0 {
            return Vec::new();
        }
        let usable = |p: u64| p != fault_page && !self.in_flight.contains(p) && eligible(p);
        match self.mode {
            StreamMode::Off => Vec::new(),
            StreamMode::Static => {
                let mut out: Vec<u64> = static_list
                    .iter()
                    .copied()
                    .filter(|&p| usable(p))
                    .take(capacity)
                    .collect();
                // Top up from the certified read set once the profile
                // list is exhausted (no-op when the seed is empty).
                for &p in &self.seed {
                    if out.len() == capacity {
                        break;
                    }
                    if usable(p) && !out.contains(&p) {
                        out.push(p);
                    }
                }
                out
            }
            StreamMode::Stride => self
                .stride
                .predict(MAX_STREAM_WINDOW as usize)
                .into_iter()
                .filter(|&p| usable(p))
                .take(capacity)
                .collect(),
            StreamMode::History => {
                let Some(history) = &self.history else {
                    return Vec::new();
                };
                let mut out = Vec::with_capacity(capacity);
                let mut seen = std::collections::BTreeSet::new();
                let mut cur = fault_page;
                // Walk the successor chain; the walk budget is generous so
                // present/in-flight links are skipped over, while `seen`
                // guards against cycles.
                for _ in 0..(MAX_STREAM_WINDOW as usize * 4) {
                    let Some(next) = history.successor(cur) else {
                        break;
                    };
                    if !seen.insert(next) {
                        break;
                    }
                    if usable(next) {
                        out.push(next);
                        if out.len() == capacity {
                            break;
                        }
                    }
                    cur = next;
                }
                // Top up from the certified read set when the Markov
                // chain runs out of successors.
                for &p in &self.seed {
                    if out.len() == capacity {
                        break;
                    }
                    if usable(p) && !out.contains(&p) {
                        out.push(p);
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(ts: f64, page: u64, pages: u32) -> Record {
        Record {
            ts_s: ts,
            kind: EventKind::DemandFault {
                page,
                pages,
                window: 8,
                duration_s: 0.001,
            },
        }
    }

    #[test]
    fn history_learns_batch_runs_and_cross_batch_links() {
        let recs = vec![fault(0.0, 10, 3), fault(0.1, 20, 2)];
        let h = PageHistory::from_records(&recs);
        assert_eq!(h.successor(10), Some(11));
        assert_eq!(h.successor(11), Some(12));
        assert_eq!(h.successor(12), Some(20)); // cross-batch link
        assert_eq!(h.successor(20), Some(21));
        assert_eq!(h.successor(21), None);
    }

    #[test]
    fn history_chains_reset_at_offload_boundaries() {
        let recs = vec![
            fault(0.0, 5, 1),
            Record {
                ts_s: 0.2,
                kind: EventKind::Begin(Span::Offload { task: 1 }),
            },
            fault(0.3, 40, 1),
        ];
        let h = PageHistory::from_records(&recs);
        assert_eq!(h.successor(5), None, "no link across offloads");
    }

    #[test]
    fn history_ties_break_toward_the_smallest_page() {
        let mut h = PageHistory::new();
        h.observe(1, 9);
        h.observe(1, 3);
        assert_eq!(h.successor(1), Some(3));
        h.observe(1, 9);
        assert_eq!(h.successor(1), Some(9), "higher count wins");
    }

    #[test]
    fn stride_detects_runs_and_ignores_noise() {
        let mut s = StrideDetector::default();
        s.observe(10);
        assert!(s.predict(4).is_empty(), "one sample is no run");
        s.observe(12);
        assert!(s.predict(4).is_empty(), "one stride is no run");
        s.observe(14);
        assert_eq!(s.predict(3), vec![16, 18, 20]);
        s.observe(99); // run broken
        assert!(s.predict(3).is_empty());
        // Repeated same-page accesses neither break nor extend a run.
        s.observe(99);
        assert!(s.predict(3).is_empty());
    }

    #[test]
    fn stride_runs_downward_too() {
        let mut s = StrideDetector::default();
        for p in [100u64, 98, 96] {
            s.observe(p);
        }
        assert_eq!(s.predict(2), vec![94, 92]);
    }

    #[test]
    fn adaptive_window_reacts_to_waste() {
        let mut w = AdaptiveWindow::new(8);
        assert_eq!(w.window(), 8);
        w.observe_offload(10, 0); // 0% waste: double
        assert_eq!(w.window(), 16);
        w.observe_offload(10, 5); // 50% waste: halve
        assert_eq!(w.window(), 8);
        w.observe_offload(10, 2); // 20% waste: hold
        assert_eq!(w.window(), 8);
        w.observe_offload(0, 0); // nothing streamed: hold
        assert_eq!(w.window(), 8);
        for _ in 0..10 {
            w.observe_offload(10, 10);
        }
        assert_eq!(w.window(), 1, "floor");
        for _ in 0..10 {
            w.observe_offload(10, 0);
        }
        assert_eq!(w.window(), MAX_STREAM_WINDOW, "ceiling");
    }

    #[test]
    fn engine_candidates_respect_mode_capacity_and_eligibility() {
        let all = |_: u64| true;
        let engine = StreamEngine::new(StreamMode::Off, 8, None);
        assert!(engine.candidates(1, &[2, 3], &all).is_empty());

        let engine = StreamEngine::new(StreamMode::Static, 2, None);
        let c = engine.candidates(1, &[1, 4, 5, 6], &all);
        assert_eq!(c, vec![4, 5], "fault page skipped, capacity capped");
        let c = engine.candidates(1, &[4, 5], &|p| p != 4);
        assert_eq!(c, vec![5], "ineligible pages skipped");

        let mut engine = StreamEngine::new(StreamMode::Stride, 4, None);
        for p in [7u64, 8, 9] {
            engine.stride.observe(p);
        }
        assert_eq!(engine.candidates(9, &[], &all), vec![10, 11, 12, 13]);

        let mut h = PageHistory::new();
        h.observe(1, 2);
        h.observe(2, 3);
        h.observe(3, 4);
        let engine = StreamEngine::new(StreamMode::History, 2, Some(Arc::new(h)));
        assert_eq!(engine.candidates(1, &[], &all), vec![2, 3]);
        // Present pages are skipped over, the chain continues past them.
        assert_eq!(engine.candidates(1, &[], &|p| p != 2), vec![3, 4]);
    }

    #[test]
    fn engine_capacity_shrinks_with_in_flight_pages() {
        let link = offload_net::Link::ideal();
        let mut engine = StreamEngine::new(StreamMode::Static, 2, None);
        engine.in_flight.schedule(0.0, 50, 100, &link);
        let c = engine.candidates(1, &[50, 60, 70], &|_| true);
        assert_eq!(c, vec![60], "in-flight excluded, capacity reduced");
    }
}
