//! A tiny deterministic PRNG for tests and input generation.
//!
//! The suite must be hermetic: no external crates, no wall-clock or OS
//! entropy, bit-identical streams on every platform. This is Steele,
//! Lea & Flood's **splitmix64** — 64 bits of state, one round of mixing
//! per draw, passes BigCrush — which is all the fuzz loops in this
//! workspace need. Seeds are fixed in each test, so a failure reproduces
//! by re-running the test.

/// A splitmix64 generator.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`. Returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Multiply-shift range reduction (Lemire); the tiny modulo
            // bias of the naive `%` would be harmless here, but this is
            // just as cheap.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fill `buf` with uniform bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A vector of `len` uniform bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_matches_splitmix64() {
        // First outputs for seed 1234567, from the published reference
        // implementation.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 0x599e_d017_fb08_fc85);
        let mut r0 = SplitMix64::new(0);
        assert_eq!(r0.next_u64(), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = SplitMix64::new(42);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn range_and_unit_are_bounded() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_is_deterministic() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        assert_eq!(a.bytes(37), b.bytes(37));
        assert_ne!(a.bytes(16), SplitMix64::new(10).bytes(16));
    }
}
