//! The hot function/loop profiler (§3.1).
//!
//! Runs the unmodified application on the simulated mobile device with a
//! *profiling input*, measuring execution time, invocation count and
//! memory usage of every function and natural loop — the inputs to the
//! static performance estimator (Table 3).

use offload_ir::analysis::LoopForest;
use offload_ir::{BlockId, FuncId, Module};
use offload_machine::host::LocalHost;
use offload_machine::loader;
use offload_machine::vm::{StackBank, Vm, VmError};

use crate::config::{CompileConfig, WorkloadInput};
use crate::OffloadError;

/// A profiled region: a whole function, or one natural loop inside one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RegionKey {
    /// A function.
    Function(FuncId),
    /// A natural loop, identified by its containing function and header.
    Loop {
        /// Containing function.
        func: FuncId,
        /// Loop header block.
        header: BlockId,
    },
}

/// Measured statistics of one region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionStats {
    /// Display name (`getAITurn`, `getAITurn_loop1`, ...).
    pub name: String,
    /// Mobile cycles spent in the region (inclusive for functions; body
    /// instruction cycles for loops).
    pub cycles: u64,
    /// Times the region was entered (function calls; loop entries from
    /// outside the loop, *not* back-edge iterations).
    pub invocations: u64,
    /// Memory footprint in bytes (pages touched × page size).
    pub mem_bytes: u64,
    /// The touched pages themselves (the §4 prefetch set).
    pub pages: Vec<u64>,
}

/// Complete profile of one run.
#[derive(Debug, Clone)]
pub struct ProfileData {
    /// Total mobile cycles of the run.
    pub total_cycles: u64,
    /// Mobile clock, for converting cycles to seconds.
    pub clock_hz: u64,
    /// Region statistics.
    pub regions: Vec<(RegionKey, RegionStats)>,
    /// Console output of the profiling run (for sanity checks).
    pub console: Vec<u8>,
}

impl ProfileData {
    /// Stats for a region.
    pub fn get(&self, key: &RegionKey) -> Option<&RegionStats> {
        self.regions.iter().find(|(k, _)| k == key).map(|(_, s)| s)
    }

    /// Seconds for `cycles` on the profiled device.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }
}

/// Profile `module` on the mobile device described by `config`.
///
/// # Errors
///
/// Propagates front-end/loader/VM failures; the profiling input must let
/// the program run to completion.
pub fn profile_module(
    module: &Module,
    input: &WorkloadInput,
    config: &CompileConfig,
) -> Result<ProfileData, OffloadError> {
    let image = loader::load(module, &config.mobile.data_layout())?;
    let mut host = LocalHost::new();
    host.set_stdin(input.stdin.clone());
    for (name, data) in &input.files {
        host.add_file(name.clone(), data.clone());
    }
    let mut vm = Vm::new(module, &config.mobile, image, StackBank::Mobile);
    vm.set_fuel(config.profile_fuel);
    vm.enable_profile();
    match vm.run_entry(&mut host) {
        Ok(_) | Err(VmError::Exit { .. }) => {}
        Err(e) => return Err(OffloadError::Vm(e)),
    }
    let collector = vm.profile.take().expect("profiling was enabled");
    let total_cycles = vm.clock.cycles;

    let mut regions = Vec::new();
    for (id, func) in module.iter_functions() {
        if func.is_declaration() {
            continue;
        }
        let Some(fp) = collector.funcs.get(&id) else {
            continue; // never executed
        };
        regions.push((
            RegionKey::Function(id),
            RegionStats {
                name: func.name.clone(),
                cycles: fp.inclusive_cycles,
                invocations: fp.invocations,
                mem_bytes: fp.pages.len() as u64 * offload_machine::PAGE_SIZE,
                pages: fp.pages.iter().copied().collect(),
            },
        ));

        // Natural loops of this function.
        let forest = LoopForest::compute(func);
        for (li, l) in forest.loops.iter().enumerate() {
            let cycles: u64 = l
                .body
                .iter()
                .filter_map(|bb| collector.block_cycles.get(&(id, *bb)))
                .sum();
            if cycles == 0 {
                continue;
            }
            // Loop invocations = entries into the header along edges from
            // outside the loop body.
            let invocations: u64 = collector
                .edge_counts
                .iter()
                .filter(|((f, from, to), _)| *f == id && *to == l.header && !l.body.contains(from))
                .map(|(_, n)| *n)
                .sum::<u64>()
                .max(u64::from(
                    collector.block_counts.contains_key(&(id, l.header)),
                ));
            regions.push((
                RegionKey::Loop {
                    func: id,
                    header: l.header,
                },
                RegionStats {
                    name: format!("{}_loop{}", func.name, li),
                    cycles,
                    invocations,
                    mem_bytes: fp.pages.len() as u64 * offload_machine::PAGE_SIZE,
                    pages: fp.pages.iter().copied().collect(),
                },
            ));
        }
    }

    Ok(ProfileData {
        total_cycles,
        clock_hz: config.mobile.clock_hz,
        regions,
        console: host.console().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(src: &str, stdin: &str) -> (Module, ProfileData) {
        let module = offload_minic::compile(src, "t").unwrap();
        let data = profile_module(
            &module,
            &WorkloadInput::from_stdin(stdin),
            &CompileConfig::default(),
        )
        .unwrap();
        (module, data)
    }

    const NESTED: &str = "
        int work(int n) {
            int i; int j; int acc = 0;
            for (i = 0; i < n; i++)
                for (j = 0; j < 50; j++)
                    acc += (i ^ j);
            return acc;
        }
        int main() {
            int r = 0; int k;
            for (k = 0; k < 3; k++) r += work(40);
            printf(\"%d\\n\", r);
            return 0;
        }";

    #[test]
    fn function_stats_match_structure() {
        let (module, data) = profile(NESTED, "");
        let work = module.function_by_name("work").unwrap();
        let s = data.get(&RegionKey::Function(work)).unwrap();
        assert_eq!(s.invocations, 3);
        assert!(s.cycles > 0);
        assert!(s.mem_bytes > 0);
        let main = module.entry.unwrap();
        let m = data.get(&RegionKey::Function(main)).unwrap();
        assert!(m.cycles >= s.cycles, "main includes work");
        assert!(data.total_cycles >= m.cycles);
    }

    #[test]
    fn loop_stats_distinguish_outer_and_inner() {
        let (module, data) = profile(NESTED, "");
        let work = module.function_by_name("work").unwrap();
        let loops: Vec<&RegionStats> = data
            .regions
            .iter()
            .filter_map(|(k, s)| match k {
                RegionKey::Loop { func, .. } if *func == work => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(loops.len(), 2, "work has an outer and an inner loop");
        let outer = loops
            .iter()
            .find(|s| s.invocations == 3)
            .expect("outer entered per call");
        let inner = loops
            .iter()
            .find(|s| s.invocations == 3 * 40)
            .expect("inner entered per outer iteration");
        // The chess-example shape (Table 3): similar cycles, wildly
        // different invocation counts.
        assert!(inner.cycles <= outer.cycles);
        assert!(inner.invocations > outer.invocations * 10);
    }

    #[test]
    fn unexecuted_functions_are_absent() {
        let (module, data) = profile("int dead(int x) { return x; } int main() { return 0; }", "");
        let dead = module.function_by_name("dead").unwrap();
        assert!(data.get(&RegionKey::Function(dead)).is_none());
    }

    #[test]
    fn console_is_captured() {
        let (_, data) = profile(NESTED, "");
        assert!(!data.console.is_empty());
    }
}
