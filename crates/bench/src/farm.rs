//! `reproduce farm` — the concurrent-session throughput benchmark
//! behind `BENCH_pr4.json`.
//!
//! The farm runs the 18-program suite (17 miniatures + chess), repeated
//! `repeat` times, across a sweep of worker counts. Two kinds of numbers
//! come out:
//!
//! * **Simulated throughput** (gateable): per-session durations are the
//!   deterministic simulated `total_seconds` of each report. Suite
//!   makespan at N workers is computed by greedy list-scheduling those
//!   durations in submission order onto the least-loaded worker — the
//!   same queue discipline the real farm uses — so `speedup` and
//!   `sessions_per_s` are bit-reproducible and CI can gate on them.
//! * **Host wall-clock** (informational): how long each farm run took on
//!   this machine. Never gated — host clocks vary, and a single-core
//!   runner cannot show parallel speedup anyway.
//!
//! Every farm run is also checked byte-identical to the first
//! (`reports_equal` field by field), so the benchmark doubles as an
//! equivalence sweep.

use std::fmt::Write as _;
use std::time::Instant;

use native_offloader::runtime::farm::{reports_equal, run_farm, FarmJob};
use native_offloader::{CompiledApp, Offloader, SessionConfig, WorkloadInput};

/// The benchmark suite: name, compiled app, evaluation input.
#[must_use]
pub fn suite() -> Vec<(String, CompiledApp, WorkloadInput)> {
    let mut v = Vec::new();
    let chess_input = offload_workloads::chess::input(9, 2);
    let chess = Offloader::new()
        .compile_source(offload_workloads::chess::SOURCE, "chess", &chess_input)
        .expect("chess compiles");
    v.push(("chess".to_string(), chess, chess_input));
    for w in offload_workloads::all() {
        let app = w.compile().expect("miniature compiles");
        v.push((w.name.to_string(), app, (w.eval_input)()));
    }
    v
}

/// `repeat` copies of every suite entry, in round-robin submission order
/// (pass 0 of all apps, then pass 1, ...), on the fast network.
#[must_use]
pub fn make_jobs<'a>(
    suite: &'a [(String, CompiledApp, WorkloadInput)],
    repeat: usize,
) -> Vec<FarmJob<'a>> {
    let mut jobs = Vec::with_capacity(suite.len() * repeat.max(1));
    for _ in 0..repeat.max(1) {
        for (_, app, input) in suite {
            jobs.push(FarmJob {
                app,
                input: input.clone(),
                cfg: SessionConfig::fast_network(),
            });
        }
    }
    jobs
}

/// Greedy list-scheduled makespan: place each duration, in submission
/// order, on the currently least-loaded of `workers` workers (ties go to
/// the lowest worker id). This models the farm's atomic job queue on
/// simulated time and is fully deterministic.
#[must_use]
pub fn list_schedule_makespan(durations: &[f64], workers: usize) -> f64 {
    // The greedy loop this bench used through PR 7 now lives in the event
    // engine as its atomic mode (one whole-session CPU grant per event),
    // which performs the identical per-worker additions in the identical
    // order — the makespan is bit-for-bit the same, so the committed
    // BENCH_pr4.json gate holds across the engine swap.
    native_offloader::runtime::evloop::atomic_makespan(durations, workers)
}

/// One worker-count row of the farm benchmark.
#[derive(Debug, Clone)]
pub struct FarmRow {
    /// Worker threads.
    pub workers: usize,
    /// Simulated suite makespan under list scheduling, seconds.
    pub makespan_s: f64,
    /// Simulated suite throughput: jobs / makespan.
    pub sessions_per_s: f64,
    /// Simulated speedup vs the serial makespan.
    pub speedup: f64,
    /// Host wall-clock of the farm run, milliseconds (informational).
    pub host_ms: u64,
}

/// The whole farm benchmark artifact.
#[derive(Debug, Clone)]
pub struct FarmBench {
    /// Total jobs per run.
    pub jobs: usize,
    /// Serial suite time: sum of all simulated session durations.
    pub serial_s: f64,
    /// Per-job simulated durations in submission order — the input the
    /// list scheduler (and the worker-utilization dashboard) replays.
    pub durations: Vec<f64>,
    /// One row per requested worker count.
    pub rows: Vec<FarmRow>,
}

/// Run the farm at every count in `worker_counts`, verifying each run is
/// byte-identical to the first, and derive the simulated throughput rows.
///
/// # Panics
///
/// If a session fails or any run diverges from the first — both are
/// correctness bugs, not benchmark noise.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn run_bench(jobs: &[FarmJob], worker_counts: &[usize]) -> FarmBench {
    assert!(!worker_counts.is_empty(), "need at least one worker count");
    let mut reference: Option<Vec<native_offloader::RunReport>> = None;
    let mut rows = Vec::with_capacity(worker_counts.len());
    let mut durations: Vec<f64> = Vec::new();
    let mut serial_s = 0.0;
    for &workers in worker_counts {
        let started = Instant::now();
        let farm = run_farm(jobs, workers).expect("farm run");
        let host_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
        match &reference {
            None => {
                durations = farm.reports.iter().map(|r| r.total_seconds).collect();
                serial_s = durations.iter().sum();
                reference = Some(farm.reports);
            }
            Some(want) => {
                for (i, (a, b)) in want.iter().zip(&farm.reports).enumerate() {
                    reports_equal(a, b)
                        .unwrap_or_else(|e| panic!("job {i} diverged at {workers} workers: {e}"));
                }
            }
        }
        let makespan_s = list_schedule_makespan(&durations, workers);
        rows.push(FarmRow {
            workers,
            makespan_s,
            sessions_per_s: jobs.len() as f64 / makespan_s.max(f64::MIN_POSITIVE),
            speedup: serial_s / makespan_s.max(f64::MIN_POSITIVE),
            host_ms,
        });
    }
    FarmBench {
        jobs: jobs.len(),
        serial_s,
        durations,
        rows,
    }
}

/// Render the artifact as pretty-printed JSON (hand-rolled — the
/// workspace is dependency-free by design).
#[must_use]
pub fn to_json(bench: &FarmBench) -> String {
    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"bench_pr4.v1\",\n");
    j.push_str(
        "  \"units\": \"makespan/serial are simulated seconds (deterministic, gateable); host_ms is wall clock (informational only)\",\n",
    );
    let _ = write!(
        j,
        "  \"jobs\": {},\n  \"serial_s\": {:.6},\n  \"farm\": [\n",
        bench.jobs, bench.serial_s
    );
    for (i, r) in bench.rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"workers\": {}, \"makespan_s\": {:.6}, \"sessions_per_s\": {:.2}, \"speedup\": {:.2}, \"host_ms\": {}}}",
            r.workers, r.makespan_s, r.sessions_per_s, r.speedup, r.host_ms
        );
        j.push_str(if i + 1 == bench.rows.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    j.push_str("  ]\n}\n");
    j
}

/// Pull one `"key": <number>` out of `text` starting at `from`.
fn scan_f64(text: &str, from: usize, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let rest = text[at..].trim_start();
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// The committed simulated speedup at `workers` from a `bench_pr4.v1`
/// JSON artifact.
///
/// # Errors
///
/// Returns a message if the row or its `speedup` field is missing.
pub fn parse_committed_speedup(text: &str, workers: usize) -> Result<f64, String> {
    let at = text
        .find(&format!("\"workers\": {workers},"))
        .ok_or_else(|| format!("no workers={workers} row in committed farm bench"))?;
    scan_f64(text, at, "speedup").ok_or_else(|| format!("workers={workers} row lacks speedup"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_scheduling_is_deterministic_and_balanced() {
        let d = [4.0, 1.0, 1.0, 1.0, 1.0];
        assert!((list_schedule_makespan(&d, 1) - 8.0).abs() < 1e-12);
        // Greedy: 4 goes to worker 0, the 1s fill worker 1.
        assert!((list_schedule_makespan(&d, 2) - 4.0).abs() < 1e-12);
        // More workers than jobs: bounded by the longest job.
        assert!((list_schedule_makespan(&d, 16) - 4.0).abs() < 1e-12);
        // Empty input schedules to zero.
        assert_eq!(list_schedule_makespan(&[], 4), 0.0);
    }

    #[test]
    fn json_roundtrips_through_the_checker_scanner() {
        let bench = FarmBench {
            jobs: 72,
            serial_s: 100.0,
            durations: Vec::new(),
            rows: vec![
                FarmRow {
                    workers: 1,
                    makespan_s: 100.0,
                    sessions_per_s: 0.72,
                    speedup: 1.0,
                    host_ms: 1234,
                },
                FarmRow {
                    workers: 4,
                    makespan_s: 28.0,
                    sessions_per_s: 2.57,
                    speedup: 3.57,
                    host_ms: 999,
                },
            ],
        };
        let j = to_json(&bench);
        assert!((parse_committed_speedup(&j, 4).unwrap() - 3.57).abs() < 1e-9);
        assert!((parse_committed_speedup(&j, 1).unwrap() - 1.0).abs() < 1e-9);
        assert!(parse_committed_speedup(&j, 8).is_err());
    }

    /// The PR's throughput acceptance gate: the committed artifact must
    /// show at least 2.5× simulated suite throughput at 4 workers.
    #[test]
    fn committed_speedup_at_four_workers_meets_the_gate() {
        let committed = include_str!("../../../BENCH_pr4.json");
        let speedup = parse_committed_speedup(committed, 4).expect("committed artifact parses");
        assert!(
            speedup >= 2.5,
            "committed farm speedup at 4 workers is {speedup}, below the 2.5x gate"
        );
    }
}
