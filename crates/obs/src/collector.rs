//! Collectors: where events go.
//!
//! The stack is instrumented against the [`Collector`] trait. The default
//! [`NoopCollector`] compiles to nothing on the hot path (events are
//! `Copy`, construction is free, `enabled()` lets call sites skip any
//! preparatory work), so untraced runs — the benches, the figure
//! reproductions — pay nothing. The [`TraceCollector`] keeps a bounded
//! ring of records plus a [`MetricsRegistry`] it updates as events flow.

use crate::event::{EventKind, Record};
use crate::metrics::{exp_buckets, MetricsRegistry, MetricsSnapshot};
use crate::shard::TraceShard;

/// Sink for typed events.
pub trait Collector {
    /// `true` if records are actually kept. Call sites may use this to
    /// skip work that only feeds the collector (they must not skip
    /// accounting the run itself depends on).
    fn enabled(&self) -> bool;

    /// Record one event at `ts_s`.
    fn record(&mut self, ts_s: f64, kind: EventKind);

    /// Snapshot of the metrics accumulated so far (empty for sinks that
    /// keep none). Lets instrumented APIs surface metrics on their
    /// reports without downcasting.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// The recorded events in arrival order (empty for discarding sinks).
    fn recorded(&self) -> Vec<Record> {
        Vec::new()
    }

    /// Records lost to ring overflow (0 for unbounded or discarding
    /// sinks). Derivations must not trust a truncated stream.
    fn dropped_records(&self) -> u64 {
        0
    }
}

/// The default sink: discards everything, allocation-free.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopCollector;

impl Collector for NoopCollector {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _ts_s: f64, _kind: EventKind) {}
}

/// Default ring capacity: enough for the full 17-program suite with
/// room to spare, small enough to stay cache-friendly.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 18;

/// A recording collector: a bounded ring of [`Record`]s plus live
/// metrics. When the ring fills, the *oldest* records are dropped and
/// [`dropped`](TraceCollector::dropped) counts them — derived artifacts
/// check this before trusting the stream.
#[derive(Debug, Clone)]
pub struct TraceCollector {
    ring: Vec<Record>,
    head: usize,
    capacity: usize,
    dropped: u64,
    metrics: MetricsRegistry,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// A collector with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A collector keeping at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        TraceCollector {
            ring: Vec::new(),
            head: 0,
            capacity,
            dropped: 0,
            metrics: MetricsRegistry::new(),
        }
    }

    /// Records in arrival order (oldest first).
    pub fn records(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// How many records were evicted by ring overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Freeze the metrics into an owned snapshot.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Drop all records and metrics (between benchmark repetitions).
    pub fn reset(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.dropped = 0;
        self.metrics = MetricsRegistry::new();
    }

    /// Move the collected session out as a [`TraceShard`] tagged with the
    /// farm `job` index, leaving the collector reset for the next session.
    /// The ring's frame allocation is retained, so a worker thread running
    /// many sessions pays for its ring once.
    pub fn take_shard(&mut self, job: usize) -> TraceShard {
        let shard = TraceShard {
            job,
            records: self.records(),
            metrics: self.metrics.snapshot(),
            dropped: self.dropped,
        };
        self.reset();
        shard
    }

    fn update_metrics(&mut self, kind: &EventKind) {
        use EventKind::*;
        let m = &mut self.metrics;
        match kind {
            MobileCompute { cycles } => m.count("mobile_cycles", *cycles),
            ServerCompute { cycles } => m.count("server_cycles", *cycles),
            Frame {
                raw_bytes,
                wire_bytes,
                duration_s,
                ..
            } => {
                m.count("frames", 1);
                m.count("frame_raw_bytes", *raw_bytes);
                m.count("frame_wire_bytes", *wire_bytes);
                m.observe(
                    "frame_wire_bytes_dist",
                    &exp_buckets(64.0, 4.0, 10),
                    *wire_bytes as f64,
                );
                m.observe("frame_seconds", &exp_buckets(1e-6, 10.0, 8), *duration_s);
            }
            OffloadDecision { accepted, .. } => {
                m.count("offload_attempts", 1);
                m.count(
                    if *accepted {
                        "offload_accepts"
                    } else {
                        "offload_refusals"
                    },
                    1,
                );
            }
            DemandFault {
                pages, duration_s, ..
            } => {
                m.count("demand_faults", 1);
                m.count("demand_fault_pages", u64::from(*pages));
                m.observe("fault_latency_s", &exp_buckets(1e-6, 10.0, 8), *duration_s);
                m.observe(
                    "fault_ahead_pages",
                    &exp_buckets(1.0, 2.0, 8),
                    f64::from(*pages),
                );
            }
            PrefetchBatch { pages, .. } => m.count("prefetched_pages", *pages),
            PrefetchPredict { .. } => m.count("streamed_pages", 1),
            StreamHit { saved_s, .. } => {
                m.count("stream_hits", 1);
                m.observe("stall_s_saved", &exp_buckets(1e-6, 10.0, 8), *saved_s);
            }
            StreamWaste { pages, wire_bytes } => {
                m.count("stream_wasted_pages", *pages);
                m.count("stream_waste_wire_bytes", *wire_bytes);
            }
            DirtyWriteBack {
                pages, raw_bytes, ..
            } => {
                m.count("dirty_pages_written_back", *pages);
                m.observe(
                    "writeback_bytes",
                    &exp_buckets(4096.0, 4.0, 10),
                    *raw_bytes as f64,
                );
            }
            DeltaWriteBack {
                full_bytes,
                delta_bytes,
                ..
            } => {
                m.count("delta_writebacks", 1);
                m.count("wire_bytes_saved", full_bytes.saturating_sub(*delta_bytes));
            }
            BatchFlush { bytes } => {
                m.count("batch_flushes", 1);
                m.observe("batch_bytes", &exp_buckets(16.0, 4.0, 10), *bytes as f64);
            }
            Compression {
                raw_bytes,
                wire_bytes,
                ..
            } => {
                m.count("compressions", 1);
                if *wire_bytes > 0 {
                    m.observe(
                        "compression_ratio",
                        &[1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 25.0, 100.0],
                        *raw_bytes as f64 / *wire_bytes as f64,
                    );
                }
            }
            RemoteIo { bytes, .. } => {
                m.count("remote_io_calls", 1);
                m.count("remote_io_bytes", *bytes);
            }
            FnPtrTranslate { .. } => m.count("fn_map_translations", 1),
            AnalysisDiagnostic { severity, .. } => {
                m.count("analysis_diags", 1);
                m.count(
                    match severity {
                        crate::event::DiagLane::Error => "analysis_errors",
                        crate::event::DiagLane::Warning => "analysis_warnings",
                        crate::event::DiagLane::Info => "analysis_infos",
                    },
                    1,
                );
            }
            AnalysisVerdicts {
                offloadable,
                machine_specific,
                indirect_bounded,
                indirect_unbounded,
            } => {
                m.count("analysis_fns_offloadable", u64::from(*offloadable));
                m.count(
                    "analysis_fns_machine_specific",
                    u64::from(*machine_specific),
                );
                m.count("analysis_indirect_bounded", u64::from(*indirect_bounded));
                m.count(
                    "analysis_indirect_unbounded",
                    u64::from(*indirect_unbounded),
                );
            }
            QueueDepth { queue, depth } => match queue {
                crate::event::QueueLane::IoBatch => m.observe(
                    "io_batch_depth_bytes",
                    &exp_buckets(16.0, 4.0, 10),
                    *depth as f64,
                ),
                crate::event::QueueLane::StreamWindow => m.observe(
                    "stream_in_flight_pages",
                    &exp_buckets(1.0, 2.0, 8),
                    *depth as f64,
                ),
                crate::event::QueueLane::RunQueue => m.observe(
                    "run_queue_sessions",
                    &exp_buckets(1.0, 4.0, 10),
                    *depth as f64,
                ),
            },
            LaneGrant {
                lane, duration_s, ..
            } => {
                m.count("lane_grants", 1);
                m.observe(
                    match lane {
                        crate::event::EngineLane::WorkerCpu => "lane_worker_cpu_s",
                        crate::event::EngineLane::LinkUp => "lane_link_up_s",
                        crate::event::EngineLane::LinkDown => "lane_link_down_s",
                        crate::event::EngineLane::Server => "lane_server_s",
                    },
                    &exp_buckets(1e-6, 10.0, 10),
                    *duration_s,
                );
            }
            Certificate {
                readonly_pages,
                precise,
                ..
            } => {
                m.count("certificates_active", 1);
                m.count("certified_readonly_pages", u64::from(*readonly_pages));
                if *precise {
                    m.count("certificates_precise", 1);
                }
            }
            OracleCheck {
                faults_checked,
                dirty_checked,
                baseline_skipped,
                ..
            } => {
                m.count("oracle_checks", 1);
                m.count("oracle_faults_checked", u64::from(*faults_checked));
                m.count("oracle_dirty_checked", u64::from(*dirty_checked));
                m.count("baseline_snapshots_skipped", u64::from(*baseline_skipped));
            }
            Power { .. } | Begin(_) | End(_) => {}
        }
    }
}

impl Collector for TraceCollector {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn recorded(&self) -> Vec<Record> {
        self.records()
    }

    fn dropped_records(&self) -> u64 {
        self.dropped
    }

    fn record(&mut self, ts_s: f64, kind: EventKind) {
        self.update_metrics(&kind);
        let rec = Record { ts_s, kind };
        if self.ring.len() < self.capacity {
            self.ring.push(rec);
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// Ordinal clock for the compiler lane: phases have no simulated time, so
/// each event gets the next micro-tick (1 tick = 1 µs in trace exports,
/// which keeps Chrome's viewer rendering spans in pipeline order).
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileClock {
    tick: u64,
}

impl CompileClock {
    /// A clock at tick zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next timestamp, in "seconds" (micro-ticks × 1e-6).
    /// Not an `Iterator`: it never ends and yields plain `f64`s.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> f64 {
        let t = self.tick;
        self.tick += 1;
        t as f64 * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CompilePhase, Span};

    #[test]
    fn noop_records_nothing_and_reports_disabled() {
        let mut c = NoopCollector;
        assert!(!c.enabled());
        c.record(0.0, EventKind::MobileCompute { cycles: 1 });
    }

    #[test]
    fn trace_collector_keeps_order() {
        let mut c = TraceCollector::new();
        for i in 0..5u64 {
            c.record(i as f64, EventKind::MobileCompute { cycles: i });
        }
        let recs = c.records();
        assert_eq!(recs.len(), 5);
        assert!(recs.windows(2).all(|w| w[0].ts_s <= w[1].ts_s));
        assert_eq!(c.dropped(), 0);
        assert_eq!(c.metrics().counter("mobile_cycles"), 10);
    }

    #[test]
    fn ring_overflow_drops_oldest() {
        let mut c = TraceCollector::with_capacity(3);
        for i in 0..5u64 {
            c.record(i as f64, EventKind::ServerCompute { cycles: i });
        }
        let recs = c.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(c.dropped(), 2);
        assert_eq!(recs[0].ts_s, 2.0);
        assert_eq!(recs[2].ts_s, 4.0);
        // Metrics still saw every event.
        assert_eq!(c.metrics().counter("server_cycles"), 10);
    }

    #[test]
    fn metrics_follow_events() {
        let mut c = TraceCollector::new();
        c.record(
            0.0,
            EventKind::DemandFault {
                page: 7,
                pages: 4,
                window: 8,
                duration_s: 0.001,
            },
        );
        c.record(
            0.1,
            EventKind::DirtyWriteBack {
                pages: 3,
                raw_bytes: 12288,
                wire_bytes: 900,
            },
        );
        c.record(0.2, EventKind::Begin(Span::Compile(CompilePhase::Profile)));
        assert_eq!(c.metrics().counter("demand_faults"), 1);
        assert_eq!(c.metrics().counter("dirty_pages_written_back"), 3);
        let h = c.metrics().histogram("fault_latency_s").unwrap();
        assert_eq!(h.count, 1);
    }

    #[test]
    fn compile_clock_ticks_monotonically() {
        let mut clk = CompileClock::new();
        let a = clk.next();
        let b = clk.next();
        assert!(b > a);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = TraceCollector::with_capacity(2);
        c.record(0.0, EventKind::MobileCompute { cycles: 5 });
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.metrics().counter("mobile_cycles"), 0);
    }

    #[test]
    fn take_shard_moves_the_session_out_and_resets() {
        let mut c = TraceCollector::with_capacity(8);
        c.record(0.0, EventKind::MobileCompute { cycles: 3 });
        c.record(0.1, EventKind::ServerCompute { cycles: 4 });
        let shard = c.take_shard(5);
        assert_eq!(shard.job, 5);
        assert_eq!(shard.records.len(), 2);
        assert_eq!(shard.dropped, 0);
        assert_eq!(shard.metrics.counter("mobile_cycles"), 3);
        // The collector is ready for the next job, nothing carried over.
        assert!(c.is_empty());
        assert_eq!(c.dropped(), 0);
        assert_eq!(c.metrics().counter("mobile_cycles"), 0);
        let next = c.take_shard(6);
        assert!(next.records.is_empty());
    }

    #[test]
    fn collectors_and_shards_cross_threads() {
        fn assert_send<T: Send>() {}
        assert_send::<TraceCollector>();
        assert_send::<NoopCollector>();
        assert_send::<crate::shard::TraceShard>();
        assert_send::<crate::shard::MergedTrace>();
    }
}
