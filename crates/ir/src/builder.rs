//! Convenience builder for constructing function bodies.
//!
//! The builder tracks a *current block* and appends instructions to it,
//! allocating virtual registers with the right types as it goes. Both the
//! MiniC front-end and the offload partitioner construct code through it.

use crate::inst::{BinOp, Builtin, Callee, CastKind, CmpOp, Inst, UnOp};
use crate::module::{Block, BlockId, ConstValue, FuncId, Module, StructId, ValueId};
use crate::types::Type;

/// Builds the body of one function inside a [`Module`].
#[derive(Debug)]
pub struct FunctionBuilder<'m> {
    module: &'m mut Module,
    func: FuncId,
    current: BlockId,
}

impl<'m> FunctionBuilder<'m> {
    /// Start building `func`, creating its entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function already has a body.
    pub fn new(module: &'m mut Module, func: FuncId) -> Self {
        assert!(
            module.function(func).is_declaration(),
            "function {} already has a body",
            module.function(func).name
        );
        module.function_mut(func).blocks.push(Block::default());
        FunctionBuilder {
            module,
            func,
            current: BlockId(0),
        }
    }

    /// The function being built.
    pub fn func_id(&self) -> FuncId {
        self.func
    }

    /// Read access to the module (for type lookups).
    pub fn module(&self) -> &Module {
        self.module
    }

    /// Mutable access to the module, e.g. to intern a string global while
    /// building a body. The builder's own function must not be removed.
    pub fn module_mut(&mut self) -> &mut Module {
        self.module
    }

    /// The `i`-th parameter as a register.
    pub fn param(&self, i: usize) -> ValueId {
        assert!(
            i < self.module.function(self.func).params.len(),
            "no parameter {i}"
        );
        ValueId(i as u32)
    }

    /// Allocate a fresh register of type `ty`.
    pub fn new_value(&mut self, ty: Type) -> ValueId {
        let f = self.module.function_mut(self.func);
        f.value_types.push(ty);
        ValueId(f.value_types.len() as u32 - 1)
    }

    /// Create a new (empty) block and return its id without switching to it.
    pub fn new_block(&mut self) -> BlockId {
        let f = self.module.function_mut(self.func);
        f.blocks.push(Block::default());
        BlockId(f.blocks.len() as u32 - 1)
    }

    /// Switch the insertion point to `bb`.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.current = bb;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// `true` if the current block already ends in a terminator.
    pub fn is_terminated(&self) -> bool {
        self.module.function(self.func).blocks[self.current.0 as usize]
            .insts
            .last()
            .is_some_and(Inst::is_terminator)
    }

    /// Append a raw instruction to the current block.
    pub fn push(&mut self, inst: Inst) {
        self.module.function_mut(self.func).blocks[self.current.0 as usize]
            .insts
            .push(inst);
    }

    /// Materialize a constant.
    pub fn const_value(&mut self, value: ConstValue) -> ValueId {
        let ty = value.ty(self.module);
        let dst = self.new_value(ty);
        self.push(Inst::Const { dst, value });
        dst
    }

    /// Shorthand for an `i32` constant.
    pub fn const_i32(&mut self, v: i32) -> ValueId {
        self.const_value(ConstValue::I32(v))
    }

    /// Shorthand for an `i64` constant.
    pub fn const_i64(&mut self, v: i64) -> ValueId {
        self.const_value(ConstValue::I64(v))
    }

    /// Shorthand for an `f64` constant.
    pub fn const_f64(&mut self, v: f64) -> ValueId {
        self.const_value(ConstValue::F64(v))
    }

    /// Stack-allocate `count` elements of `ty`; yields the address.
    pub fn alloca(&mut self, ty: Type, count: u64) -> ValueId {
        let dst = self.new_value(ty.clone().ptr_to());
        self.push(Inst::Alloca { dst, ty, count });
        dst
    }

    /// Load a value of `ty` from `addr`.
    pub fn load(&mut self, ty: Type, addr: ValueId) -> ValueId {
        let dst = self.new_value(ty.clone());
        self.push(Inst::Load { dst, ty, addr });
        dst
    }

    /// Store `value` of `ty` to `addr`.
    pub fn store(&mut self, ty: Type, addr: ValueId, value: ValueId) {
        self.push(Inst::Store { ty, addr, value });
    }

    /// Address of struct field `field`.
    pub fn field_addr(&mut self, base: ValueId, sid: StructId, field: u32) -> ValueId {
        let fty = self.module.struct_def(sid).fields[field as usize].clone();
        let dst = self.new_value(fty.ptr_to());
        self.push(Inst::FieldAddr {
            dst,
            base,
            sid,
            field,
        });
        dst
    }

    /// Address of array element `index`.
    pub fn index_addr(&mut self, base: ValueId, elem: Type, index: ValueId) -> ValueId {
        let dst = self.new_value(elem.clone().ptr_to());
        self.push(Inst::IndexAddr {
            dst,
            base,
            elem,
            index,
        });
        dst
    }

    /// Binary operation.
    pub fn bin(&mut self, op: BinOp, ty: Type, lhs: ValueId, rhs: ValueId) -> ValueId {
        let dst = self.new_value(ty.clone());
        self.push(Inst::Bin {
            dst,
            op,
            ty,
            lhs,
            rhs,
        });
        dst
    }

    /// Unary operation.
    pub fn un(&mut self, op: UnOp, ty: Type, operand: ValueId) -> ValueId {
        let dst = self.new_value(ty.clone());
        self.push(Inst::Un {
            dst,
            op,
            ty,
            operand,
        });
        dst
    }

    /// Comparison (`i32` result).
    pub fn cmp(&mut self, op: CmpOp, ty: Type, lhs: ValueId, rhs: ValueId) -> ValueId {
        let dst = self.new_value(Type::I32);
        self.push(Inst::Cmp {
            dst,
            op,
            ty,
            lhs,
            rhs,
        });
        dst
    }

    /// Conversion.
    pub fn cast(&mut self, kind: CastKind, to: Type, src: ValueId) -> ValueId {
        let dst = self.new_value(to.clone());
        self.push(Inst::Cast { dst, kind, to, src });
        dst
    }

    /// Direct call.
    pub fn call(&mut self, callee: FuncId, args: Vec<ValueId>) -> Option<ValueId> {
        let ret = self.module.function(callee).ret.clone();
        let dst = if ret == Type::Void {
            None
        } else {
            Some(self.new_value(ret))
        };
        self.push(Inst::Call {
            dst,
            callee: Callee::Direct(callee),
            args,
        });
        dst
    }

    /// Indirect call through a function pointer with the given return type.
    pub fn call_indirect(
        &mut self,
        ptr: ValueId,
        ret: Type,
        args: Vec<ValueId>,
    ) -> Option<ValueId> {
        let dst = if ret == Type::Void {
            None
        } else {
            Some(self.new_value(ret))
        };
        self.push(Inst::Call {
            dst,
            callee: Callee::Indirect(ptr),
            args,
        });
        dst
    }

    /// Builtin call with an explicit return type (`Void` for none).
    pub fn call_builtin(&mut self, b: Builtin, ret: Type, args: Vec<ValueId>) -> Option<ValueId> {
        let dst = if ret == Type::Void {
            None
        } else {
            Some(self.new_value(ret))
        };
        self.push(Inst::Call {
            dst,
            callee: Callee::Builtin(b),
            args,
        });
        dst
    }

    /// Return.
    pub fn ret(&mut self, value: Option<ValueId>) {
        self.push(Inst::Ret { value });
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.push(Inst::Br { target });
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        self.push(Inst::CondBr {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Finish building; returns the function id.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator — catching the mistake at the
    /// construction site rather than in the verifier.
    pub fn finish(self) -> FuncId {
        let f = self.module.function(self.func);
        for (id, block) in f.iter_blocks() {
            assert!(
                block.insts.last().is_some_and(Inst::is_terminator),
                "function {}: block {id} lacks a terminator",
                f.name
            );
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_function() {
        let mut m = Module::new("t");
        let f = m.declare_function("add1", vec![Type::I32], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let one = b.const_i32(1);
        let sum = b.bin(BinOp::Add, Type::I32, p, one);
        b.ret(Some(sum));
        b.finish();
        let func = m.function(f);
        assert_eq!(func.blocks.len(), 1);
        assert_eq!(func.inst_count(), 3);
        assert_eq!(func.value_type(sum), &Type::I32);
    }

    #[test]
    fn build_branching_function() {
        let mut m = Module::new("t");
        let f = m.declare_function("abs", vec![Type::I32], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let zero = b.const_i32(0);
        let neg = b.cmp(CmpOp::Lt, Type::I32, p, zero);
        let bb_neg = b.new_block();
        let bb_pos = b.new_block();
        b.cond_br(neg, bb_neg, bb_pos);
        b.switch_to(bb_neg);
        let negv = b.un(UnOp::Neg, Type::I32, p);
        b.ret(Some(negv));
        b.switch_to(bb_pos);
        b.ret(Some(p));
        b.finish();
        assert_eq!(m.function(f).blocks.len(), 3);
        assert_eq!(m.function(f).successors(BlockId(0)), vec![bb_neg, bb_pos]);
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn unterminated_block_panics() {
        let mut m = Module::new("t");
        let f = m.declare_function("bad", vec![], Type::Void);
        let b = FunctionBuilder::new(&mut m, f);
        b.finish();
    }

    #[test]
    fn void_call_has_no_dst() {
        let mut m = Module::new("t");
        let callee = m.declare_function("cb", vec![], Type::Void);
        let f = m.declare_function("caller", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        assert!(b.call(callee, vec![]).is_none());
        b.ret(None);
        b.finish();
    }
}
