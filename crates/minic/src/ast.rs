//! Abstract syntax tree for MiniC.

/// A syntactic type expression (resolved to IR types during lowering).
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// `void`
    Void,
    /// `char`
    Char,
    /// `short`
    Short,
    /// `int`
    Int,
    /// `long` (64-bit in MiniC)
    Long,
    /// `double`
    Double,
    /// `struct Name`
    Struct(String),
    /// A typedef name.
    Named(String),
    /// Pointer.
    Ptr(Box<TypeExpr>),
    /// Fixed-size array.
    Array(Box<TypeExpr>, usize),
    /// Function pointer: `ret (*)(params)`.
    FnPtr {
        /// Return type.
        ret: Box<TypeExpr>,
        /// Parameter types.
        params: Vec<TypeExpr>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `!x`
    LogicalNot,
    /// `~x`
    BitNot,
    /// `*x`
    Deref,
    /// `&x`
    AddrOf,
    /// `++x`
    PreInc,
    /// `--x`
    PreDec,
    /// `x++`
    PostInc,
    /// `x--`
    PostDec,
}

/// Binary operators (excluding assignment and short-circuit logic, which
/// have dedicated expression forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// 1-based source line.
    pub line: u32,
    /// The expression itself.
    pub kind: ExprKind,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Variable or function reference.
    Ident(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Short-circuit `&&`.
    LogicalAnd(Box<Expr>, Box<Expr>),
    /// Short-circuit `||`.
    LogicalOr(Box<Expr>, Box<Expr>),
    /// Assignment; `op` is `Some` for compound forms like `+=`.
    Assign {
        /// Compound operator, if any.
        op: Option<BinaryOp>,
        /// Assignee (lvalue).
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
    },
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function call (direct or through a pointer).
    Call {
        /// Callee expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
    /// `base.field` or `base->field`.
    Member {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `true` for `->`.
        arrow: bool,
    },
    /// `(T)expr`
    Cast(TypeExpr, Box<Expr>),
    /// `sizeof(T)`
    SizeofType(TypeExpr),
    /// `{ a, b, c }` — only valid as an initializer.
    InitList(Vec<Expr>),
    /// `syscall(n, args...)` — machine-specific marker.
    Syscall(Vec<Expr>),
}

/// A statement with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// 1-based source line.
    pub line: u32,
    /// The statement itself.
    pub kind: StmtKind,
}

/// Statement variants.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// Local declaration.
    Decl {
        /// Declared type.
        ty: TypeExpr,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Else branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `while`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `do { } while (cond);`
    DoWhile {
        /// Body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; step)`.
    For {
        /// Init clause (declaration or expression).
        init: Option<Box<Stmt>>,
        /// Condition (defaults to true).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `return expr?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `asm("...");` — machine-specific marker (§3.1).
    Asm(String),
    /// `switch` with C semantics (fallthrough between cases, `break`
    /// exits).
    Switch {
        /// Scrutinee expression.
        scrutinee: Expr,
        /// `(label value, statements)` per `case`, in source order.
        cases: Vec<(i64, Vec<Stmt>)>,
        /// `default:` statements, if present (position: after all cases).
        default: Option<Vec<Stmt>>,
    },
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// Struct definition.
    Struct {
        /// Struct name.
        name: String,
        /// Fields: `(type, name)`.
        fields: Vec<(TypeExpr, String)>,
        /// Source line.
        line: u32,
    },
    /// `typedef T Name;`
    Typedef {
        /// New name.
        name: String,
        /// Aliased type.
        ty: TypeExpr,
        /// Source line.
        line: u32,
    },
    /// Global variable.
    Global {
        /// Declared type.
        ty: TypeExpr,
        /// Variable name.
        name: String,
        /// Optional constant initializer.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// Function definition or declaration.
    Function {
        /// Return type.
        ret: TypeExpr,
        /// Function name.
        name: String,
        /// Parameters: `(type, name)`.
        params: Vec<(TypeExpr, String)>,
        /// Body (`None` for a prototype).
        body: Option<Stmt>,
        /// Source line.
        line: u32,
    },
}

/// A parsed translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Unit {
    /// Top-level declarations in source order.
    pub decls: Vec<Decl>,
}
