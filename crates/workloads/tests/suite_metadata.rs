//! Metadata sanity for the workload registry: the paper rows are
//! internally consistent and the miniatures' sources actually contain the
//! constructs their signatures claim.

use offload_workloads::all;

#[test]
fn paper_rows_are_internally_consistent() {
    for w in all() {
        let p = &w.paper;
        assert!(p.loc_k > 0.0, "{}: LoC", w.name);
        assert!(p.exec_time_s > 0.0, "{}: exec time", w.name);
        assert!(
            p.offloaded_fns.0 <= p.offloaded_fns.1,
            "{}: offloaded fns",
            w.name
        );
        assert!(
            p.referenced_gv.0 <= p.referenced_gv.1,
            "{}: referenced GVs",
            w.name
        );
        assert!(
            (0.0..=100.0).contains(&p.coverage_pct),
            "{}: coverage",
            w.name
        );
        assert!(p.invocations >= 1, "{}: invocations", w.name);
        assert!(p.traffic_mb_per_inv > 0.0, "{}: traffic", w.name);
    }
}

#[test]
fn fn_ptr_programs_use_fn_ptr_tables_in_source() {
    for w in all() {
        let has_table = w.source.contains("(*") && w.source.contains(")[");
        if w.paper.fn_ptr_uses > 50 {
            assert!(
                has_table,
                "{}: paper reports {} fn-ptr uses but the miniature has no table",
                w.name, w.paper.fn_ptr_uses
            );
        }
    }
}

#[test]
fn remote_input_programs_read_files_in_source() {
    for short in ["twolf", "gobmk", "h264ref", "sphinx3"] {
        let w = offload_workloads::by_short_name(short).unwrap();
        assert!(w.source.contains("fread"), "{short}: no fread in source");
        assert!(
            !(w.eval_input)().files.is_empty(),
            "{short}: no input file provided"
        );
    }
}

#[test]
fn every_main_is_pinned_by_interactive_input() {
    // The paper's programs all read inputs; our miniatures use scanf in
    // main, which is what keeps main itself unoffloadable (§3.1).
    for w in all() {
        assert!(
            w.source.contains("scanf"),
            "{}: main should scanf its input",
            w.name
        );
    }
}

#[test]
fn profile_and_eval_inputs_differ() {
    // §5: "We use different inputs for profiling and evaluation."
    for w in all() {
        let p = (w.profile_input)();
        let e = (w.eval_input)();
        assert_ne!(
            p.stdin, e.stdin,
            "{}: same profiling and evaluation stdin",
            w.name
        );
    }
}

#[test]
fn sources_are_nontrivial() {
    for w in all() {
        let lines = w.source.lines().filter(|l| !l.trim().is_empty()).count();
        assert!(
            lines >= 25,
            "{}: miniature suspiciously small ({lines} lines)",
            w.name
        );
    }
}
