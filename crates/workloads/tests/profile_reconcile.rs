//! Suite-wide critical-path reconciliation: for every workload in the
//! 18-program suite (chess + 17 miniatures), on both paper networks,
//! the profiler's sequential lane fold reproduces the session's
//! simulated makespan **bit for bit**, the per-lane attribution
//! partitions it to float tolerance, and the cross-run differ flags a
//! seeded wire regression while staying silent on a self-diff. Also
//! checks that the logged farm path is byte-identical to the quiet one
//! (logging is observe-only).

use native_offloader::runtime::farm::{reports_equal, run_farm, run_farm_logged, FarmJob};
use native_offloader::{Offloader, SessionConfig};
use offload_net::Link;
use offload_obs::profile::{critical_path, diff_summaries, DiffTolerance, Lane, ProfileSummary};
use offload_obs::{Logger, TraceCollector, Verbosity};

fn forced(mut cfg: SessionConfig) -> SessionConfig {
    cfg.dynamic_estimation = false;
    cfg
}

fn suite() -> Vec<(
    String,
    native_offloader::CompiledApp,
    native_offloader::WorkloadInput,
)> {
    let mut v = Vec::new();
    let chess_input = offload_workloads::chess::input(9, 2);
    let chess = Offloader::new()
        .compile_source(offload_workloads::chess::SOURCE, "chess", &chess_input)
        .expect("chess compiles");
    v.push(("chess".to_string(), chess, chess_input));
    for w in offload_workloads::all() {
        let app = w.compile().expect("miniature compiles");
        v.push((w.name.to_string(), app, (w.eval_input)()));
    }
    v
}

#[test]
fn lane_attribution_reconciles_bit_for_bit_suite_wide() {
    for (name, app, input) in suite() {
        for (net, cfg) in [
            ("slow", forced(SessionConfig::slow_network())),
            ("fast", forced(SessionConfig::fast_network())),
        ] {
            let mut obs = TraceCollector::with_capacity(1 << 20);
            let rep = app
                .run_offloaded_traced(&input, &cfg, &mut obs)
                .expect("runs");
            assert_eq!(obs.dropped(), 0, "{name}/{net}: ring must hold the run");
            let cp = critical_path(&obs.records());
            // The sequential fold over the Power stream is the same
            // arithmetic PowerTimeline::total_seconds performs, so the
            // makespan must come back bit-identical.
            assert_eq!(
                cp.makespan_s.to_bits(),
                rep.total_seconds.to_bits(),
                "{name}/{net}: profiler fold diverged from the timeline: {} vs {}",
                cp.makespan_s,
                rep.total_seconds
            );
            // Lanes partition the makespan; re-summing per lane is a
            // different association order, so tolerance — but tight.
            let lane_sum = cp.lanes_total_s();
            assert!(
                (lane_sum - cp.makespan_s).abs() <= cp.makespan_s.abs() * 1e-9 + 1e-9,
                "{name}/{net}: lanes leak {} vs {}",
                lane_sum,
                cp.makespan_s
            );
            // Ops attribute within the two compute+wire+stall lanes.
            let op_sum: f64 = cp.ops.values().sum();
            assert!(
                op_sum <= lane_sum + 1e-9,
                "{name}/{net}: op attribution exceeds the lane total"
            );
        }
    }
}

#[test]
fn seeded_wire_regression_is_flagged_and_self_diff_is_clean() {
    let input = offload_workloads::chess::input(9, 2);
    let app = Offloader::new()
        .compile_source(offload_workloads::chess::SOURCE, "chess", &input)
        .expect("chess compiles");

    let profile_on = |link: Link| {
        let cfg = forced(SessionConfig::with_link(link));
        let mut obs = TraceCollector::with_capacity(1 << 20);
        let rep = app
            .run_offloaded_traced(&input, &cfg, &mut obs)
            .expect("runs");
        let cp = critical_path(&obs.records());
        assert_eq!(cp.makespan_s.to_bits(), rep.total_seconds.to_bits());
        ProfileSummary::from_critical_path("chess", "802.11n", "offload", &cp, Vec::new())
    };

    let base = vec![profile_on(Link::wifi_802_11n())];

    // Self-diff: identical summaries must produce zero regressions.
    assert!(
        diff_summaries(&base, &base, DiffTolerance::default()).is_empty(),
        "self-diff must be clean"
    );

    // Seeded regression: halve the link bandwidth and double its
    // latency. Wire seconds grow well past the 5% noise threshold, so
    // the differ must flag a wire lane (or the makespan, which the wire
    // growth drags along).
    let slow = Link::wifi_802_11n();
    let crippled = Link {
        name: slow.name.clone(),
        bandwidth_bps: slow.bandwidth_bps / 2,
        latency_s: slow.latency_s * 2.0,
        per_message_bytes: slow.per_message_bytes,
    };
    let degraded = vec![profile_on(crippled)];
    let regs = diff_summaries(&base, &degraded, DiffTolerance::default());
    assert!(
        !regs.is_empty(),
        "halved bandwidth must surface as a regression"
    );
    assert!(
        regs.iter().any(|r| r.metric.starts_with("lane:wire")
            || r.metric == "makespan_s"
            || r.metric == "lane:stall"),
        "expected a wire/stall/makespan regression, got {:?}",
        regs.iter().map(|r| r.metric.as_str()).collect::<Vec<_>>()
    );
    // And the wire lanes really did grow.
    let wire = |s: &ProfileSummary| s.lane_s(Lane::WireUpload) + s.lane_s(Lane::WireDownload);
    assert!(wire(&degraded[0]) > wire(&base[0]));
}

#[test]
fn logged_farm_is_byte_identical_to_quiet_farm() {
    let suite = suite();
    let jobs: Vec<FarmJob> = suite
        .iter()
        .take(4)
        .map(|(_, app, input)| FarmJob {
            app,
            input: input.clone(),
            cfg: forced(SessionConfig::slow_network()),
        })
        .collect();
    let quiet = run_farm(&jobs, 2).expect("quiet farm runs");
    // Quiet verbosity keeps stderr clean under the test harness while
    // still exercising the scoped-logger code path end to end.
    let logged = run_farm_logged(&jobs, 2, &Logger::new(Verbosity::Quiet)).expect("logged farm");
    assert_eq!(quiet.reports.len(), logged.reports.len());
    for (i, (a, b)) in quiet.reports.iter().zip(&logged.reports).enumerate() {
        reports_equal(a, b).unwrap_or_else(|e| panic!("job {i} diverged: {e}"));
    }
    for i in 0..jobs.len() {
        let qa = quiet.trace.shard(i).expect("quiet shard");
        let la = logged.trace.shard(i).expect("logged shard");
        assert_eq!(qa.records, la.records, "job {i} trace diverged");
    }
}
