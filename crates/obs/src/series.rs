//! Fixed-Δt time-series resampling of a recorded trace.
//!
//! Traces are event streams; capacity questions ("was the link saturated
//! in the middle third?", "how deep did the I/O batch get?") want evenly
//! sampled curves. This module resamples three signal families onto a
//! fixed Δt grid:
//!
//! * **lane occupancy** — the fraction of each bin the mobile spent in
//!   each power lane, from `Power` interval events;
//! * **queue depths** — sample-and-hold curves from the observe-only
//!   `QueueDepth` events (I/O batch bytes, stream window pages);
//! * **farm worker series** — per-worker utilization and job-queue depth
//!   from a deterministic greedy list schedule over per-job durations
//!   (the farm's shards are worker-anonymous by design — byte-identity
//!   with serial replay forbids worker tags — so the worker view is
//!   *derived*, mirroring `offload-bench`'s `list_schedule_makespan`).
//!
//! Output is renderable as text sparkline dashboards
//! ([`render_dashboard`]) or Chrome `trace_event` counter tracks
//! ([`chrome_counters`]) that sit under the span timeline in Perfetto.

use crate::event::{EventKind, PowerLane, QueueLane, Record};
use std::fmt::Write as _;

/// One uniformly sampled curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Display / counter-track name.
    pub name: String,
    /// Sample spacing, seconds.
    pub dt_s: f64,
    /// One value per bin; bin `i` covers `[i*dt_s, (i+1)*dt_s)`.
    pub values: Vec<f64>,
}

impl Series {
    /// Largest sampled value (0.0 for an empty series).
    pub fn max(&self) -> f64 {
        self.values.iter().fold(0.0f64, |a, &v| a.max(v))
    }

    /// Mean sampled value (0.0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }
}

/// Number of bins needed to cover `[0, end_s)` at `dt_s`.
fn bins(end_s: f64, dt_s: f64) -> usize {
    (end_s / dt_s).ceil().max(1.0) as usize
}

/// Resample power-lane occupancy: one series per [`PowerLane`], each
/// value the fraction of that bin spent in the lane (0..=1). `dt_s`
/// must be positive; the grid spans the full power timeline.
pub fn sample_lane_occupancy(records: &[Record], dt_s: f64) -> Vec<Series> {
    assert!(dt_s > 0.0, "dt_s must be positive");
    let end = records
        .iter()
        .filter_map(|r| match r.kind {
            EventKind::Power { duration_s, .. } => Some(r.ts_s + duration_s),
            _ => None,
        })
        .fold(0.0f64, f64::max);
    let lanes = [
        PowerLane::Compute,
        PowerLane::Waiting,
        PowerLane::Transmit,
        PowerLane::Receive,
        PowerLane::Idle,
    ];
    let n = bins(end.max(dt_s), dt_s);
    let mut out: Vec<Series> = lanes
        .iter()
        .map(|l| Series {
            name: format!("occupancy:{}", l.name()),
            dt_s,
            values: vec![0.0; n],
        })
        .collect();
    for r in records {
        let EventKind::Power { state, duration_s } = r.kind else {
            continue;
        };
        if duration_s <= 0.0 {
            continue;
        }
        let idx = lanes.iter().position(|l| *l == state).unwrap();
        let (start, stop) = (r.ts_s, r.ts_s + duration_s);
        let first = (start / dt_s) as usize;
        let last = ((stop / dt_s).ceil() as usize).min(n);
        for bin in first..last {
            let b0 = bin as f64 * dt_s;
            let b1 = b0 + dt_s;
            let overlap = (stop.min(b1) - start.max(b0)).max(0.0);
            out[idx].values[bin] += overlap / dt_s;
        }
    }
    out
}

/// Resample queue depths: one sample-and-hold series per [`QueueLane`]
/// that appears in the trace. Each bin reports the depth as of the bin's
/// end (the most recent sample at or before it).
pub fn sample_queue_depths(records: &[Record], dt_s: f64) -> Vec<Series> {
    assert!(dt_s > 0.0, "dt_s must be positive");
    let samples: Vec<(f64, QueueLane, u64)> = records
        .iter()
        .filter_map(|r| match r.kind {
            EventKind::QueueDepth { queue, depth } => Some((r.ts_s, queue, depth)),
            _ => None,
        })
        .collect();
    if samples.is_empty() {
        return Vec::new();
    }
    let end = samples.iter().map(|s| s.0).fold(0.0f64, f64::max);
    let n = bins(end.max(dt_s), dt_s);
    let mut out = Vec::new();
    for lane in [QueueLane::IoBatch, QueueLane::StreamWindow] {
        if !samples.iter().any(|s| s.1 == lane) {
            continue;
        }
        let mut values = vec![0.0; n];
        let mut held = 0.0;
        let mut it = samples.iter().filter(|s| s.1 == lane).peekable();
        for (bin, v) in values.iter_mut().enumerate() {
            let bin_end = (bin + 1) as f64 * dt_s;
            while let Some((ts, _, depth)) = it.peek() {
                if *ts <= bin_end {
                    held = *depth as f64;
                    it.next();
                } else {
                    break;
                }
            }
            *v = held;
        }
        out.push(Series {
            name: format!("queue:{}", lane.name()),
            dt_s,
            values,
        });
    }
    out
}

/// One job's placement in the derived farm schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerSpan {
    /// Worker index the job ran on.
    pub worker: usize,
    /// Job index in submission order.
    pub job: usize,
    /// Start time on that worker, seconds.
    pub start_s: f64,
    /// End time, seconds.
    pub end_s: f64,
}

/// Greedy list schedule of per-job `durations` onto `workers` lanes:
/// each job (in submission order) goes to the least-loaded worker, ties
/// to the lowest index — exactly the policy `offload-bench` uses for its
/// farm makespan model, so the derived series match its numbers.
pub fn list_schedule(durations: &[f64], workers: usize) -> Vec<WorkerSpan> {
    let workers = workers.max(1);
    let mut load = vec![0.0f64; workers];
    let mut out = Vec::with_capacity(durations.len());
    for (job, &d) in durations.iter().enumerate() {
        let mut best = 0;
        for (i, &l) in load.iter().enumerate() {
            if l < load[best] {
                best = i;
            }
        }
        out.push(WorkerSpan {
            worker: best,
            job,
            start_s: load[best],
            end_s: load[best] + d,
        });
        load[best] += d;
    }
    out
}

/// Per-worker utilization series from a derived schedule: the fraction
/// of each bin worker `w` spent running jobs.
pub fn worker_utilization(spans: &[WorkerSpan], workers: usize, dt_s: f64) -> Vec<Series> {
    assert!(dt_s > 0.0, "dt_s must be positive");
    let end = spans.iter().map(|s| s.end_s).fold(0.0f64, f64::max);
    let n = bins(end.max(dt_s), dt_s);
    let mut out: Vec<Series> = (0..workers.max(1))
        .map(|w| Series {
            name: format!("worker{w}:util"),
            dt_s,
            values: vec![0.0; n],
        })
        .collect();
    for s in spans {
        let first = (s.start_s / dt_s) as usize;
        let last = ((s.end_s / dt_s).ceil() as usize).min(n);
        for bin in first..last {
            let b0 = bin as f64 * dt_s;
            let b1 = b0 + dt_s;
            let overlap = (s.end_s.min(b1) - s.start_s.max(b0)).max(0.0);
            out[s.worker].values[bin] += overlap / dt_s;
        }
    }
    out
}

/// Job-queue depth series from a derived schedule: how many submitted
/// jobs had not yet started as of each bin's end.
pub fn job_queue_depth(spans: &[WorkerSpan], dt_s: f64) -> Series {
    assert!(dt_s > 0.0, "dt_s must be positive");
    let end = spans.iter().map(|s| s.end_s).fold(0.0f64, f64::max);
    let n = bins(end.max(dt_s), dt_s);
    let values = (0..n)
        .map(|bin| {
            let bin_end = (bin + 1) as f64 * dt_s;
            spans.iter().filter(|s| s.start_s > bin_end).count() as f64
        })
        .collect();
    Series {
        name: "farm:job_queue".to_string(),
        dt_s,
        values,
    }
}

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render values as a unicode sparkline scaled to the series max (an
/// all-zero series renders as all-▁).
pub fn sparkline(values: &[f64]) -> String {
    let max = values.iter().fold(0.0f64, |a, &v| a.max(v));
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                SPARK[0]
            } else {
                let t = (v.max(0.0) / max * 7.0).round() as usize;
                SPARK[t.min(7)]
            }
        })
        .collect()
}

/// Render a set of series as an aligned sparkline dashboard.
pub fn render_dashboard(series: &[Series]) -> String {
    if series.is_empty() {
        return "series: nothing to sample\n".to_string();
    }
    let name_w = series.iter().map(|s| s.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    for s in series {
        let _ = writeln!(
            out,
            "{:<name_w$} |{}| max {:.3} mean {:.3}",
            s.name,
            sparkline(&s.values),
            s.max(),
            s.mean()
        );
    }
    out
}

/// Render series as Chrome `trace_event` counter events (`ph: "C"`),
/// one object per line — loads alongside the span JSONL in Perfetto.
pub fn chrome_counters(series: &[Series]) -> String {
    let mut out = String::new();
    for s in series {
        for (bin, v) in s.values.iter().enumerate() {
            let ts_us = bin as f64 * s.dt_s * 1e6;
            let _ = writeln!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"offload\",\"ph\":\"C\",\"ts\":{ts_us},\"pid\":1,\"tid\":1,\"args\":{{\"value\":{v}}}}}",
                s.name
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power(ts_s: f64, state: PowerLane, duration_s: f64) -> Record {
        Record {
            ts_s,
            kind: EventKind::Power { state, duration_s },
        }
    }

    #[test]
    fn occupancy_fractions_cover_the_interval() {
        // 0..1s compute, 1..1.5s transmit, sampled at 0.5s.
        let records = vec![
            power(0.0, PowerLane::Compute, 1.0),
            power(1.0, PowerLane::Transmit, 0.5),
        ];
        let series = sample_lane_occupancy(&records, 0.5);
        let compute = series
            .iter()
            .find(|s| s.name == "occupancy:compute")
            .unwrap();
        assert_eq!(compute.values, vec![1.0, 1.0, 0.0]);
        let tx = series
            .iter()
            .find(|s| s.name == "occupancy:transmit")
            .unwrap();
        assert_eq!(tx.values, vec![0.0, 0.0, 1.0]);
        // Each bin's lane fractions sum to <= 1 (full coverage here).
        for bin in 0..3 {
            let total: f64 = series.iter().map(|s| s.values[bin]).sum();
            assert!((total - 1.0).abs() < 1e-12, "bin {bin} sums {total}");
        }
    }

    #[test]
    fn partial_bin_overlap_is_fractional() {
        let records = vec![power(0.25, PowerLane::Waiting, 0.5)];
        let series = sample_lane_occupancy(&records, 0.5);
        let w = series
            .iter()
            .find(|s| s.name == "occupancy:waiting")
            .unwrap();
        assert_eq!(w.values, vec![0.5, 0.5]);
    }

    #[test]
    fn queue_depth_holds_last_sample() {
        let mk = |ts_s: f64, depth: u64| Record {
            ts_s,
            kind: EventKind::QueueDepth {
                queue: QueueLane::IoBatch,
                depth,
            },
        };
        let records = vec![mk(0.1, 64), mk(0.9, 128), mk(2.1, 0)];
        let series = sample_queue_depths(&records, 1.0);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].name, "queue:io_batch");
        assert_eq!(series[0].values, vec![128.0, 128.0, 0.0]);
        assert!(sample_queue_depths(&[], 1.0).is_empty());
    }

    #[test]
    fn list_schedule_matches_greedy_policy() {
        // durations 3,1,1,1 on 2 workers: w0 gets job0 (0..3), w1 gets
        // job1 (0..1), job2 (1..2), job3 (2..3). Makespan 3.
        let spans = list_schedule(&[3.0, 1.0, 1.0, 1.0], 2);
        assert_eq!(
            spans[0],
            WorkerSpan {
                worker: 0,
                job: 0,
                start_s: 0.0,
                end_s: 3.0
            }
        );
        assert_eq!(spans[1].worker, 1);
        assert_eq!(
            spans[2],
            WorkerSpan {
                worker: 1,
                job: 2,
                start_s: 1.0,
                end_s: 2.0
            }
        );
        assert_eq!(spans[3].worker, 1);
        let util = worker_utilization(&spans, 2, 1.0);
        assert_eq!(util[0].values, vec![1.0, 1.0, 1.0]);
        assert_eq!(util[1].values, vec![1.0, 1.0, 1.0]);
        let q = job_queue_depth(&spans, 1.0);
        // After 1s all four jobs have started except... job2 starts at
        // 1.0 (not > 1.0), job3 at 2.0: depth(1)=1, depth(2)=0, depth(3)=0.
        assert_eq!(q.values, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn sparkline_and_dashboard_render() {
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        let series = vec![Series {
            name: "queue:io_batch".into(),
            dt_s: 1.0,
            values: vec![1.0, 2.0],
        }];
        let dash = render_dashboard(&series);
        assert!(dash.contains("queue:io_batch"));
        assert!(dash.contains("max 2.000"));
        assert!(render_dashboard(&[]).contains("nothing to sample"));
    }

    #[test]
    fn chrome_counters_are_one_object_per_line() {
        let series = vec![Series {
            name: "occupancy:compute".into(),
            dt_s: 0.5,
            values: vec![1.0, 0.25],
        }];
        let txt = chrome_counters(&series);
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ph\":\"C\""));
        assert!(lines[1].contains("\"ts\":500000"));
        assert!(lines[1].contains("\"value\":0.25"));
    }
}
