//! Combinatorial-optimization miniatures: `175.vpr`, `300.twolf`,
//! `429.mcf`.
//!
//! `175.vpr` is the near-ideal case: a long annealing loop over a tiny
//! working set (0.8 MB of traffic against 26.9 s of compute). `300.twolf`
//! reads its cell file *inside* the offloaded region — one of the §5.1
//! remote-input programs. `429.mcf` relaxes a large arc array, putting it
//! in the slow-network refusal set.

use crate::{PaperRow, WorkloadSpec};
use native_offloader::WorkloadInput;

const VPR_SRC: &str = r#"
// 175.vpr miniature: simulated-annealing placement.
int seed;
int place[2048];
int best_cost;

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

int wire_cost(int a, int b) {
    int dx = place[a] / 64 - place[b] / 64;
    int dy = place[a] % 64 - place[b] % 64;
    if (dx < 0) dx = -dx;
    if (dy < 0) dy = -dy;
    return dx + dy;
}

int try_place(int iters) {
    int i; int a; int b; int tmp; int before; int after;
    int cost = 0;
    for (i = 0; i < 2048; i++) cost += wire_cost(i, (i * 7 + 1) % 2048);
    for (i = 0; i < iters; i++) {
        a = rnd() % 2048;
        b = rnd() % 2048;
        before = wire_cost(a, (a * 7 + 1) % 2048) + wire_cost(b, (b * 7 + 1) % 2048);
        tmp = place[a]; place[a] = place[b]; place[b] = tmp;
        after = wire_cost(a, (a * 7 + 1) % 2048) + wire_cost(b, (b * 7 + 1) % 2048);
        if (after > before + (iters - i) % 97) {
            tmp = place[a]; place[a] = place[b]; place[b] = tmp;
        } else {
            cost = cost - before + after;
        }
    }
    best_cost = cost;
    return cost;
}

int main() {
    int iters; int i;
    scanf("%d", &iters);
    seed = 7;
    for (i = 0; i < 2048; i++) place[i] = rnd() % 4096;
    int c = try_place(iters);
    printf("final cost %d\n", c);
    return 0;
}
"#;

/// The `175.vpr` miniature.
pub fn vpr() -> WorkloadSpec {
    WorkloadSpec {
        name: "175.vpr",
        short: "vpr",
        description: "FPGA placement by simulated annealing (SPEC CPU2000)",
        source: VPR_SRC,
        profile_input: || WorkloadInput::from_stdin("60000\n"),
        eval_input: || WorkloadInput::from_stdin("140000\n"),
        expected_target: "try_place",
        paper: PaperRow {
            loc_k: 11.3,
            exec_time_s: 26.9,
            offloaded_fns: (9, 272),
            referenced_gv: (672, 760),
            fn_ptr_uses: 3,
            target: "try_place_while.cond",
            coverage_pct: 99.07,
            invocations: 1,
            traffic_mb_per_inv: 0.8,
            refused_on_slow: false,
        },
    }
}

const TWOLF_SRC: &str = r#"
// 300.twolf miniature: standard-cell placement; reads the cell file
// inside the offloaded region (remote input on the server).
int seed;
char cellbuf[32768];
int cellx[4096];
int celly[4096];
int final_cost;

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

int utemp(int iters) {
    int fd; int i; int a; int b; int tmp; int cost = 0;
    long got;
    // Read cell description (remote input when offloaded, like the paper's
    // "reads a file about cell information to optimally place cells").
    fd = fopen("cells.dat", "r");
    got = fread(cellbuf, 1, 32768, fd);
    fclose(fd);
    for (i = 0; i < 4096; i++) {
        cellx[i] = cellbuf[i * 8 % 32768];
        celly[i] = cellbuf[(i * 8 + 4) % 32768];
    }
    for (i = 0; i < iters; i++) {
        a = rnd() % 4096;
        b = rnd() % 4096;
        int da = cellx[a] - cellx[b];
        int db = celly[a] - celly[b];
        if (da < 0) da = -da;
        if (db < 0) db = -db;
        if (da + db > 40) {
            tmp = cellx[a]; cellx[a] = cellx[b]; cellx[b] = tmp;
            cost++;
        }
    }
    final_cost = cost + (int)got;
    return final_cost;
}

int main() {
    int iters;
    scanf("%d", &iters);
    seed = 99;
    int c = utemp(iters);
    printf("placed %d\n", c);
    return 0;
}
"#;

fn cells_file() -> Vec<u8> {
    (0..32768u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 25) as u8)
        .collect()
}

/// The `300.twolf` miniature.
pub fn twolf() -> WorkloadSpec {
    WorkloadSpec {
        name: "300.twolf",
        short: "twolf",
        description: "standard-cell place/route with remote cell-file input (SPEC CPU2000)",
        source: TWOLF_SRC,
        profile_input: || WorkloadInput::from_stdin("50000\n").with_file("cells.dat", cells_file()),
        eval_input: || WorkloadInput::from_stdin("120000\n").with_file("cells.dat", cells_file()),
        expected_target: "utemp",
        paper: PaperRow {
            loc_k: 17.8,
            exec_time_s: 157.8,
            offloaded_fns: (3, 191),
            referenced_gv: (566, 838),
            fn_ptr_uses: 0,
            target: "utemp",
            coverage_pct: 99.84,
            invocations: 1,
            traffic_mb_per_inv: 3.3,
            refused_on_slow: false,
        },
    }
}

const MCF_SRC: &str = r#"
// 429.mcf miniature: single-source shortest path over a large arc array
// (Bellman-Ford relaxation passes).
int arc_from[24576];
int arc_to[24576];
int arc_cost[24576];
int dist[8192];
int seed;

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

long global_opt(int passes) {
    int p; int i; int changed = 0;
    long total = 0;
    for (i = 1; i < 8192; i++) dist[i] = 1000000;
    dist[0] = 0;
    for (p = 0; p < passes; p++) {
        changed = 0;
        for (i = 0; i < 24576; i++) {
            int u = arc_from[i];
            int v = arc_to[i];
            int w = arc_cost[i];
            if (dist[u] + w < dist[v]) {
                dist[v] = dist[u] + w;
                changed++;
            }
        }
        total += changed;
    }
    for (i = 0; i < 8192; i++) total += dist[i] % 1000;
    return total;
}

int main() {
    int passes; int i;
    scanf("%d", &passes);
    seed = 1;
    for (i = 0; i < 24576; i++) {
        arc_from[i] = rnd() % 8192;
        arc_to[i] = (arc_from[i] + 1 + rnd() % 128) % 8192;
        arc_cost[i] = 1 + rnd() % 1000;
    }
    long t = global_opt(passes);
    printf("opt %d\n", (int)(t % 1000000));
    return 0;
}
"#;

/// The `429.mcf` miniature.
pub fn mcf() -> WorkloadSpec {
    WorkloadSpec {
        name: "429.mcf",
        short: "mcf",
        description: "vehicle scheduling / min-cost flow relaxation (SPEC CPU2006)",
        source: MCF_SRC,
        profile_input: || WorkloadInput::from_stdin("12\n"),
        eval_input: || WorkloadInput::from_stdin("26\n"),
        expected_target: "global_opt",
        paper: PaperRow {
            loc_k: 1.6,
            exec_time_s: 104.8,
            offloaded_fns: (19, 24),
            referenced_gv: (39, 43),
            fn_ptr_uses: 0,
            target: "global_opt",
            coverage_pct: 99.55,
            invocations: 1,
            traffic_mb_per_inv: 47.9,
            refused_on_slow: true,
        },
    }
}
