//! VM edge cases: the failure modes the offload machinery is built
//! around — cross-device function pointers, external calls, machine-
//! specific refusals — exercised at the machine level.

use offload_ir::builder::FunctionBuilder;
use offload_ir::{Builtin, ConstValue, Module, TargetAbi, Type};
use offload_machine::host::LocalHost;
use offload_machine::loader;
use offload_machine::target::TargetSpec;
use offload_machine::vm::{Host, HostCtx, RtVal, StackBank, Vm, VmError};

fn unified() -> offload_ir::DataLayout {
    TargetAbi::MobileArm32.data_layout()
}

/// A module whose main calls `target` through a function pointer.
fn indirect_module() -> (Module, offload_ir::FuncId) {
    let mut m = Module::new("t");
    let target = m.declare_function("target", vec![], Type::I32);
    {
        let mut b = FunctionBuilder::new(&mut m, target);
        let v = b.const_i32(7);
        b.ret(Some(v));
        b.finish();
    }
    let main = m.declare_function("main", vec![], Type::I32);
    {
        let mut b = FunctionBuilder::new(&mut m, main);
        let fp = b.const_value(ConstValue::FuncAddr(target));
        let r = b.call_indirect(fp, Type::I32, vec![]).expect("i32");
        b.ret(Some(r));
        b.finish();
    }
    m.entry = Some(main);
    (m, target)
}

#[test]
fn same_device_function_pointer_resolves() {
    let (m, _) = indirect_module();
    let spec = TargetSpec::galaxy_s5();
    let image = loader::load(&m, &unified()).unwrap();
    let mut vm = Vm::new(&m, &spec, image, StackBank::Mobile);
    let mut host = LocalHost::new();
    assert_eq!(vm.run_entry(&mut host).unwrap(), Some(RtVal::I(7)));
}

#[test]
fn cross_device_function_pointer_faults() {
    // The §3.4 problem, mechanically: a program that loads a function
    // pointer out of a *global table* gets the table-owner's (mobile)
    // stub addresses; on the server bank they do not resolve — exactly
    // why the compiler inserts fn_map_to_local.
    let m = offload_minic::compile(
        "int seven() { return 7; }\n\
         int (*table[1])() = { seven };\n\
         int main() { int (*f)() = table[0]; return f(); }",
        "t",
    )
    .unwrap();
    let spec = TargetSpec::xps_8700();
    // Image with mobile-resolved function-pointer initializers, executed
    // on the server bank.
    let image = loader::load(&m, &unified()).unwrap();
    let mut vm = Vm::new(&m, &spec, image, StackBank::Server);
    let err = vm.run_entry(&mut LocalHost::new()).unwrap_err();
    assert!(matches!(err, VmError::BadFunctionPointer { .. }), "{err}");

    // The same image resolved for the server bank works.
    let image = loader::load_for_server(&m, &unified()).unwrap();
    let mut vm = Vm::new(&m, &spec, image, StackBank::Server);
    assert_eq!(
        vm.run_entry(&mut LocalHost::new()).unwrap(),
        Some(RtVal::I(7))
    );
}

#[test]
fn call_to_external_declaration_errors() {
    let mut m = Module::new("t");
    let ext = m.declare_function("mystery", vec![], Type::Void);
    let main = m.declare_function("main", vec![], Type::I32);
    {
        let mut b = FunctionBuilder::new(&mut m, main);
        b.call(ext, vec![]);
        let v = b.const_i32(0);
        b.ret(Some(v));
        b.finish();
    }
    m.entry = Some(main);
    let spec = TargetSpec::galaxy_s5();
    let image = loader::load(&m, &unified()).unwrap();
    let mut vm = Vm::new(&m, &spec, image, StackBank::Mobile);
    let err = vm.run_entry(&mut LocalHost::new()).unwrap_err();
    assert!(matches!(err, VmError::UnknownExternal { name } if name == "mystery"));
}

#[test]
fn deep_recursion_without_allocas_is_bounded() {
    let m = offload_minic::compile(
        "int down(int n) { if (n <= 0) return 0; return down(n - 1); } \
         int main() { return down(100000); }",
        "t",
    )
    .unwrap();
    let spec = TargetSpec::galaxy_s5();
    let image = loader::load(&m, &unified()).unwrap();
    let mut vm = Vm::new(&m, &spec, image, StackBank::Mobile);
    vm.set_fuel(50_000_000);
    let err = vm.run_entry(&mut LocalHost::new()).unwrap_err();
    assert_eq!(err, VmError::StackOverflow);
}

#[test]
fn server_style_host_refuses_machine_specific_ops() {
    // A host refusing syscalls/asm, as the offload runtime's ServerBridge
    // does: the VM surfaces MachineSpecific.
    struct Refusing(LocalHost);
    impl Host for Refusing {
        fn page_fault(&mut self, page: u64, ctx: &mut HostCtx<'_>) -> Result<(), VmError> {
            self.0.page_fault(page, ctx)
        }
        fn builtin(
            &mut self,
            b: Builtin,
            args: &[RtVal],
            ctx: &mut HostCtx<'_>,
        ) -> Result<Option<RtVal>, VmError> {
            self.0.builtin(b, args, ctx)
        }
        fn syscall(
            &mut self,
            number: u32,
            _: &[RtVal],
            _: &mut HostCtx<'_>,
        ) -> Result<RtVal, VmError> {
            Err(VmError::MachineSpecific {
                what: format!("syscall {number}"),
            })
        }
        fn inline_asm(&mut self, text: &str, _: &mut HostCtx<'_>) -> Result<(), VmError> {
            Err(VmError::MachineSpecific {
                what: text.to_string(),
            })
        }
    }

    let m = offload_minic::compile("int main() { asm(\"wfi\"); return 0; }", "t").unwrap();
    let spec = TargetSpec::xps_8700();
    let image = loader::load(&m, &unified()).unwrap();
    let mut vm = Vm::new(&m, &spec, image, StackBank::Server);
    let err = vm.run_entry(&mut Refusing(LocalHost::new())).unwrap_err();
    assert!(matches!(err, VmError::MachineSpecific { .. }));

    let m2 = offload_minic::compile("int main() { return (int)syscall(9); }", "t").unwrap();
    let image = loader::load(&m2, &unified()).unwrap();
    let mut vm = Vm::new(&m2, &spec, image, StackBank::Server);
    let err = vm.run_entry(&mut Refusing(LocalHost::new())).unwrap_err();
    assert!(matches!(err, VmError::MachineSpecific { .. }));
}

#[test]
fn exit_codes_propagate_through_nested_calls() {
    let m = offload_minic::compile(
        "void deep(int n) { if (n == 0) exit(42); deep(n - 1); } \
         int main() { deep(10); return 0; }",
        "t",
    )
    .unwrap();
    let spec = TargetSpec::galaxy_s5();
    let image = loader::load(&m, &unified()).unwrap();
    let mut vm = Vm::new(&m, &spec, image, StackBank::Mobile);
    assert_eq!(
        vm.run_entry(&mut LocalHost::new()).unwrap(),
        Some(RtVal::I(42))
    );
}

#[test]
fn fuel_is_shared_across_calls() {
    let m = offload_minic::compile(
        "int spin(int n) { int i; int a = 0; for (i = 0; i < n; i++) a += i; return a; } \
         int main() { int t = 0; int k; for (k = 0; k < 100; k++) t += spin(10000); return t % 7; }",
        "t",
    )
    .unwrap();
    let spec = TargetSpec::galaxy_s5();
    let image = loader::load(&m, &unified()).unwrap();
    let mut vm = Vm::new(&m, &spec, image, StackBank::Mobile);
    vm.set_fuel(50_000);
    assert_eq!(
        vm.run_entry(&mut LocalHost::new()).unwrap_err(),
        VmError::FuelExhausted
    );
}
