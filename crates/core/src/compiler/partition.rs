//! Partitioning (§3.3): one module for the mobile device, one for the
//! server.
//!
//! For each offload target `F` the original body moves to `F__local` and
//! `F` itself becomes the *dispatcher* of Fig. 3(b):
//!
//! ```text
//! if (is_profitable(F_id)) { r = offload_call(F_id, args...); }
//! else                     { r = F__local(args...); }
//! ```
//!
//! so every existing call site transparently gains the dynamic offloading
//! decision. The server partition additionally gets, per Fig. 3(c):
//!
//! * a `__server_F` wrapper per target (receive arguments, run the local
//!   body, send the return value),
//! * a `__listen` entry that accepts requests and dispatches on task id,
//! * *unused function removal*: bodies unreachable from `__listen` are
//!   stripped (`getPlayerTurn` disappears from the paper's server code).

use offload_ir::builder::FunctionBuilder;
use offload_ir::{Builtin, CastKind, FuncId, Module, Type};

/// A target to partition around.
#[derive(Debug, Clone)]
pub struct PartitionTarget {
    /// Task id (nonzero).
    pub id: u32,
    /// The target function (its id stays the dispatcher's id).
    pub func: FuncId,
}

/// Result of dispatcher insertion on the shared module.
#[derive(Debug, Clone)]
pub struct DispatcherInfo {
    /// Task id.
    pub id: u32,
    /// Dispatcher function (the original id).
    pub dispatcher: FuncId,
    /// The extracted local body.
    pub local_func: FuncId,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Target name.
    pub name: String,
}

/// Rewrite each target into dispatcher + `__local` body, in place.
/// Applied once, before the module is cloned into the two partitions, so
/// both sides share function ids.
pub fn insert_dispatchers(module: &mut Module, targets: &[PartitionTarget]) -> Vec<DispatcherInfo> {
    let mut out = Vec::with_capacity(targets.len());
    for t in targets {
        let (name, params, ret) = {
            let f = module.function(t.func);
            (f.name.clone(), f.params.clone(), f.ret.clone())
        };
        // Move the body into a fresh `__local` function.
        let local = module.declare_function(format!("{name}__local"), params.clone(), ret.clone());
        {
            let blocks = std::mem::take(&mut module.function_mut(t.func).blocks);
            let vals =
                std::mem::replace(&mut module.function_mut(t.func).value_types, params.clone());
            let lf = module.function_mut(local);
            lf.blocks = blocks;
            lf.value_types = vals;
        }

        // Build the dispatcher in the (now empty) original function.
        let mut b = FunctionBuilder::new(module, t.func);
        let args: Vec<_> = (0..params.len()).map(|i| b.param(i)).collect();
        let task_const = b.const_i32(t.id as i32);
        let profitable = b
            .call_builtin(Builtin::IsProfitable, Type::I32, vec![task_const])
            .expect("i32 result");
        let bb_off = b.new_block();
        let bb_local = b.new_block();
        b.cond_br(profitable, bb_off, bb_local);

        // Offload path.
        b.switch_to(bb_off);
        let task_const2 = b.const_i32(t.id as i32);
        let mut off_args = vec![task_const2];
        off_args.extend(args.iter().copied());
        match &ret {
            Type::Void => {
                b.call_builtin(Builtin::OffloadCall, Type::I64, off_args);
                b.ret(None);
            }
            Type::F64 => {
                let r = b
                    .call_builtin(Builtin::OffloadCallF, Type::F64, off_args)
                    .expect("f64 result");
                b.ret(Some(r));
            }
            Type::Ptr(_) => {
                let r = b
                    .call_builtin(Builtin::OffloadCall, Type::I64, off_args)
                    .expect("i64 result");
                let p = b.cast(CastKind::IntToPtr, ret.clone(), r);
                b.ret(Some(p));
            }
            Type::I64 => {
                let r = b
                    .call_builtin(Builtin::OffloadCall, Type::I64, off_args)
                    .expect("i64 result");
                b.ret(Some(r));
            }
            other => {
                let r = b
                    .call_builtin(Builtin::OffloadCall, Type::I64, off_args)
                    .expect("i64 result");
                let narrowed = b.cast(CastKind::Trunc, other.clone(), r);
                b.ret(Some(narrowed));
            }
        }

        // Local path.
        b.switch_to(bb_local);
        let r = b.call(local, args);
        b.ret(r);
        b.finish();

        out.push(DispatcherInfo {
            id: t.id,
            dispatcher: t.func,
            local_func: local,
            params,
            ret,
            name,
        });
    }
    out
}

/// Generate the server-side receive wrapper `__server_<name>` for one
/// target: fetch marshalled arguments, invoke the local body, send the
/// return value home.
pub fn generate_server_wrapper(module: &mut Module, info: &DispatcherInfo) -> FuncId {
    let wrapper = module.declare_function(format!("__server_{}", info.name), vec![], Type::Void);
    let mut b = FunctionBuilder::new(module, wrapper);
    let mut args = Vec::with_capacity(info.params.len());
    for (i, pty) in info.params.iter().enumerate() {
        let idx = b.const_i32(i as i32);
        let v = match pty {
            Type::F64 => b
                .call_builtin(Builtin::RecvArgF, Type::F64, vec![idx])
                .expect("f64"),
            Type::I64 => b
                .call_builtin(Builtin::RecvArgI, Type::I64, vec![idx])
                .expect("i64"),
            Type::Ptr(_) => {
                let raw = b
                    .call_builtin(Builtin::RecvArgI, Type::I64, vec![idx])
                    .expect("i64");
                b.cast(CastKind::IntToPtr, pty.clone(), raw)
            }
            other => {
                let raw = b
                    .call_builtin(Builtin::RecvArgI, Type::I64, vec![idx])
                    .expect("i64");
                b.cast(CastKind::Trunc, other.clone(), raw)
            }
        };
        args.push(v);
    }
    let ret = b.call(info.local_func, args);
    match (&info.ret, ret) {
        (Type::Void, _) => {
            let z = b.const_i64(0);
            b.call_builtin(Builtin::SendReturn, Type::Void, vec![z]);
        }
        (Type::F64, Some(r)) => {
            b.call_builtin(Builtin::SendReturnF, Type::Void, vec![r]);
        }
        (Type::Ptr(_), Some(r)) => {
            let wide = b.cast(CastKind::PtrToInt, Type::I64, r);
            b.call_builtin(Builtin::SendReturn, Type::Void, vec![wide]);
        }
        (Type::I64, Some(r)) => {
            b.call_builtin(Builtin::SendReturn, Type::Void, vec![r]);
        }
        (_, Some(r)) => {
            let wide = b.cast(CastKind::Sext, Type::I64, r);
            b.call_builtin(Builtin::SendReturn, Type::Void, vec![wide]);
        }
        (_, None) => unreachable!("non-void target must produce a value"),
    }
    b.ret(None);
    b.finish()
}

/// Generate the `__listen` server entry (Fig. 3(c)): accept a request,
/// dispatch on task id, repeat until the client disconnects (id 0).
pub fn generate_listen(module: &mut Module, wrappers: &[(u32, FuncId)]) -> FuncId {
    let listen = module.declare_function("__listen", vec![], Type::Void);
    let mut b = FunctionBuilder::new(module, listen);
    let bb_loop = b.new_block();
    let bb_done = b.new_block();
    b.br(bb_loop);

    b.switch_to(bb_loop);
    let id = b
        .call_builtin(Builtin::AcceptOffload, Type::I32, vec![])
        .expect("i32");
    // Chain of comparisons, one per task (the paper's switch-case).
    let mut bb_next = b.new_block();
    let zero = b.const_i32(0);
    let is_zero = b.cmp(offload_ir::CmpOp::Eq, Type::I32, id, zero);
    b.cond_br(is_zero, bb_done, bb_next);
    for (task_id, wrapper) in wrappers {
        b.switch_to(bb_next);
        let want = b.const_i32(*task_id as i32);
        let hit = b.cmp(offload_ir::CmpOp::Eq, Type::I32, id, want);
        let bb_hit = b.new_block();
        bb_next = b.new_block();
        b.cond_br(hit, bb_hit, bb_next);
        b.switch_to(bb_hit);
        b.call(*wrapper, vec![]);
        b.br(bb_loop);
    }
    // Unknown id: ignore and keep listening.
    b.switch_to(bb_next);
    b.br(bb_loop);

    b.switch_to(bb_done);
    b.ret(None);
    b.finish()
}

/// Strip the bodies of every function unreachable from `roots` (§3.3
/// unused function removal). Returns how many bodies were removed.
pub fn remove_unused_functions(module: &mut Module, roots: &[FuncId]) -> usize {
    let cg = offload_ir::analysis::CallGraph::build(module);
    let live = cg.reachable_from(roots);
    let dead: Vec<FuncId> = module
        .iter_functions()
        .filter(|(id, f)| !f.is_declaration() && !live.contains(id))
        .map(|(id, _)| id)
        .collect();
    module.strip_bodies(&dead);
    dead.len()
}

/// Build the complete server partition from the shared (dispatcher-
/// rewritten) module: server wrappers + listen loop + server-specific
/// optimizations + dead-body removal. Returns the module and the number of
/// removed bodies.
pub fn build_server_module(shared: &Module, infos: &[DispatcherInfo]) -> (Module, usize) {
    let mut server = shared.clone();
    server.name = format!("{}.server", shared.name);
    let wrappers: Vec<(u32, FuncId)> = infos
        .iter()
        .map(|info| (info.id, generate_server_wrapper(&mut server, info)))
        .collect();
    let listen = generate_listen(&mut server, &wrappers);
    server.entry = Some(listen);
    let removed = remove_unused_functions(&mut server, &[listen]);
    (server, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_ir::verify::verify_module;
    use offload_ir::{Callee, Inst};

    const SRC: &str = "
        int maxDepth;
        double getAITurn() {
            int i; double s = 0.0;
            for (i = 0; i < maxDepth; i++) s += (double)(i % 7);
            return s;
        }
        int getPlayerTurn() { int mv; scanf(\"%d\", &mv); return mv; }
        int main() {
            scanf(\"%d\", &maxDepth);
            int p = getPlayerTurn();
            double s = getAITurn();
            printf(\"%d %.1f\\n\", p, s);
            return 0;
        }";

    fn partitioned() -> (Module, Module, Vec<DispatcherInfo>) {
        let mut m = offload_minic::compile(SRC, "chess").unwrap();
        let target = m.function_by_name("getAITurn").unwrap();
        let infos = insert_dispatchers(
            &mut m,
            &[PartitionTarget {
                id: 1,
                func: target,
            }],
        );
        let (server, _) = build_server_module(&m, &infos);
        (m, server, infos)
    }

    #[test]
    fn dispatcher_structure() {
        let (mobile, _, infos) = partitioned();
        verify_module(&mobile).unwrap();
        let info = &infos[0];
        assert_eq!(mobile.function(info.dispatcher).name, "getAITurn");
        assert_eq!(mobile.function(info.local_func).name, "getAITurn__local");
        // The dispatcher calls is_profitable and offload_call_f.
        let disp = mobile.function(info.dispatcher);
        let builtins: Vec<Builtin> = disp
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                Inst::Call {
                    callee: Callee::Builtin(b),
                    ..
                } => Some(*b),
                _ => None,
            })
            .collect();
        assert!(builtins.contains(&Builtin::IsProfitable));
        assert!(
            builtins.contains(&Builtin::OffloadCallF),
            "f64 return uses the float variant"
        );
        // The local path calls the extracted body.
        let calls_local = disp.blocks.iter().flat_map(|b| &b.insts).any(
            |i| matches!(i, Inst::Call { callee: Callee::Direct(f), .. } if *f == info.local_func),
        );
        assert!(calls_local);
    }

    #[test]
    fn server_module_shape() {
        let (_, server, infos) = partitioned();
        verify_module(&server).unwrap();
        let listen = server.entry.unwrap();
        assert_eq!(server.function(listen).name, "__listen");
        assert!(server.function_by_name("__server_getAITurn").is_some());
        // Unused function removal: the scanf-bound mobile-side functions
        // lose their bodies on the server (Fig. 3(c) line 66-67).
        let gpt = server.function_by_name("getPlayerTurn").unwrap();
        assert!(
            server.function(gpt).is_declaration(),
            "getPlayerTurn removed from server"
        );
        let main = server.function_by_name("main").unwrap();
        assert!(
            server.function(main).is_declaration(),
            "main removed from server"
        );
        // The target body itself survives.
        let local = infos[0].local_func;
        assert!(!server.function(local).is_declaration());
    }

    #[test]
    fn call_sites_are_untouched() {
        let (mobile, _, infos) = partitioned();
        // main still calls the ORIGINAL id, which is now the dispatcher.
        let main = mobile.function(mobile.entry.unwrap());
        let calls_dispatcher = main.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(i, Inst::Call { callee: Callee::Direct(f), .. } if *f == infos[0].dispatcher)
        });
        assert!(calls_dispatcher);
    }

    #[test]
    fn int_and_ptr_returns_marshal() {
        let src = "
            int scale(int x) { return x * 3; }
            int *pick(int *a, int *b) { return a; }
            int main() { int u = 1; int v = 2; return scale(u) + *pick(&u, &v); }";
        let mut m = offload_minic::compile(src, "t").unwrap();
        let t1 = m.function_by_name("scale").unwrap();
        let t2 = m.function_by_name("pick").unwrap();
        let infos = insert_dispatchers(
            &mut m,
            &[
                PartitionTarget { id: 1, func: t1 },
                PartitionTarget { id: 2, func: t2 },
            ],
        );
        verify_module(&m).unwrap();
        let (server, _) = build_server_module(&m, &infos);
        verify_module(&server).unwrap();
    }

    #[test]
    fn listen_dispatches_multiple_tasks() {
        let src = "
            int a() { return 1; }
            int bfun() { return 2; }
            int main() { return a() + bfun(); }";
        let mut m = offload_minic::compile(src, "t").unwrap();
        let fa = m.function_by_name("a").unwrap();
        let fb = m.function_by_name("bfun").unwrap();
        let infos = insert_dispatchers(
            &mut m,
            &[
                PartitionTarget { id: 1, func: fa },
                PartitionTarget { id: 2, func: fb },
            ],
        );
        let (server, removed) = build_server_module(&m, &infos);
        verify_module(&server).unwrap();
        assert!(removed >= 1, "main is dead on the server");
        assert!(server.function_by_name("__server_a").is_some());
        assert!(server.function_by_name("__server_bfun").is_some());
    }
}
