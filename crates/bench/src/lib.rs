//! Benchmark harness for the Native Offloader reproduction: everything the
//! `reproduce` binary and the Criterion benches share.

pub mod datasets;
pub mod evloop;
pub mod farm;
pub mod harness;
pub mod micro;
pub mod perf;
pub mod profile;
pub mod render;
pub mod seed;
pub mod stream;

/// Geometric mean of a nonempty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    #[test]
    fn geomean_basics() {
        assert!((super::geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((super::geomean(&[8.0]) - 8.0).abs() < 1e-12);
    }
}
