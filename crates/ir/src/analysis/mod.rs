//! Analyses used by the offload compiler: call graph (unused-function
//! removal, filter propagation), dominators and natural loops (hot-loop
//! profiling and loop-level offload candidates), Andersen-style points-to
//! (indirect-call resolution, pointer provenance) and the portability
//! lints built on top of it.

pub mod callgraph;
pub mod dataflow;
pub mod dom;
pub mod lints;
pub mod loops;
pub mod pointsto;

pub use callgraph::CallGraph;
pub use dataflow::{
    escape_analysis, lower_footprint, mod_ref_summaries, proven_readonly_pages, region_footprint,
    run_region_lints, EscapeInfo, FootprintSpace, ModRef, ModRefResult, PageFootprint,
    RegionFootprint, SccOrder, Summary,
};
pub use dom::DomTree;
pub use lints::run_lints;
pub use loops::{Loop, LoopForest};
pub use pointsto::{AbsLoc, CallSite, CallTargets, PointsTo, PtsSet};
