//! Natural-loop detection.
//!
//! The hot function/loop profiler (§3.1, Table 3) treats loops as offload
//! candidates alongside functions — the chess example offloads `for_i` but
//! rejects `for_j`. A natural loop is identified by a back edge `t -> h`
//! where `h` dominates `t`; its body is every block that can reach `t`
//! without passing through `h`.

use std::collections::BTreeSet;

use crate::analysis::dom::DomTree;
use crate::module::{BlockId, Function};

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: BTreeSet<BlockId>,
    /// Nesting depth: 1 for outermost loops.
    pub depth: u32,
    /// Index of the enclosing loop in the forest, if nested.
    pub parent: Option<usize>,
}

impl Loop {
    /// `true` if `bb` belongs to this loop.
    pub fn contains(&self, bb: BlockId) -> bool {
        self.body.contains(&bb)
    }
}

/// All natural loops of a function, with nesting resolved.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// Loops, outermost-first within each nest.
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Find the natural loops of `func`. Loops sharing a header are merged
    /// (standard practice for `while` + `continue` CFGs).
    pub fn compute(func: &Function) -> Self {
        let dt = DomTree::compute(func);
        let mut by_header: Vec<(BlockId, BTreeSet<BlockId>)> = Vec::new();

        for (bb, _) in func.iter_blocks() {
            if !dt.is_reachable(bb) {
                continue;
            }
            for succ in func.successors(bb) {
                if dt.dominates(succ, bb) {
                    // Back edge bb -> succ.
                    let body = natural_loop_body(func, succ, bb);
                    match by_header.iter_mut().find(|(h, _)| *h == succ) {
                        Some((_, existing)) => existing.extend(body),
                        None => by_header.push((succ, body)),
                    }
                }
            }
        }

        // Sort outer loops first (bigger bodies first), then resolve
        // nesting: a loop's parent is the smallest strictly-containing loop.
        by_header.sort_by_key(|(_, body)| std::cmp::Reverse(body.len()));
        let mut loops: Vec<Loop> = by_header
            .into_iter()
            .map(|(header, body)| Loop {
                header,
                body,
                depth: 1,
                parent: None,
            })
            .collect();
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for j in 0..loops.len() {
                if i == j {
                    continue;
                }
                let contains =
                    loops[j].body.is_superset(&loops[i].body) && loops[j].header != loops[i].header;
                if contains {
                    best = match best {
                        None => Some(j),
                        Some(b) if loops[j].body.len() < loops[b].body.len() => Some(j),
                        keep => keep,
                    };
                }
            }
            loops[i].parent = best;
        }
        // Depths: walk parent chains.
        for i in 0..loops.len() {
            let mut depth = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                depth += 1;
                cur = loops[p].parent;
            }
            loops[i].depth = depth;
        }
        LoopForest { loops }
    }

    /// The innermost loop containing `bb`, if any.
    pub fn innermost_containing(&self, bb: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(bb))
            .max_by_key(|l| l.depth)
    }
}

fn natural_loop_body(func: &Function, header: BlockId, tail: BlockId) -> BTreeSet<BlockId> {
    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); func.blocks.len()];
    for (bb, _) in func.iter_blocks() {
        for s in func.successors(bb) {
            preds[s.0 as usize].push(bb);
        }
    }
    let mut body = BTreeSet::from([header, tail]);
    let mut stack = vec![tail];
    while let Some(bb) = stack.pop() {
        if bb == header {
            continue;
        }
        for &p in &preds[bb.0 as usize] {
            if body.insert(p) {
                stack.push(p);
            }
        }
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::{FuncId, Module};
    use crate::types::Type;

    /// Nested loops mirroring the chess example's `for_i`/`for_j`:
    /// entry -> h1; h1 -> {h2, exit}; h2 -> {body, latch1}; body -> h2;
    /// latch1 -> h1.
    fn nested() -> (Module, FuncId, [BlockId; 5]) {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![Type::I32], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let h1 = b.new_block();
        let h2 = b.new_block();
        let body = b.new_block();
        let latch1 = b.new_block();
        let exit = b.new_block();
        b.br(h1);
        b.switch_to(h1);
        b.cond_br(p, h2, exit);
        b.switch_to(h2);
        b.cond_br(p, body, latch1);
        b.switch_to(body);
        b.br(h2);
        b.switch_to(latch1);
        b.br(h1);
        b.switch_to(exit);
        b.ret(None);
        b.finish();
        (m, f, [h1, h2, body, latch1, exit])
    }

    #[test]
    fn finds_nested_loops() {
        let (m, f, [h1, h2, body, latch1, exit]) = nested();
        let forest = LoopForest::compute(m.function(f));
        assert_eq!(forest.loops.len(), 2);
        let outer = forest.loops.iter().find(|l| l.header == h1).unwrap();
        let inner = forest.loops.iter().find(|l| l.header == h2).unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(outer.contains(h2) && outer.contains(latch1) && outer.contains(body));
        assert!(inner.contains(body) && !inner.contains(latch1));
        assert!(!outer.contains(exit));
        assert_eq!(
            inner.parent,
            Some(forest.loops.iter().position(|l| l.header == h1).unwrap())
        );
    }

    #[test]
    fn innermost_lookup() {
        let (m, f, [h1, h2, body, latch1, _]) = nested();
        let forest = LoopForest::compute(m.function(f));
        assert_eq!(forest.innermost_containing(body).unwrap().header, h2);
        assert_eq!(forest.innermost_containing(latch1).unwrap().header, h1);
        assert_eq!(forest.innermost_containing(h1).unwrap().header, h1);
        assert!(forest.innermost_containing(BlockId(0)).is_none());
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        b.ret(None);
        b.finish();
        assert!(LoopForest::compute(m.function(f)).loops.is_empty());
    }

    #[test]
    fn self_loop() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![Type::I32], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let h = b.new_block();
        let exit = b.new_block();
        b.br(h);
        b.switch_to(h);
        b.cond_br(p, h, exit);
        b.switch_to(exit);
        b.ret(None);
        b.finish();
        let forest = LoopForest::compute(m.function(f));
        assert_eq!(forest.loops.len(), 1);
        assert_eq!(forest.loops[0].body.len(), 1);
        assert_eq!(forest.loops[0].header, h);
    }
}
