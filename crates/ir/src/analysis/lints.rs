//! Portability and code-quality lints over the IR.
//!
//! The UVA lints (`OFF010`–`OFF012`) encode the §3.2 pointer-portability
//! hazards of a 32-bit mobile ↔ 64-bit server address-space split: a
//! pointer narrowed below the server's address size loses bits, a pointer
//! fabricated from a device-specific integer is meaningless on the other
//! device, and provenance laundered through opaque arithmetic defeats the
//! translation the unified virtual address space performs. The
//! code-quality lints (`OFF020`–`OFF022`) catch dead stores, unreachable
//! blocks and missing returns.
//!
//! Lints are pure: they read the module and a [`PointsTo`] result and
//! return [`Diagnostic`]s; policy (what fails CI, what merely prints)
//! lives with the caller.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::analysis::pointsto::PointsTo;
use crate::diag::{Code, Diagnostic};
use crate::inst::{BinOp, CastKind, Inst, UnOp};
use crate::module::{BlockId, ConstValue, FuncId, Function, Module, ValueId};
use crate::types::Type;

/// Run every lint over `module`. `server_addr_bits` is the widest target
/// address size (64 for the paper's x86-64 servers): `PtrToInt` into
/// anything narrower is an error.
pub fn run_lints(module: &Module, pt: &PointsTo, server_addr_bits: u32) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (fid, func) in module.iter_functions() {
        if func.is_declaration() {
            continue;
        }
        lint_casts(module, pt, fid, func, server_addr_bits, &mut diags);
        lint_dead_stores(fid, func, &mut diags);
        lint_unreachable(fid, func, &mut diags);
        lint_missing_return(fid, func, &mut diags);
    }
    diags
}

/// Integer constants materialized in `func`, for null-pointer detection
/// (the front-end lowers `NULL` as `inttoptr(const 0)`).
fn const_ints(func: &Function) -> HashMap<ValueId, i64> {
    let mut out = HashMap::new();
    for block in &func.blocks {
        for inst in &block.insts {
            if let Inst::Const { dst, value } = inst {
                let v = match value {
                    ConstValue::I8(v) => Some(i64::from(*v)),
                    ConstValue::I16(v) => Some(i64::from(*v)),
                    ConstValue::I32(v) => Some(i64::from(*v)),
                    ConstValue::I64(v) => Some(*v),
                    _ => None,
                };
                if let Some(v) = v {
                    out.insert(*dst, v);
                }
            }
        }
    }
    out
}

fn lint_casts(
    module: &Module,
    pt: &PointsTo,
    fid: FuncId,
    func: &Function,
    server_addr_bits: u32,
    diags: &mut Vec<Diagnostic>,
) {
    let consts = const_ints(func);
    // Trace widening casts back to the underlying value, so `inttoptr
    // (sext (const 0))` still reads as a null literal, and record which
    // integers were produced by `ptrtoint`: a round-trip carries
    // provenance syntactically even when the points-to set is empty (e.g.
    // a pointer parameter of a function with no in-module callers).
    let mut widened_from: HashMap<ValueId, ValueId> = HashMap::new();
    let mut from_ptrtoint: BTreeSet<ValueId> = BTreeSet::new();
    for block in &func.blocks {
        for inst in &block.insts {
            match inst {
                Inst::Cast {
                    dst,
                    kind: CastKind::Zext | CastKind::Sext,
                    src,
                    ..
                } => {
                    widened_from.insert(*dst, *src);
                }
                Inst::Cast {
                    dst,
                    kind: CastKind::PtrToInt,
                    ..
                } => {
                    from_ptrtoint.insert(*dst);
                }
                _ => {}
            }
        }
    }
    let root_of = |mut v: ValueId| {
        while let Some(&p) = widened_from.get(&v) {
            v = p;
        }
        v
    };

    for (bid, block) in func.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            match inst {
                Inst::Cast {
                    kind: CastKind::PtrToInt,
                    to,
                    src,
                    ..
                } => {
                    if let Some(bits) = to.int_bits() {
                        if bits < server_addr_bits {
                            diags.push(
                                Diagnostic::new(
                                    Code::PtrToIntNarrow,
                                    format!("pointer narrowed by ptrtoint to {to} ({bits} bits)"),
                                )
                                .in_func(fid)
                                .at(bid, i as u32)
                                .note(format!(
                                    "server addresses are {server_addr_bits}-bit; the low \
                                     {bits} bits do not survive the round trip (§3.2)"
                                )),
                            );
                        }
                    }
                    // A pointer already laundered to `unknown` has been
                    // reported where the laundering happened.
                    let _ = src;
                }
                Inst::Cast {
                    kind: CastKind::IntToPtr,
                    to,
                    src,
                    ..
                } => {
                    let root = root_of(*src);
                    let is_null = consts.get(&root) == Some(&0);
                    let round_trip = from_ptrtoint.contains(&root);
                    if !is_null && !round_trip && !pt.value_set(fid, *src).has_provenance() {
                        diags.push(
                            Diagnostic::new(
                                Code::IntToPtrNoProvenance,
                                format!(
                                    "pointer of type {to} fabricated from an integer with \
                                     no pointer provenance"
                                ),
                            )
                            .in_func(fid)
                            .at(bid, i as u32)
                            .note(
                                "the numeric value of an address is device specific; a \
                                 fabricated pointer cannot be translated by the unified \
                                 address space (§3.2)",
                            ),
                        );
                    }
                }
                Inst::Cast {
                    kind: CastKind::Trunc,
                    to,
                    src,
                    ..
                } => {
                    let narrow = to.int_bits().is_some_and(|b| b < 32);
                    if narrow && !pt.value_set(fid, *src).locs().is_empty() {
                        diags.push(
                            Diagnostic::new(
                                Code::PtrProvenanceEscape,
                                format!("pointer-derived value truncated to {to}"),
                            )
                            .in_func(fid)
                            .at(bid, i as u32)
                            .note("the truncated value can no longer be address-translated"),
                        );
                    }
                }
                Inst::Bin { op, lhs, rhs, .. } => {
                    let opaque = !matches!(op, BinOp::Add | BinOp::Sub);
                    let carries = !pt.value_set(fid, *lhs).locs().is_empty()
                        || !pt.value_set(fid, *rhs).locs().is_empty();
                    if opaque && carries {
                        diags.push(
                            Diagnostic::new(
                                Code::PtrProvenanceEscape,
                                format!("pointer-derived value used in opaque `{op:?}` arithmetic"),
                            )
                            .in_func(fid)
                            .at(bid, i as u32)
                            .note(
                                "UVA translation only sees through pointer ± offset; the \
                                 result cannot be proven to address the same object (§3.2)",
                            ),
                        );
                    }
                }
                Inst::Un {
                    op: UnOp::Neg | UnOp::Not,
                    operand,
                    ..
                } if !pt.value_set(fid, *operand).locs().is_empty() => {
                    diags.push(
                        Diagnostic::new(
                            Code::PtrProvenanceEscape,
                            "pointer-derived value used in opaque unary arithmetic".to_string(),
                        )
                        .in_func(fid)
                        .at(bid, i as u32),
                    );
                }
                _ => {}
            }
        }
    }
    let _ = module;
}

fn lint_dead_stores(fid: FuncId, func: &Function, diags: &mut Vec<Diagnostic>) {
    // A stack slot whose address is only ever used as a store target is
    // write-only. Any other use (a load, address arithmetic, an argument)
    // conservatively keeps it live.
    struct SlotUse {
        stored: bool,
        live: bool,
        site: (BlockId, u32),
    }
    let mut slots: HashMap<ValueId, SlotUse> = HashMap::new();
    for (bid, block) in func.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Inst::Alloca { dst, .. } = inst {
                slots.insert(
                    *dst,
                    SlotUse {
                        stored: false,
                        live: false,
                        site: (bid, i as u32),
                    },
                );
            }
        }
    }
    for block in &func.blocks {
        for inst in &block.insts {
            match inst {
                Inst::Alloca { .. } => {}
                Inst::Store { addr, value, .. } => {
                    if let Some(s) = slots.get_mut(addr) {
                        s.stored = true;
                    }
                    if addr != value {
                        if let Some(s) = slots.get_mut(value) {
                            s.live = true; // address escapes as data
                        }
                    }
                }
                other => {
                    let mut uses = Vec::new();
                    other.uses(&mut uses);
                    for u in uses {
                        if let Some(s) = slots.get_mut(&u) {
                            s.live = true;
                        }
                    }
                }
            }
        }
    }
    let mut dead: Vec<(ValueId, (BlockId, u32))> = slots
        .into_iter()
        .filter(|(_, s)| s.stored && !s.live)
        .map(|(v, s)| (v, s.site))
        .collect();
    dead.sort();
    for (v, (bid, i)) in dead {
        diags.push(
            Diagnostic::new(
                Code::DeadStore,
                format!("stack slot {v} is written but never read"),
            )
            .in_func(fid)
            .at(bid, i),
        );
    }
}

fn lint_unreachable(fid: FuncId, func: &Function, diags: &mut Vec<Diagnostic>) {
    let mut seen: BTreeSet<BlockId> = BTreeSet::from([func.entry()]);
    let mut queue: VecDeque<BlockId> = VecDeque::from([func.entry()]);
    while let Some(bb) = queue.pop_front() {
        for s in func.successors(bb) {
            if seen.insert(s) {
                queue.push_back(s);
            }
        }
    }
    for (bid, block) in func.iter_blocks() {
        if seen.contains(&bid) {
            continue;
        }
        // Front-ends synthesize empty join/return blocks after branches
        // that both return; only flag blocks holding real work.
        let has_work = block
            .insts
            .iter()
            .any(|i| !i.is_terminator() && !matches!(i, Inst::Const { .. }));
        if has_work {
            diags.push(
                Diagnostic::new(
                    Code::UnreachableBlock,
                    format!("block {bid} is unreachable"),
                )
                .in_func(fid)
                .at(bid, 0),
            );
        }
    }
}

fn lint_missing_return(fid: FuncId, func: &Function, diags: &mut Vec<Diagnostic>) {
    if func.ret == Type::Void {
        return;
    }
    for (bid, block) in func.iter_blocks() {
        let falls_off = match block.insts.last() {
            None => true,
            Some(Inst::Ret { value: None }) => true,
            Some(last) => !last.is_terminator(),
        };
        if falls_off {
            diags.push(
                Diagnostic::new(
                    Code::MissingReturn,
                    format!(
                        "function returns {} but block {bid} falls off the end without a value",
                        func.ret
                    ),
                )
                .in_func(fid)
                .at(bid, block.insts.len().saturating_sub(1) as u32),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::Block;

    fn analyzed(m: &Module) -> PointsTo {
        PointsTo::analyze(m)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn narrow_ptrtoint_is_an_error() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        let slot = b.alloca(Type::I32, 1);
        let narrowed = b.cast(CastKind::PtrToInt, Type::I32, slot);
        b.ret(Some(narrowed));
        b.finish();
        let pt = analyzed(&m);
        let diags = run_lints(&m, &pt, 64);
        assert!(codes(&diags).contains(&Code::PtrToIntNarrow), "{diags:?}");
        // Under a 32-bit-only deployment the same cast would be fine.
        let diags32 = run_lints(&m, &pt, 32);
        assert!(!codes(&diags32).contains(&Code::PtrToIntNarrow));
    }

    #[test]
    fn wide_ptrtoint_roundtrip_is_clean() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        let slot = b.alloca(Type::I32, 1);
        let as_int = b.cast(CastKind::PtrToInt, Type::I64, slot);
        let back = b.cast(CastKind::IntToPtr, Type::I32.ptr_to(), as_int);
        let v = b.load(Type::I32, back);
        b.ret(Some(v));
        b.finish();
        let pt = analyzed(&m);
        let diags = run_lints(&m, &pt, 64);
        assert!(!codes(&diags).contains(&Code::PtrToIntNarrow), "{diags:?}");
        assert!(
            !codes(&diags).contains(&Code::IntToPtrNoProvenance),
            "round-trip keeps provenance: {diags:?}"
        );
    }

    #[test]
    fn inttoptr_from_plain_integer_warns_but_null_does_not() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![Type::I64], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let fabricated = b.cast(CastKind::IntToPtr, Type::I32.ptr_to(), p);
        let zero = b.const_i64(0);
        let null = b.cast(CastKind::IntToPtr, Type::I32.ptr_to(), zero);
        let v = b.const_i32(1);
        b.store(Type::I32, fabricated, v);
        b.store(Type::I32, null, v);
        b.ret(None);
        b.finish();
        let pt = analyzed(&m);
        let diags = run_lints(&m, &pt, 64);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::IntToPtrNoProvenance)
            .collect();
        assert_eq!(hits.len(), 1, "only the fabricated pointer: {diags:?}");
    }

    #[test]
    fn opaque_arithmetic_on_pointer_warns() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::I64);
        let mut b = FunctionBuilder::new(&mut m, f);
        let slot = b.alloca(Type::I32, 1);
        let as_int = b.cast(CastKind::PtrToInt, Type::I64, slot);
        let mask = b.const_i64(0xfff);
        let masked = b.bin(BinOp::And, Type::I64, as_int, mask);
        b.ret(Some(masked));
        b.finish();
        let pt = analyzed(&m);
        let diags = run_lints(&m, &pt, 64);
        assert!(
            codes(&diags).contains(&Code::PtrProvenanceEscape),
            "{diags:?}"
        );
    }

    #[test]
    fn dead_store_detected_and_loaded_slot_is_live() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        let dead = b.alloca(Type::I32, 1);
        let live = b.alloca(Type::I32, 1);
        let v = b.const_i32(7);
        b.store(Type::I32, dead, v);
        b.store(Type::I32, live, v);
        let r = b.load(Type::I32, live);
        b.ret(Some(r));
        b.finish();
        let pt = analyzed(&m);
        let diags = run_lints(&m, &pt, 64);
        let hits: Vec<_> = diags.iter().filter(|d| d.code == Code::DeadStore).collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert!(hits[0].message.contains(&dead.to_string()));
    }

    #[test]
    fn unreachable_block_with_work_is_flagged() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::I32);
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let v = b.const_i32(1);
            b.ret(Some(v));
            b.finish();
        }
        // Hand-append an unreachable block that does real work.
        m.function_mut(f).value_types.push(Type::I32);
        m.function_mut(f).value_types.push(Type::I32);
        let v1 = ValueId(m.function(f).value_types.len() as u32 - 2);
        let v2 = ValueId(m.function(f).value_types.len() as u32 - 1);
        m.function_mut(f).blocks.push(Block {
            insts: vec![
                Inst::Const {
                    dst: v1,
                    value: ConstValue::I32(2),
                },
                Inst::Bin {
                    dst: v2,
                    op: BinOp::Add,
                    ty: Type::I32,
                    lhs: v1,
                    rhs: v1,
                },
                Inst::Ret { value: Some(v2) },
            ],
        });
        let pt = analyzed(&m);
        let diags = run_lints(&m, &pt, 64);
        assert!(codes(&diags).contains(&Code::UnreachableBlock), "{diags:?}");
    }

    #[test]
    fn missing_return_flagged_on_nonvoid() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::I32);
        m.function_mut(f).blocks.push(Block {
            insts: vec![Inst::Ret { value: None }],
        });
        let pt = analyzed(&m);
        let diags = run_lints(&m, &pt, 64);
        assert!(codes(&diags).contains(&Code::MissingReturn), "{diags:?}");
    }
}
