//! Configuration of the compiler and the runtime session.

use std::sync::Arc;

use offload_machine::target::TargetSpec;
use offload_net::Link;

use crate::runtime::predict::{PageHistory, StreamMode};

/// Input environment of one program run: scripted stdin plus virtual
/// files, all living on the *mobile* device (whose I/O the server reaches
/// only through remote I/O).
#[derive(Debug, Clone, Default)]
pub struct WorkloadInput {
    /// Bytes fed to `scanf`/`getchar`.
    pub stdin: Vec<u8>,
    /// `(name, contents)` of files on the mobile filesystem.
    pub files: Vec<(String, Vec<u8>)>,
}

impl WorkloadInput {
    /// Input with only stdin.
    pub fn from_stdin(stdin: impl Into<Vec<u8>>) -> Self {
        WorkloadInput {
            stdin: stdin.into(),
            files: Vec::new(),
        }
    }

    /// Add a file.
    #[must_use]
    pub fn with_file(mut self, name: impl Into<String>, data: impl Into<Vec<u8>>) -> Self {
        self.files.push((name.into(), data.into()));
        self
    }
}

/// Compiler-side configuration.
#[derive(Debug, Clone)]
pub struct CompileConfig {
    /// The mobile device the program runs on.
    pub mobile: TargetSpec,
    /// The server the program may offload to.
    pub server: TargetSpec,
    /// Bandwidth assumed by the *static* estimator (bits/second). The
    /// paper's worked example (Table 3) assumes 80 Mbps.
    pub static_bandwidth_bps: u64,
    /// Instruction budget for the profiling run.
    pub profile_fuel: u64,
    /// Also consider (and outline) hot loops as offload candidates, not
    /// just functions — the paper's `for_i` / `main_for.cond` targets.
    pub outline_loops: bool,
    /// Fraction of profiled execution time below which a candidate is not
    /// even considered (hot-region cutoff).
    pub hot_threshold: f64,
    /// Run the IR optimizer (constant folding, branch simplification,
    /// dead-code elimination) before profiling, so cycle counts reflect
    /// optimized code.
    pub optimize: bool,
}

impl Default for CompileConfig {
    /// The default static estimator assumes a *good* network (the fast
    /// 802.11ac figure): static estimation only gates code generation, and
    /// communication-heavy programs like `164.gzip` must still be compiled
    /// offloading-enabled so the *dynamic* estimator can offload them on
    /// fast networks and refuse them on slow ones (§5.1). Pass
    /// [`CompileConfig::table3`] to reproduce the paper's 80 Mbps worked
    /// example instead.
    fn default() -> Self {
        CompileConfig {
            mobile: TargetSpec::galaxy_s5(),
            server: TargetSpec::xps_8700(),
            static_bandwidth_bps: 500_000_000,
            profile_fuel: 4_000_000_000,
            outline_loops: true,
            hot_threshold: 0.05,
            optimize: true,
        }
    }
}

impl CompileConfig {
    /// The Table 3 worked-example configuration: `BW = 80 Mbps` (and the
    /// device pair whose measured ratio plays the paper's `R = 5`).
    pub fn table3() -> Self {
        CompileConfig {
            static_bandwidth_bps: 80_000_000,
            ..Self::default()
        }
    }
}

/// Runtime-session configuration, including the §4 optimization toggles
/// (each one is an ablation axis in the benchmark suite).
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The mobile device.
    pub mobile: TargetSpec,
    /// The server.
    pub server: TargetSpec,
    /// The wireless link.
    pub link: Link,
    /// Prefetch profile-predicted pages at initialization (§4).
    pub prefetch: bool,
    /// Compress server→mobile transfers (§4).
    pub compress: bool,
    /// Batch communication (§4); off = one message per item.
    pub batch: bool,
    /// Re-estimate profitability at run time (§3.1); off = always trust
    /// the static decision and offload.
    pub dynamic_estimation: bool,
    /// Copy-on-demand paging (§4); off = eagerly ship every present page
    /// at initialization, like a conservative static partitioner (§6).
    pub copy_on_demand: bool,
    /// Pages fetched per demand fault (fault-ahead window): a fault pulls
    /// the faulting page plus its successors that exist on the mobile
    /// device, amortizing the round trip over sequential access patterns.
    pub fault_ahead: u64,
    /// Use *observed* effective bandwidth (NWSLite-style EWMA over real
    /// transfers) in the dynamic estimator instead of the link's nominal
    /// figure — the §6 bandwidth-aware prediction extension. Off by
    /// default, matching the paper's runtime.
    pub adaptive_bandwidth: bool,
    /// Sub-page delta transfers. At finalization, diff each dirty page
    /// against its pre-offload baseline and ship only the changed byte
    /// runs; on the upload side (prefetch and demand paging), diff each
    /// page against the implicit all-zero page a fresh server frame
    /// starts as. Both directions fall back per page (and per message)
    /// to full pages whenever the delta would be larger. Only takes
    /// effect in the batched path (`batch = true`); results are always
    /// byte-identical to full-page transfers, only the wire bytes (and
    /// therefore communication time) change.
    pub delta_writeback: bool,
    /// Speculative page streaming: predicted pages are pushed onto the
    /// link *while the server VM runs*, so a fault on an in-flight page
    /// pays only its residual arrival time instead of a full round trip.
    /// `Off` (the default) takes the synchronous demand path untouched;
    /// every mode produces byte-identical program results — only timing
    /// and wire traffic change.
    pub stream_mode: StreamMode,
    /// Markov page-succession table for [`StreamMode::History`], seeded
    /// from a prior session's trace (see `PageHistory::from_records`).
    /// Shared via `Arc` so a farm can hand the same table to many
    /// sessions. Ignored by the other modes.
    pub page_history: Option<Arc<PageHistory>>,
    /// Consume the compiler's per-region memory-access certificates:
    /// restrict the offload request's present-page advertisement to the
    /// certified footprint, skip baseline snapshots outside the certified
    /// may-write set, seed the stream predictor with the certified read
    /// set, and fold the certified footprint into the dynamic estimator.
    /// A dynamic oracle cross-checks every fault and dirty page against
    /// the certificate and fails loudly on a violation. Off by default:
    /// results are byte-identical either way, but wire traffic differs,
    /// so established benchmark baselines stay comparable.
    pub certificates: bool,
    /// Execution fuel per device.
    pub fuel: u64,
}

impl SessionConfig {
    /// The paper's slow network: 802.11n.
    pub fn slow_network() -> Self {
        Self::with_link(Link::wifi_802_11n())
    }

    /// The paper's fast network: 802.11ac.
    pub fn fast_network() -> Self {
        Self::with_link(Link::wifi_802_11ac())
    }

    /// A Cloudlet (§6): a nearby server one hop away — same bandwidth
    /// class as 802.11ac but a fraction of the latency, the fix the paper
    /// cites for chatty remote-I/O programs.
    pub fn cloudlet() -> Self {
        Self::with_link(Link::custom("cloudlet", 500_000_000, 0.000_2))
    }

    /// Ideal offloading: a free link (the Fig. 6 "Ideal" series).
    pub fn ideal_network() -> Self {
        let mut c = Self::with_link(Link::ideal());
        // The ideal series has no communication overheads at all, so the
        // dynamic estimator would never refuse anyway.
        c.dynamic_estimation = false;
        c
    }

    /// Default toggles over the given link.
    pub fn with_link(link: Link) -> Self {
        SessionConfig {
            mobile: TargetSpec::galaxy_s5(),
            server: TargetSpec::xps_8700(),
            link,
            prefetch: true,
            compress: true,
            batch: true,
            dynamic_estimation: true,
            copy_on_demand: true,
            fault_ahead: 8,
            adaptive_bandwidth: false,
            delta_writeback: true,
            stream_mode: StreamMode::Off,
            page_history: None,
            certificates: false,
            fuel: 6_000_000_000,
        }
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self::fast_network()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(
            SessionConfig::slow_network().link.bandwidth_bps
                < SessionConfig::fast_network().link.bandwidth_bps
        );
        assert!(!SessionConfig::ideal_network().dynamic_estimation);
        assert!(SessionConfig::default().copy_on_demand);
    }

    #[test]
    fn workload_input_builder() {
        let w = WorkloadInput::from_stdin("5\n").with_file("a.bin", vec![1, 2]);
        assert_eq!(w.stdin, b"5\n");
        assert_eq!(w.files.len(), 1);
    }
}
