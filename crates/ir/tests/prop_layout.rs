//! Fuzz tests for the data-layout engine — the foundation the §3.2
//! memory unification stands on. A wrong layout silently corrupts every
//! cross-device struct access, so these invariants are fuzzed over a
//! fixed-seed splitmix64 stream: identical cases every run, failures
//! reproduce by rerunning the test.

use offload_ir::{Module, StructDef, TargetAbi, Type};

/// Minimal splitmix64 — the canonical copy lives in
/// `offload_workloads::rng`, which this leaf crate cannot depend on.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }
}

/// A random scalar type (no pointers).
fn scalar_type(rng: &mut Rng) -> Type {
    match rng.below(5) {
        0 => Type::I8,
        1 => Type::I16,
        2 => Type::I32,
        3 => Type::I64,
        _ => Type::F64,
    }
}

/// A random scalar/pointer/array field type.
fn field_type(rng: &mut Rng) -> Type {
    let base = match rng.below(7) {
        0 => Type::I8,
        1 => Type::I16,
        2 => Type::I32,
        3 => Type::I64,
        4 => Type::F64,
        5 => Type::I32.ptr_to(),
        _ => Type::F64.ptr_to(),
    };
    // 1-in-4 chance of wrapping in a short array, like the original
    // weighted strategy.
    if rng.below(4) == 0 {
        base.array_of(1 + rng.below(4) as usize)
    } else {
        base
    }
}

fn random_abi(rng: &mut Rng) -> TargetAbi {
    match rng.below(4) {
        0 => TargetAbi::MobileArm32,
        1 => TargetAbi::ServerX8664,
        2 => TargetAbi::ServerIa32,
        _ => TargetAbi::ServerBigEndian64,
    }
}

/// Field offsets are monotone, aligned, non-overlapping, and the struct
/// size covers the last field and is a multiple of the struct alignment —
/// C layout rules, under every ABI.
#[test]
fn struct_layout_is_well_formed() {
    let mut rng = Rng(0x001A_1007);
    for _ in 0..128 {
        let fields: Vec<Type> = (0..1 + rng.below(9))
            .map(|_| field_type(&mut rng))
            .collect();
        let abi = random_abi(&mut rng);
        let mut m = Module::new("prop");
        let sid = m.define_struct(StructDef {
            name: "S".into(),
            fields: fields.clone(),
        });
        let layout = abi.data_layout();
        let sl = layout.struct_layout(sid, &m);

        assert_eq!(sl.offsets.len(), fields.len());
        let mut prev_end = 0u64;
        for (field, off) in fields.iter().zip(&sl.offsets) {
            let fa = layout.align_of(field, &m);
            let fs = layout.size_of(field, &m);
            assert_eq!(off % fa, 0, "field at {off} misaligned (align {fa})");
            assert!(*off >= prev_end, "fields overlap");
            prev_end = off + fs;
        }
        assert!(sl.size >= prev_end, "size must cover the last field");
        assert_eq!(
            sl.size % sl.align,
            0,
            "size must be a multiple of alignment"
        );
        let max_field_align = fields.iter().map(|f| layout.align_of(f, &m)).max().unwrap();
        assert_eq!(sl.align, max_field_align);
    }
}

/// The unified (mobile) size of any struct is at least its packed IA32
/// size: realignment only ever *adds* padding (Fig. 4).
#[test]
fn realignment_only_adds_padding() {
    let mut rng = Rng(0x009A_DD17);
    for _ in 0..128 {
        let fields: Vec<Type> = (0..1 + rng.below(9))
            .map(|_| field_type(&mut rng))
            .collect();
        let mut m = Module::new("prop");
        let sid = m.define_struct(StructDef {
            name: "S".into(),
            fields,
        });
        let arm = TargetAbi::MobileArm32.data_layout().struct_layout(sid, &m);
        let ia32 = TargetAbi::ServerIa32.data_layout().struct_layout(sid, &m);
        assert!(arm.size >= ia32.size);
    }
}

/// Pointer-free structs lay out identically on ARM32 and x86-64 (both
/// align wide scalars to 8) — which is why the paper's eval only hits
/// realignment through pointer-bearing and packed cases.
#[test]
fn ptr_free_structs_agree_between_arm_and_x8664() {
    let mut rng = Rng(0xA9_2EE);
    for _ in 0..128 {
        let fields: Vec<Type> = (0..1 + rng.below(9))
            .map(|_| scalar_type(&mut rng))
            .collect();
        let mut m = Module::new("prop");
        let sid = m.define_struct(StructDef {
            name: "S".into(),
            fields,
        });
        let arm = TargetAbi::MobileArm32.data_layout().struct_layout(sid, &m);
        let x64 = TargetAbi::ServerX8664.data_layout().struct_layout(sid, &m);
        assert_eq!(arm, x64);
    }
}

/// Array size is exactly `len * size(elem)` under every ABI.
#[test]
fn array_sizes_multiply() {
    let mut rng = Rng(0x00A4_4A75);
    for _ in 0..128 {
        let elem = field_type(&mut rng);
        let len = 1 + rng.below(19) as usize;
        let abi = random_abi(&mut rng);
        let m = Module::new("prop");
        let layout = abi.data_layout();
        let arr = elem.clone().array_of(len);
        assert_eq!(
            layout.size_of(&arr, &m),
            layout.size_of(&elem, &m) * len as u64
        );
        assert_eq!(layout.align_of(&arr, &m), layout.align_of(&elem, &m));
    }
}
