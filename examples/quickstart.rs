//! Quickstart: compile a small C program, run it locally on the simulated
//! phone, then run it offloaded to the simulated server, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use native_offloader::{Offloader, SessionConfig, WorkloadInput};

const PROGRAM: &str = r#"
double mandel_area(int grid) {
    int ix; int iy; int inside = 0;
    for (iy = 0; iy < grid; iy++) {
        for (ix = 0; ix < grid; ix++) {
            double cr = -2.0 + 3.0 * (double)ix / (double)grid;
            double ci = -1.5 + 3.0 * (double)iy / (double)grid;
            double zr = 0.0; double zi = 0.0;
            int it = 0;
            while (it < 24 && zr * zr + zi * zi < 4.0) {
                double t = zr * zr - zi * zi + cr;
                zi = 2.0 * zr * zi + ci;
                zr = t;
                it++;
            }
            if (it == 24) inside++;
        }
    }
    return (double)inside * 9.0 / (double)(grid * grid);
}

int main() {
    int grid;
    scanf("%d", &grid);
    printf("area ~= %.4f\n", mandel_area(grid));
    return 0;
}
"#;

fn main() {
    // 1. Compile: the profiler runs the program on the simulated Galaxy S5,
    //    the filter rules out the scanf-bound main, Equation 1 selects
    //    mandel_area, and the partitioner emits mobile + server modules.
    let app = Offloader::new()
        .compile_source(PROGRAM, "quickstart", &WorkloadInput::from_stdin("120\n"))
        .expect("compiles");
    println!(
        "offload targets: {:?}",
        app.plan.tasks.iter().map(|t| &t.name).collect::<Vec<_>>()
    );

    // 2. Baseline: local execution on the phone.
    let input = WorkloadInput::from_stdin("200\n");
    let local = app.run_local(&input).expect("local run");
    println!(
        "local:     {:>8.2} ms   {:>8.1} mJ   output: {:?}",
        local.total_seconds * 1e3,
        local.energy_mj,
        local.console.trim()
    );

    // 3. Offloaded over the paper's fast network (802.11ac).
    let off = app
        .run_offloaded(&input, &SessionConfig::fast_network())
        .expect("offloaded run");
    println!(
        "offloaded: {:>8.2} ms   {:>8.1} mJ   output: {:?}",
        off.total_seconds * 1e3,
        off.energy_mj,
        off.console.trim()
    );
    assert_eq!(
        local.console, off.console,
        "offloading must not change behaviour"
    );

    println!(
        "speedup: {:.2}x   battery saving: {:.1}%   traffic: {:.1} KB over {} messages",
        off.speedup_vs(&local),
        (1.0 - off.normalized_energy(&local)) * 100.0,
        (off.upload.raw_bytes + off.download.raw_bytes) as f64 / 1024.0,
        off.upload.messages + off.download.messages,
    );
}
