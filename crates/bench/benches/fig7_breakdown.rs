//! Fig. 7 bench: overhead breakdown of offloaded execution for the three
//! overhead archetypes — fn-ptr translation (sjeng), remote I/O (gobmk),
//! communication (gzip with forced offload).

use native_offloader::SessionConfig;
use offload_bench::micro;
use offload_workloads::by_short_name;

fn main() {
    for (short, overhead) in [
        ("sjeng", "fnptr"),
        ("gobmk", "remote-io"),
        ("gzip", "network"),
    ] {
        let w = by_short_name(short).expect("workload exists");
        let app = w.compile().expect("compiles");
        let input = (w.eval_input)();
        let mut cfg = SessionConfig::fast_network();
        cfg.dynamic_estimation = false; // measure the breakdown even when marginal

        micro::simulated(&format!("fig7_breakdown/{overhead}/{short}"), 3, || {
            app.run_offloaded(&input, &cfg)
                .expect("offloaded")
                .total_seconds
        });

        let rep = app.run_offloaded(&input, &cfg).expect("offloaded");
        let b = &rep.breakdown;
        println!(
            "[fig7] {short}: total {:.2} ms = compute {:.2} + fnptr {:.3} + remote-io {:.3} + network {:.3}",
            rep.total_seconds * 1e3,
            (b.mobile_compute_s + b.server_compute_s) * 1e3,
            b.fn_ptr_translation_s * 1e3,
            b.remote_io_s * 1e3,
            b.communication_s * 1e3
        );
        match overhead {
            "fnptr" => assert!(rep.fn_map_translations > 0),
            "remote-io" => assert!(rep.remote_io_calls > 0),
            _ => assert!(b.communication_s > 0.0),
        }
    }
}
