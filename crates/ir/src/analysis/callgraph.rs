//! Call graph construction and reachability.
//!
//! The partitioner uses the call graph twice: to propagate machine-specific
//! taint from callees to callers (a function calling `scanf` is as
//! unoffloadable as `scanf` itself, §3.1) and to find functions unused by
//! the server partition so their bodies can be removed (§3.3, Fig. 3(c)).

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::inst::{Callee, Inst};
use crate::module::{ConstValue, FuncId, Module};

/// The call graph of a module.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Direct callees of each function.
    callees: HashMap<FuncId, BTreeSet<FuncId>>,
    /// Direct callers of each function.
    callers: HashMap<FuncId, BTreeSet<FuncId>>,
    /// Functions whose address is taken anywhere in the module — indirect
    /// calls may reach any of these.
    address_taken: BTreeSet<FuncId>,
    /// Functions containing at least one indirect call.
    has_indirect: BTreeSet<FuncId>,
}

impl CallGraph {
    /// Build the call graph of `module`.
    pub fn build(module: &Module) -> Self {
        let mut callees: HashMap<FuncId, BTreeSet<FuncId>> = HashMap::new();
        let mut callers: HashMap<FuncId, BTreeSet<FuncId>> = HashMap::new();
        let mut address_taken = BTreeSet::new();
        let mut has_indirect = BTreeSet::new();

        // Function addresses stored in global initializers (e.g. the
        // paper's `evals` table) count as address-taken too.
        for (_, g) in module.iter_globals() {
            if let crate::module::GlobalInit::Scalars(vals) = &g.init {
                for v in vals {
                    if let ConstValue::FuncAddr(f) = v {
                        address_taken.insert(*f);
                    }
                }
            }
        }

        for (id, func) in module.iter_functions() {
            callees.entry(id).or_default();
            for block in &func.blocks {
                for inst in &block.insts {
                    match inst {
                        Inst::Call {
                            callee: Callee::Direct(target),
                            ..
                        } => {
                            callees.entry(id).or_default().insert(*target);
                            callers.entry(*target).or_default().insert(id);
                        }
                        Inst::Call {
                            callee: Callee::Indirect(_),
                            ..
                        } => {
                            has_indirect.insert(id);
                        }
                        Inst::Const {
                            value: ConstValue::FuncAddr(f),
                            ..
                        } => {
                            address_taken.insert(*f);
                        }
                        _ => {}
                    }
                }
            }
        }
        CallGraph {
            callees,
            callers,
            address_taken,
            has_indirect,
        }
    }

    /// Direct callees of `f`.
    pub fn callees(&self, f: FuncId) -> impl Iterator<Item = FuncId> + '_ {
        self.callees.get(&f).into_iter().flatten().copied()
    }

    /// Direct callers of `f`.
    pub fn callers(&self, f: FuncId) -> impl Iterator<Item = FuncId> + '_ {
        self.callers.get(&f).into_iter().flatten().copied()
    }

    /// Functions whose address is taken.
    pub fn address_taken(&self) -> impl Iterator<Item = FuncId> + '_ {
        self.address_taken.iter().copied()
    }

    /// `true` if `f` contains an indirect call.
    pub fn has_indirect_call(&self, f: FuncId) -> bool {
        self.has_indirect.contains(&f)
    }

    /// Every function reachable from `roots` through direct calls, plus —
    /// conservatively — every address-taken function if any reached
    /// function performs an indirect call.
    pub fn reachable_from(&self, roots: &[FuncId]) -> BTreeSet<FuncId> {
        let mut seen: BTreeSet<FuncId> = roots.iter().copied().collect();
        let mut queue: VecDeque<FuncId> = roots.iter().copied().collect();
        let mut indirect_seen = false;
        while let Some(f) = queue.pop_front() {
            if self.has_indirect_call(f) && !indirect_seen {
                indirect_seen = true;
                for t in &self.address_taken {
                    if seen.insert(*t) {
                        queue.push_back(*t);
                    }
                }
            }
            for c in self.callees(f) {
                if seen.insert(c) {
                    queue.push_back(c);
                }
            }
        }
        seen
    }

    /// The transitive closure of callers of the given seed set: used to
    /// propagate machine-specific taint upward (a caller of a tainted
    /// function is tainted).
    pub fn taint_upward(&self, seeds: &BTreeSet<FuncId>) -> BTreeSet<FuncId> {
        let mut tainted = seeds.clone();
        let mut queue: VecDeque<FuncId> = seeds.iter().copied().collect();
        while let Some(f) = queue.pop_front() {
            for c in self.callers(f) {
                if tainted.insert(c) {
                    queue.push_back(c);
                }
            }
        }
        tainted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::GlobalInit;
    use crate::types::Type;

    /// main -> a -> b;  c unused;  d address-taken, a has an indirect call.
    fn sample() -> (Module, [FuncId; 5]) {
        let mut m = Module::new("t");
        let main = m.declare_function("main", vec![], Type::Void);
        let a = m.declare_function("a", vec![], Type::Void);
        let bf = m.declare_function("b", vec![], Type::Void);
        let c = m.declare_function("c", vec![], Type::Void);
        let d = m.declare_function("d", vec![], Type::Void);

        for f in [bf, c, d] {
            let mut b = FunctionBuilder::new(&mut m, f);
            b.ret(None);
            b.finish();
        }
        {
            let mut b = FunctionBuilder::new(&mut m, a);
            b.call(bf, vec![]);
            let fp = b.const_value(ConstValue::FuncAddr(d));
            b.call_indirect(fp, Type::Void, vec![]);
            b.ret(None);
            b.finish();
        }
        {
            let mut b = FunctionBuilder::new(&mut m, main);
            b.call(a, vec![]);
            b.ret(None);
            b.finish();
        }
        (m, [main, a, bf, c, d])
    }

    #[test]
    fn edges() {
        let (m, [main, a, b, c, _d]) = sample();
        let cg = CallGraph::build(&m);
        assert!(cg.callees(main).any(|f| f == a));
        assert!(cg.callers(b).any(|f| f == a));
        assert_eq!(cg.callees(c).count(), 0);
        assert!(cg.has_indirect_call(a));
        assert!(!cg.has_indirect_call(main));
    }

    #[test]
    fn reachability_includes_address_taken_when_indirect() {
        let (m, [main, a, b, c, d]) = sample();
        let cg = CallGraph::build(&m);
        let r = cg.reachable_from(&[main]);
        assert!(r.contains(&a) && r.contains(&b));
        assert!(r.contains(&d), "address-taken function must stay reachable");
        assert!(!r.contains(&c), "c is dead");
    }

    #[test]
    fn reachability_without_indirect_ignores_address_taken() {
        let (m, [_main, _a, b, _c, _d]) = sample();
        let cg = CallGraph::build(&m);
        let r = cg.reachable_from(&[b]);
        assert_eq!(r.len(), 1, "b reaches only itself: {r:?}");
    }

    #[test]
    fn taint_propagates_to_callers() {
        let (m, [main, a, b, c, _d]) = sample();
        let cg = CallGraph::build(&m);
        let tainted = cg.taint_upward(&BTreeSet::from([b]));
        assert!(tainted.contains(&a) && tainted.contains(&main));
        assert!(!tainted.contains(&c));
    }

    #[test]
    fn global_initializer_takes_address() {
        let (mut m, [_, _, _, c, _]) = sample();
        m.define_global(
            "table",
            Type::Func(Box::new(crate::types::FuncSig {
                params: vec![],
                ret: Type::Void,
            }))
            .ptr_to()
            .array_of(1),
            GlobalInit::Scalars(vec![ConstValue::FuncAddr(c)]),
        );
        let cg = CallGraph::build(&m);
        assert!(cg.address_taken().any(|f| f == c));
    }

    #[test]
    fn empty_module_builds_an_empty_graph() {
        let m = Module::new("empty");
        let cg = CallGraph::build(&m);
        assert_eq!(cg.address_taken().count(), 0);
        assert!(cg.reachable_from(&[]).is_empty());
        assert!(cg.taint_upward(&BTreeSet::new()).is_empty());
    }

    #[test]
    fn self_recursive_function_is_its_own_caller_and_callee() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            b.call(f, vec![]);
            b.ret(None);
            b.finish();
        }
        let cg = CallGraph::build(&m);
        assert!(cg.callees(f).any(|x| x == f));
        assert!(cg.callers(f).any(|x| x == f));
        // Reachability and upward taint must terminate on the cycle.
        assert_eq!(cg.reachable_from(&[f]), BTreeSet::from([f]));
        assert_eq!(cg.taint_upward(&BTreeSet::from([f])), BTreeSet::from([f]));
    }

    #[test]
    fn calls_in_unreachable_blocks_still_form_edges() {
        // The call graph is syntactic: a call sitting in a block the CFG
        // never reaches still contributes an edge (the filter pass works
        // on text, not on a simulated execution).
        let mut m = Module::new("t");
        let dead_target = m.declare_function("dead_target", vec![], Type::Void);
        let f = m.declare_function("f", vec![], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, dead_target);
            b.ret(None);
            b.finish();
        }
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            b.ret(None);
            let dead = b.new_block();
            b.switch_to(dead);
            b.call(dead_target, vec![]);
            b.ret(None);
            b.finish();
        }
        let cg = CallGraph::build(&m);
        assert!(cg.callees(f).any(|x| x == dead_target));
        assert!(cg.reachable_from(&[f]).contains(&dead_target));
    }

    #[test]
    fn declaration_only_module_has_no_edges() {
        let mut m = Module::new("t");
        let f = m.declare_function("ext", vec![], Type::Void);
        let cg = CallGraph::build(&m);
        assert_eq!(cg.callees(f).count(), 0);
        assert_eq!(cg.callers(f).count(), 0);
        assert_eq!(cg.reachable_from(&[f]), BTreeSet::from([f]));
    }
}
