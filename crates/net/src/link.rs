//! Transfer-time model of a wireless link.

/// A point-to-point link with fixed bandwidth and latency.
///
/// Effective bandwidth is derated from the nominal maximum (WiFi never
/// delivers its marketing rate; the paper's Equation 1 example plugs in
/// 80 Mbps for the 144 Mbps network).
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Human-readable name.
    pub name: String,
    /// Effective payload bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way latency in seconds.
    pub latency_s: f64,
    /// Fixed protocol overhead added to every message, in bytes.
    pub per_message_bytes: u64,
}

impl Link {
    /// The paper's **slow** network: 802.11n, 144 Mbps nominal.
    /// Effective ≈ 80 Mbps (the figure Eq. 1's worked example uses).
    pub fn wifi_802_11n() -> Self {
        Link {
            name: "802.11n (slow)".into(),
            bandwidth_bps: 80_000_000,
            latency_s: 0.002,
            per_message_bytes: 96,
        }
    }

    /// The paper's **fast** network: 802.11ac, 844 Mbps nominal,
    /// effective ≈ 500 Mbps.
    pub fn wifi_802_11ac() -> Self {
        Link {
            name: "802.11ac (fast)".into(),
            bandwidth_bps: 500_000_000,
            latency_s: 0.001,
            per_message_bytes: 96,
        }
    }

    /// An idealized infinite link (zero cost) — the "Ideal offloading"
    /// series of Fig. 6 is an offload run over this link.
    pub fn ideal() -> Self {
        Link {
            name: "ideal".into(),
            bandwidth_bps: u64::MAX,
            latency_s: 0.0,
            per_message_bytes: 0,
        }
    }

    /// A custom link.
    pub fn custom(name: impl Into<String>, bandwidth_bps: u64, latency_s: f64) -> Self {
        Link {
            name: name.into(),
            bandwidth_bps,
            latency_s,
            per_message_bytes: 96,
        }
    }

    /// Seconds to move one message of `payload_bytes` across the link.
    pub fn transfer_time(&self, payload_bytes: u64) -> f64 {
        if self.bandwidth_bps == u64::MAX {
            return 0.0;
        }
        let wire_bytes = payload_bytes + self.per_message_bytes;
        self.latency_s + (wire_bytes * 8) as f64 / self.bandwidth_bps as f64
    }

    /// Seconds the sender needs to push one message of `payload_bytes`
    /// onto the wire — the bandwidth term of [`Link::transfer_time`]
    /// without the propagation latency. Back-to-back messages on an
    /// established pipe are spaced by this, not by the full transfer
    /// time: propagation of one message overlaps serialization of the
    /// next.
    pub fn serialization_time(&self, payload_bytes: u64) -> f64 {
        if self.bandwidth_bps == u64::MAX {
            return 0.0;
        }
        let wire_bytes = payload_bytes + self.per_message_bytes;
        (wire_bytes * 8) as f64 / self.bandwidth_bps as f64
    }

    /// Seconds for a zero-payload control round trip.
    pub fn round_trip_time(&self) -> f64 {
        2.0 * self.transfer_time(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slower_link_takes_longer() {
        let slow = Link::wifi_802_11n();
        let fast = Link::wifi_802_11ac();
        let mb = 1_000_000;
        assert!(slow.transfer_time(mb) > fast.transfer_time(mb));
    }

    #[test]
    fn eq1_example_magnitude() {
        // Eq. 1's example: 12 MB at 80 Mbps ≈ 1.2 s one way.
        let slow = Link::wifi_802_11n();
        let t = slow.transfer_time(12 * 1024 * 1024);
        assert!((1.0..1.5).contains(&t), "t = {t}");
    }

    #[test]
    fn ideal_link_is_free() {
        let l = Link::ideal();
        assert_eq!(l.transfer_time(1 << 30), 0.0);
        assert_eq!(l.round_trip_time(), 0.0);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let l = Link::wifi_802_11ac();
        let t = l.transfer_time(16);
        assert!(t < 0.0011, "small message should be ~latency, got {t}");
    }

    #[test]
    fn serialization_is_the_bandwidth_term_of_transfer() {
        let l = Link::wifi_802_11n();
        let n = 4096;
        assert!((l.serialization_time(n) - (l.transfer_time(n) - l.latency_s)).abs() < 1e-15);
        assert_eq!(Link::ideal().serialization_time(1 << 30), 0.0);
    }
}
