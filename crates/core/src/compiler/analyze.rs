//! The `reproduce analyze` entry point: run the static-analysis layer —
//! points-to, portability lints, function filter — over a program and
//! report per-function offloadability verdicts with reason chains, plus
//! every diagnostic the analyses raised, rendered rustc-style with stable
//! `OFFxxx` codes.
//!
//! This is the §3.1/§3.2 target-selection story made inspectable: the same
//! analyses the compile pipeline consumes, surfaced as a report instead of
//! silently feeding the estimator.

use offload_ir::analysis::pointsto::PointsTo;
use offload_ir::analysis::run_lints;
use offload_ir::diag::{Code, Diagnostic, DiagnosticBag, Severity};
use offload_ir::layout::WIDEST_TARGET_ADDR_BITS;
use offload_ir::{FuncId, Module};

use super::filter::{self, FilterResult, MachineSpecificCause};
use crate::OffloadError;

/// The analysis verdict for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionVerdict {
    /// The function.
    pub func: FuncId,
    /// Its source-level name.
    pub name: String,
    /// `true` if the filter lets it offload.
    pub offloadable: bool,
    /// The diagnostic code of the taint cause, when machine specific.
    pub code: Option<Code>,
    /// Human-readable cause, when machine specific.
    pub reason: Option<String>,
    /// Function names the taint propagated through, from this function to
    /// the primal cause. Empty when offloadable.
    pub chain: Vec<String>,
}

/// Everything `reproduce analyze` reports for one program.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The program (module) name.
    pub program: String,
    /// Per-function verdicts, in function-id order.
    pub verdicts: Vec<FunctionVerdict>,
    /// Filter causes + portability lints, as coded diagnostics.
    pub diagnostics: DiagnosticBag,
    /// Indirect call sites whose target set was bounded.
    pub indirect_bounded: usize,
    /// Indirect call sites with unbounded (or empty) target sets.
    pub indirect_unbounded: usize,
    /// Fixpoint rounds the points-to solver took.
    pub pointsto_rounds: u32,
    /// Function names by id, for rendering diagnostics.
    names: Vec<String>,
}

impl AnalysisReport {
    /// Number of offloadable functions.
    pub fn offloadable_count(&self) -> usize {
        self.verdicts.iter().filter(|v| v.offloadable).count()
    }

    /// Number of machine-specific functions.
    pub fn machine_specific_count(&self) -> usize {
        self.verdicts.len() - self.offloadable_count()
    }

    /// `true` if any error-severity diagnostic was raised (CI gates on
    /// this).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.has_errors()
    }

    /// Render the full report: verdict lines, then diagnostics.
    pub fn render(&self) -> String {
        let mut out = format!(
            "offload analysis for `{}`: {} functions, {} offloadable, {} machine specific\n",
            self.program,
            self.verdicts.len(),
            self.offloadable_count(),
            self.machine_specific_count(),
        );
        out.push_str(&format!(
            "indirect calls: {} bounded, {} unbounded ({} points-to rounds)\n\n",
            self.indirect_bounded, self.indirect_unbounded, self.pointsto_rounds
        ));
        for v in &self.verdicts {
            if v.offloadable {
                out.push_str(&format!("  {}: offloadable\n", v.name));
            } else {
                let code = v.code.map(|c| format!(" [{c}]")).unwrap_or_default();
                out.push_str(&format!(
                    "  {}: machine specific{code} — {}\n",
                    v.name,
                    v.reason.as_deref().unwrap_or("unknown cause"),
                ));
                if v.chain.len() > 1 {
                    out.push_str(&format!("      chain: {}\n", v.chain.join(" -> ")));
                }
            }
        }
        if !self.diagnostics.is_empty() {
            out.push('\n');
            let program = self.program.clone();
            let names = self.names.clone();
            out.push_str(&self.diagnostics.render(&move |f: FuncId| {
                format!(
                    "{}::{}",
                    program,
                    names
                        .get(f.0 as usize)
                        .cloned()
                        .unwrap_or_else(|| f.to_string())
                )
            }));
        }
        let (e, w, i) = (
            self.diagnostics.count(Severity::Error),
            self.diagnostics.count(Severity::Warning),
            self.diagnostics.count(Severity::Info),
        );
        out.push_str(&format!(
            "\n{} diagnostics: {e} errors, {w} warnings, {i} infos\n",
            self.diagnostics.len()
        ));
        out
    }

    /// Render the report as one JSON object (machine-readable form of
    /// [`render`](Self::render), for `reproduce analyze --json`).
    pub fn render_json(&self) -> String {
        fn esc(out: &mut String, s: &str) {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        let mut j = String::from("{\n  \"program\": ");
        esc(&mut j, &self.program);
        j.push_str(&format!(
            ",\n  \"functions\": {},\n  \"offloadable\": {},\n  \"machine_specific\": {},\n  \
             \"indirect_bounded\": {},\n  \"indirect_unbounded\": {},\n  \"pointsto_rounds\": {},\n  \
             \"verdicts\": [",
            self.verdicts.len(),
            self.offloadable_count(),
            self.machine_specific_count(),
            self.indirect_bounded,
            self.indirect_unbounded,
            self.pointsto_rounds,
        ));
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            j.push_str("\n    {\"name\": ");
            esc(&mut j, &v.name);
            j.push_str(&format!(", \"offloadable\": {}", v.offloadable));
            if let Some(code) = v.code {
                j.push_str(&format!(", \"code\": \"{code}\""));
            }
            if let Some(reason) = &v.reason {
                j.push_str(", \"reason\": ");
                esc(&mut j, reason);
            }
            if v.chain.len() > 1 {
                j.push_str(", \"chain\": [");
                for (k, link) in v.chain.iter().enumerate() {
                    if k > 0 {
                        j.push_str(", ");
                    }
                    esc(&mut j, link);
                }
                j.push(']');
            }
            j.push('}');
        }
        j.push_str("\n  ],\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            j.push_str(&format!(
                "\n    {{\"severity\": \"{}\", \"code\": \"{}\", \"message\": ",
                d.severity.name(),
                d.code
            ));
            esc(&mut j, &d.message);
            if let Some(f) = d.func {
                j.push_str(", \"func\": ");
                let name = self
                    .names
                    .get(f.0 as usize)
                    .cloned()
                    .unwrap_or_else(|| f.to_string());
                esc(&mut j, &name);
            }
            if !d.notes.is_empty() {
                j.push_str(", \"notes\": [");
                for (k, n) in d.notes.iter().enumerate() {
                    if k > 0 {
                        j.push_str(", ");
                    }
                    esc(&mut j, n);
                }
                j.push(']');
            }
            j.push('}');
        }
        j.push_str(&format!(
            "\n  ],\n  \"errors\": {},\n  \"warnings\": {},\n  \"infos\": {}\n}}\n",
            self.diagnostics.count(Severity::Error),
            self.diagnostics.count(Severity::Warning),
            self.diagnostics.count(Severity::Info),
        ));
        j
    }
}

/// Run the full static-analysis layer over `module`.
pub fn analyze_module(module: &Module, allow_remote_io: bool) -> AnalysisReport {
    let pt = PointsTo::analyze(module);
    let filt = filter::run_filter_with(module, allow_remote_io, &pt);

    let mut diagnostics: DiagnosticBag = filt
        .tainted
        .iter()
        .map(|(f, cause)| cause_diagnostic(module, &filt, *f, cause))
        .collect();
    diagnostics.extend(run_lints(module, &pt, WIDEST_TARGET_ADDR_BITS));

    let names: Vec<String> = module
        .iter_functions()
        .map(|(_, f)| f.name.clone())
        .collect();
    let verdicts = module
        .iter_functions()
        .map(|(f, func)| {
            let cause = filt.cause(f);
            FunctionVerdict {
                func: f,
                name: func.name.clone(),
                offloadable: cause.is_none(),
                code: cause.map(cause_code),
                reason: cause.map(|c| cause_text(module, c)),
                chain: filt
                    .reason_chain(f)
                    .into_iter()
                    .map(|g| module.function(g).name.clone())
                    .collect(),
            }
        })
        .collect();

    let (indirect_bounded, indirect_unbounded) = filt.indirect_counts();
    AnalysisReport {
        program: module.name.clone(),
        verdicts,
        diagnostics,
        indirect_bounded,
        indirect_unbounded,
        pointsto_rounds: pt.rounds(),
        names,
    }
}

/// Compile MiniC source and analyze it.
///
/// # Errors
///
/// Front-end failures.
pub fn analyze_source(
    source: &str,
    name: &str,
    allow_remote_io: bool,
) -> Result<AnalysisReport, OffloadError> {
    let module = offload_minic::compile(source, name)?;
    Ok(analyze_module(&module, allow_remote_io))
}

/// The stable diagnostic code for a filter cause.
pub fn cause_code(cause: &MachineSpecificCause) -> Code {
    match cause {
        MachineSpecificCause::InlineAsm => Code::InlineAsm,
        MachineSpecificCause::Syscall => Code::Syscall,
        MachineSpecificCause::UnknownExternal(_) => Code::UnknownExternal,
        MachineSpecificCause::InteractiveIo(_) => Code::InteractiveIo,
        MachineSpecificCause::Calls(_) => Code::TaintedCallee,
        MachineSpecificCause::CallsViaPointer(_) => Code::IndirectTainted,
        MachineSpecificCause::IndirectUnbounded => Code::IndirectUnbounded,
    }
}

fn cause_text(module: &Module, cause: &MachineSpecificCause) -> String {
    match cause {
        MachineSpecificCause::InlineAsm => "contains inline assembly".into(),
        MachineSpecificCause::Syscall => "contains a raw system call".into(),
        MachineSpecificCause::UnknownExternal(n) => {
            format!("calls unknown external function `{n}`")
        }
        MachineSpecificCause::InteractiveIo(n) => {
            format!("interactive I/O `{n}` has no remote replacement")
        }
        MachineSpecificCause::Calls(g) => {
            format!("calls machine-specific `{}`", module.function(*g).name)
        }
        MachineSpecificCause::CallsViaPointer(g) => format!(
            "indirect call may reach machine-specific `{}`",
            module.function(*g).name
        ),
        MachineSpecificCause::IndirectUnbounded => "indirect call with unbounded target set".into(),
    }
}

fn cause_diagnostic(
    module: &Module,
    filt: &FilterResult,
    f: FuncId,
    cause: &MachineSpecificCause,
) -> Diagnostic {
    let mut d = Diagnostic::new(cause_code(cause), cause_text(module, cause)).in_func(f);
    if let Some(site) = filt.sites.get(&f) {
        d = d.at(site.block, site.inst);
    }
    let chain = filt.reason_chain(f);
    if chain.len() > 1 {
        let names: Vec<String> = chain
            .iter()
            .map(|g| module.function(*g).name.clone())
            .collect();
        d = d.note(format!("taint chain: {}", names.join(" -> ")));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHESS: &str = "
        int maxDepth;
        double getAITurn() {
            int i; double s = 0.0;
            for (i = 0; i < maxDepth; i++) s += (double)i;
            printf(\"%f\\n\", s);
            return s;
        }
        int getPlayerTurn() { int mv; scanf(\"%d\", &mv); return mv; }
        void runGame() {
            int over = 0;
            while (!over) { over = getPlayerTurn(); getAITurn(); }
        }
        int main() { scanf(\"%d\", &maxDepth); runGame(); return 0; }";

    #[test]
    fn report_has_verdicts_and_codes() {
        let r = analyze_source(CHESS, "chess", true).unwrap();
        assert_eq!(r.verdicts.len(), 4);
        assert_eq!(r.offloadable_count(), 1);
        assert_eq!(r.machine_specific_count(), 3);
        let run_game = r.verdicts.iter().find(|v| v.name == "runGame").unwrap();
        assert_eq!(run_game.code, Some(Code::TaintedCallee));
        assert_eq!(run_game.chain, vec!["runGame", "getPlayerTurn"]);
        assert!(!r.has_errors(), "chess is portable: no error diagnostics");
    }

    #[test]
    fn render_shows_reason_chains_and_off_codes() {
        let r = analyze_source(CHESS, "chess", true).unwrap();
        let text = r.render();
        assert!(text.contains("getAITurn: offloadable"), "{text}");
        assert!(
            text.contains("runGame: machine specific [OFF005]"),
            "{text}"
        );
        assert!(text.contains("chain: runGame -> getPlayerTurn"), "{text}");
        assert!(text.contains("info[OFF004]"), "{text}");
        assert!(text.contains("chess::getPlayerTurn"), "{text}");
    }

    #[test]
    fn json_render_carries_verdicts_and_diagnostics() {
        let r = analyze_source(CHESS, "chess", true).unwrap();
        let j = r.render_json();
        assert!(j.contains("\"program\": \"chess\""), "{j}");
        assert!(
            j.contains("{\"name\": \"getAITurn\", \"offloadable\": true}"),
            "{j}"
        );
        assert!(j.contains("\"code\": \"OFF005\""), "{j}");
        assert!(
            j.contains("\"chain\": [\"runGame\", \"getPlayerTurn\"]"),
            "{j}"
        );
        assert!(j.contains("\"severity\": \"info\""), "{j}");
        assert!(j.contains("\"errors\": 0"), "{j}");
        // Every quote-bearing string is escaped: the output survives a
        // naive brace/quote balance scan.
        let quotes = j.matches('"').count();
        assert_eq!(quotes % 2, 0, "unbalanced quotes in {j}");
    }

    #[test]
    fn ptrtoint_narrowing_is_an_error() {
        // Hand-build the hazard: minic always widens ptrtoint to i64, so
        // construct the narrow cast directly.
        use offload_ir::builder::FunctionBuilder;
        use offload_ir::{CastKind, Type};
        let mut m = Module::new("hazard");
        let f = m.declare_function("trunc_ptr", vec![Type::I32.ptr_to()], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let narrow = b.cast(CastKind::PtrToInt, Type::I32, p);
        b.ret(Some(narrow));
        b.finish();
        let r = analyze_module(&m, true);
        assert!(r.has_errors());
        let text = r.render();
        assert!(text.contains("error[OFF010]"), "{text}");
        assert!(text.contains("hazard::trunc_ptr"), "{text}");
    }
}
