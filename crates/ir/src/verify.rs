//! Structural verification of modules.
//!
//! The verifier catches malformed IR early — particularly useful because the
//! offload passes clone and rewrite whole modules, and a bad rewrite should
//! fail loudly at compile (transform) time, not during simulation.

use std::error::Error;
use std::fmt;

use crate::inst::{Callee, CastKind, Inst};
use crate::layout::WIDEST_TARGET_ADDR_BITS;
use crate::module::{FuncId, Function, Module, ValueId};
use crate::types::Type;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The function where the error was found, if any.
    pub func: Option<FuncId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.func {
            Some(id) => write!(f, "verify error in {id}: {}", self.message),
            None => write!(f, "verify error: {}", self.message),
        }
    }
}

impl Error for VerifyError {}

/// Verify a whole module.
///
/// Checks per function: every block ends with exactly one terminator (and
/// contains no mid-block terminators), every referenced block/value/struct/
/// global/function id is in range, call arities match direct-callee
/// signatures, and `ret` types match the function signature.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for (id, func) in module.iter_functions() {
        if func.is_declaration() {
            continue;
        }
        verify_function(module, id, func).map_err(|message| VerifyError {
            func: Some(id),
            message,
        })?;
    }
    if let Some(entry) = module.entry {
        if entry.0 as usize >= module.function_count() {
            return Err(VerifyError {
                func: None,
                message: format!("entry {entry} out of range"),
            });
        }
    }
    Ok(())
}

fn verify_function(module: &Module, _id: FuncId, func: &Function) -> Result<(), String> {
    let nblocks = func.blocks.len();
    let nvalues = func.value_types.len();
    let check_value = |v: ValueId| -> Result<(), String> {
        if (v.0 as usize) < nvalues {
            Ok(())
        } else {
            Err(format!("value {v} out of range ({nvalues} values)"))
        }
    };

    for (bb, block) in func.iter_blocks() {
        let Some(last) = block.insts.last() else {
            return Err(format!("block {bb} is empty"));
        };
        if !last.is_terminator() {
            return Err(format!("block {bb} does not end in a terminator"));
        }
        for (i, inst) in block.insts.iter().enumerate() {
            if inst.is_terminator() && i + 1 != block.insts.len() {
                return Err(format!("block {bb} has a terminator before its end"));
            }
            let mut uses = Vec::new();
            inst.uses(&mut uses);
            for v in uses {
                check_value(v)?;
            }
            if let Some(d) = inst.dst() {
                check_value(d)?;
            }
            match inst {
                Inst::Br { target } if target.0 as usize >= nblocks => {
                    return Err(format!("block {bb}: branch to missing block {target}"));
                }
                Inst::CondBr {
                    then_bb, else_bb, ..
                } => {
                    for t in [then_bb, else_bb] {
                        if t.0 as usize >= nblocks {
                            return Err(format!("block {bb}: branch to missing block {t}"));
                        }
                    }
                }
                Inst::FieldAddr { sid, field, .. } => {
                    if (sid.0 as usize) >= module.struct_ids().count() {
                        return Err(format!("block {bb}: missing struct {sid}"));
                    }
                    if *field as usize >= module.struct_def(*sid).fields.len() {
                        return Err(format!("block {bb}: field {field} out of range for {sid}"));
                    }
                }
                Inst::Const { value, .. } => match value {
                    crate::module::ConstValue::GlobalAddr(g)
                        if g.0 as usize >= module.global_count() =>
                    {
                        return Err(format!("block {bb}: missing global {g}"));
                    }
                    crate::module::ConstValue::FuncAddr(f)
                        if f.0 as usize >= module.function_count() =>
                    {
                        return Err(format!("block {bb}: missing function {f}"));
                    }
                    _ => {}
                },
                Inst::Call {
                    callee: Callee::Direct(f),
                    args,
                    dst,
                } => {
                    if f.0 as usize >= module.function_count() {
                        return Err(format!("block {bb}: call to missing function {f}"));
                    }
                    let target = module.function(*f);
                    if target.params.len() != args.len() {
                        return Err(format!(
                            "block {bb}: call to {} expects {} args, got {}",
                            target.name,
                            target.params.len(),
                            args.len()
                        ));
                    }
                    if (target.ret == Type::Void) != dst.is_none() {
                        return Err(format!(
                            "block {bb}: call to {} return/dst mismatch",
                            target.name
                        ));
                    }
                }
                Inst::Cast {
                    kind: CastKind::IntToPtr,
                    src,
                    ..
                } => {
                    // An address that passed through an integer narrower
                    // than the widest target's pointer has lost bits on
                    // that target — reject the cast outright (§3.2).
                    if let Some(bits) = func.value_type(*src).int_bits() {
                        if bits < WIDEST_TARGET_ADDR_BITS {
                            return Err(format!(
                                "block {bb}: inttoptr from i{bits} is narrower than the \
                                 widest target address size ({WIDEST_TARGET_ADDR_BITS} bits)"
                            ));
                        }
                    }
                }
                Inst::Ret { value } => {
                    let want_value = func.ret != Type::Void;
                    if want_value != value.is_some() {
                        return Err(format!(
                            "block {bb}: ret does not match return type {}",
                            func.ret
                        ));
                    }
                    if let Some(v) = value {
                        check_value(*v)?;
                        if func.value_type(*v) != &func.ret
                            && !(func.value_type(*v).is_ptr() && func.ret.is_ptr())
                        {
                            return Err(format!(
                                "block {bb}: ret type {} does not match {}",
                                func.value_type(*v),
                                func.ret
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::module::{Block, BlockId};

    fn good_module() -> Module {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![Type::I32], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let c = b.const_i32(2);
        let r = b.bin(BinOp::Mul, Type::I32, p, c);
        b.ret(Some(r));
        b.finish();
        m.entry = Some(f);
        m
    }

    #[test]
    fn accepts_well_formed() {
        assert!(verify_module(&good_module()).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = good_module();
        let f = m.function_by_name("f").unwrap();
        m.function_mut(f).blocks[0].insts.pop();
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("terminator"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_value() {
        let mut m = good_module();
        let f = m.function_by_name("f").unwrap();
        m.function_mut(f).blocks[0].insts.insert(
            0,
            Inst::Load {
                dst: ValueId(0),
                ty: Type::I32,
                addr: ValueId(99),
            },
        );
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn rejects_branch_to_missing_block() {
        let mut m = good_module();
        let f = m.function_by_name("f").unwrap();
        m.function_mut(f).blocks.push(Block {
            insts: vec![Inst::Br {
                target: BlockId(42),
            }],
        });
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("missing block"), "{err}");
    }

    #[test]
    fn rejects_bad_call_arity() {
        let mut m = good_module();
        let f = m.function_by_name("f").unwrap();
        let g = m.declare_function("g", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, g);
        b.push(Inst::Call {
            dst: None,
            callee: Callee::Direct(f),
            args: vec![],
        });
        b.ret(None);
        b.finish();
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("expects 1 args"), "{err}");
    }

    #[test]
    fn rejects_ret_type_mismatch() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        b.ret(None);
        b.finish();
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("ret does not match"), "{err}");
    }

    #[test]
    fn rejects_mid_block_terminator() {
        let mut m = good_module();
        let f = m.function_by_name("f").unwrap();
        m.function_mut(f).blocks[0].insts.insert(
            0,
            Inst::Ret {
                value: Some(ValueId(0)),
            },
        );
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("before its end"), "{err}");
    }

    #[test]
    fn rejects_inttoptr_from_narrow_integer() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![Type::I32], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let bad = b.cast(crate::inst::CastKind::IntToPtr, Type::I32.ptr_to(), p);
        let v = b.const_i32(1);
        b.push(Inst::Store {
            ty: Type::I32,
            addr: bad,
            value: v,
        });
        b.ret(None);
        b.finish();
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("inttoptr from i32"), "{err}");
    }

    #[test]
    fn accepts_inttoptr_from_wide_integer() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![Type::I64], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let ptr = b.cast(crate::inst::CastKind::IntToPtr, Type::I32.ptr_to(), p);
        let v = b.const_i32(1);
        b.push(Inst::Store {
            ty: Type::I32,
            addr: ptr,
            value: v,
        });
        b.ret(None);
        b.finish();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn declarations_are_skipped() {
        let mut m = good_module();
        m.declare_function("external", vec![Type::I32], Type::I32);
        assert!(verify_module(&m).is_ok());
    }
}
