//! Hand-written lexer for MiniC.

use crate::error::CompileError;
use crate::token::{Spanned, Tok};

/// Tokenize `source`.
///
/// Handles `//` and `/* */` comments, decimal/hex integers, floats, char
/// constants and string literals with the usual C escapes.
///
/// # Errors
///
/// Returns a [`CompileError`] on unterminated literals/comments or stray
/// characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>, CompileError> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn run(mut self) -> Result<Vec<Spanned>, CompileError> {
        let mut out = Vec::new();
        while let Some(c) = self.peek() {
            match c {
                '\n' => {
                    self.line += 1;
                    self.bump();
                }
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '/' if self.peek_at(1) == Some('*') => {
                    let start = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => return Err(CompileError::lex(start, "unterminated comment")),
                            Some('*') if self.peek_at(1) == Some('/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some('\n') => {
                                self.line += 1;
                                self.bump();
                            }
                            Some(_) => {
                                self.bump();
                            }
                        }
                    }
                }
                '#' => {
                    // Preprocessor-looking lines (e.g. `#include`) are
                    // skipped so pasted C headers don't break tests.
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                c if c.is_ascii_digit() => out.push(self.number()?),
                c if c.is_ascii_alphabetic() || c == '_' => out.push(self.ident()),
                '"' => out.push(self.string()?),
                '\'' => out.push(self.char_const()?),
                _ => out.push(self.punct()?),
            }
        }
        Ok(out)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.chars.get(self.pos + n).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn spanned(&self, tok: Tok) -> Spanned {
        Spanned {
            tok,
            line: self.line,
        }
    }

    fn number(&mut self) -> Result<Spanned, CompileError> {
        let mut text = String::new();
        if self.peek() == Some('0') && matches!(self.peek_at(1), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            let v = i64::from_str_radix(&text, 16)
                .map_err(|_| CompileError::lex(self.line, format!("bad hex literal 0x{text}")))?;
            return Ok(self.spanned(Tok::Int(v)));
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) && !is_float {
                is_float = true;
                text.push(c);
                self.bump();
            } else if (c == 'e' || c == 'E')
                && matches!(self.peek_at(1), Some(d) if d.is_ascii_digit() || d == '-' || d == '+')
            {
                is_float = true;
                text.push(c);
                self.bump();
                if matches!(self.peek(), Some('-') | Some('+')) {
                    text.push(self.bump().unwrap());
                }
            } else {
                break;
            }
        }
        // Integer suffixes are accepted and ignored.
        while matches!(self.peek(), Some('l') | Some('L') | Some('u') | Some('U')) {
            self.bump();
        }
        if is_float {
            let v = text
                .parse::<f64>()
                .map_err(|_| CompileError::lex(self.line, format!("bad float literal {text}")))?;
            Ok(self.spanned(Tok::Float(v)))
        } else {
            let v = text
                .parse::<i64>()
                .map_err(|_| CompileError::lex(self.line, format!("bad int literal {text}")))?;
            Ok(self.spanned(Tok::Int(v)))
        }
    }

    fn ident(&mut self) -> Spanned {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let tok = match text.as_str() {
            "void" => Tok::Void,
            "char" => Tok::Char,
            "short" => Tok::Short,
            "int" => Tok::Kint,
            "long" => Tok::Long,
            "double" => Tok::Double,
            "float" => Tok::Double, // MiniC folds float into double
            "struct" => Tok::Struct,
            "typedef" => Tok::Typedef,
            "if" => Tok::If,
            "else" => Tok::Else,
            "while" => Tok::While,
            "do" => Tok::Do,
            "for" => Tok::For,
            "return" => Tok::Return,
            "break" => Tok::Break,
            "continue" => Tok::Continue,
            "sizeof" => Tok::Sizeof,
            "asm" => Tok::Asm,
            "switch" => Tok::Switch,
            "case" => Tok::Case,
            "default" => Tok::Default,
            "unsigned" => Tok::Unsigned,
            "const" => Tok::Const,
            "static" => Tok::Static,
            _ => Tok::Ident(text),
        };
        self.spanned(tok)
    }

    fn escape(&mut self, quote: char) -> Result<char, CompileError> {
        match self.bump() {
            Some('n') => Ok('\n'),
            Some('t') => Ok('\t'),
            Some('r') => Ok('\r'),
            Some('0') => Ok('\0'),
            Some('\\') => Ok('\\'),
            Some(c) if c == quote => Ok(c),
            Some(c) => Err(CompileError::lex(
                self.line,
                format!("unknown escape \\{c}"),
            )),
            None => Err(CompileError::lex(self.line, "unterminated escape")),
        }
    }

    fn string(&mut self) -> Result<Spanned, CompileError> {
        let start = self.line;
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                None => return Err(CompileError::lex(start, "unterminated string")),
                Some('"') => break,
                Some('\\') => text.push(self.escape('"')?),
                Some('\n') => return Err(CompileError::lex(start, "newline in string")),
                Some(c) => text.push(c),
            }
        }
        Ok(self.spanned(Tok::Str(text)))
    }

    fn char_const(&mut self) -> Result<Spanned, CompileError> {
        self.bump(); // opening quote
        let c = match self.bump() {
            None => return Err(CompileError::lex(self.line, "unterminated char constant")),
            Some('\\') => self.escape('\'')?,
            Some(c) => c,
        };
        if self.bump() != Some('\'') {
            return Err(CompileError::lex(self.line, "char constant too long"));
        }
        Ok(self.spanned(Tok::Int(c as i64)))
    }

    fn punct(&mut self) -> Result<Spanned, CompileError> {
        let c = self.bump().expect("caller checked");
        let two = |l: &mut Lexer, next: char, a: Tok, b: Tok| {
            if l.peek() == Some(next) {
                l.bump();
                a
            } else {
                b
            }
        };
        let tok = match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            ';' => Tok::Semi,
            ',' => Tok::Comma,
            '.' => Tok::Dot,
            '~' => Tok::Tilde,
            '?' => Tok::Question,
            ':' => Tok::Colon,
            '+' => match self.peek() {
                Some('+') => {
                    self.bump();
                    Tok::PlusPlus
                }
                Some('=') => {
                    self.bump();
                    Tok::PlusAssign
                }
                _ => Tok::Plus,
            },
            '-' => match self.peek() {
                Some('-') => {
                    self.bump();
                    Tok::MinusMinus
                }
                Some('=') => {
                    self.bump();
                    Tok::MinusAssign
                }
                Some('>') => {
                    self.bump();
                    Tok::Arrow
                }
                _ => Tok::Minus,
            },
            '*' => two(self, '=', Tok::StarAssign, Tok::Star),
            '/' => two(self, '=', Tok::SlashAssign, Tok::Slash),
            '%' => two(self, '=', Tok::PercentAssign, Tok::Percent),
            '^' => two(self, '=', Tok::CaretAssign, Tok::Caret),
            '!' => two(self, '=', Tok::NotEq, Tok::Bang),
            '=' => two(self, '=', Tok::EqEq, Tok::Assign),
            '&' => match self.peek() {
                Some('&') => {
                    self.bump();
                    Tok::AndAnd
                }
                Some('=') => {
                    self.bump();
                    Tok::AmpAssign
                }
                _ => Tok::Amp,
            },
            '|' => match self.peek() {
                Some('|') => {
                    self.bump();
                    Tok::OrOr
                }
                Some('=') => {
                    self.bump();
                    Tok::PipeAssign
                }
                _ => Tok::Pipe,
            },
            '<' => match self.peek() {
                Some('<') => {
                    self.bump();
                    two(self, '=', Tok::ShlAssign, Tok::Shl)
                }
                Some('=') => {
                    self.bump();
                    Tok::Le
                }
                _ => Tok::Lt,
            },
            '>' => match self.peek() {
                Some('>') => {
                    self.bump();
                    two(self, '=', Tok::ShrAssign, Tok::Shr)
                }
                Some('=') => {
                    self.bump();
                    Tok::Ge
                }
                _ => Tok::Gt,
            },
            other => {
                return Err(CompileError::lex(
                    self.line,
                    format!("stray character {other:?}"),
                ))
            }
        };
        Ok(self.spanned(tok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("int foo while_ _bar"),
            vec![
                Tok::Kint,
                Tok::Ident("foo".into()),
                Tok::Ident("while_".into()),
                Tok::Ident("_bar".into())
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 0x1F 3.5 1e3 2.5e-2 7L 3u"),
            vec![
                Tok::Int(42),
                Tok::Int(31),
                Tok::Float(3.5),
                Tok::Float(1000.0),
                Tok::Float(0.025),
                Tok::Int(7),
                Tok::Int(3)
            ]
        );
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(
            toks(r#""a\nb" 'x' '\n' '\0'"#),
            vec![
                Tok::Str("a\nb".into()),
                Tok::Int(120),
                Tok::Int(10),
                Tok::Int(0)
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a += b-- << 1 && c->d"),
            vec![
                Tok::Ident("a".into()),
                Tok::PlusAssign,
                Tok::Ident("b".into()),
                Tok::MinusMinus,
                Tok::Shl,
                Tok::Int(1),
                Tok::AndAnd,
                Tok::Ident("c".into()),
                Tok::Arrow,
                Tok::Ident("d".into())
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_are_skipped() {
        assert_eq!(
            toks("#include <stdio.h>\nint /* c */ x; // end\ny"),
            vec![
                Tok::Kint,
                Tok::Ident("x".into()),
                Tok::Semi,
                Tok::Ident("y".into())
            ]
        );
    }

    #[test]
    fn lines_are_tracked() {
        let ts = lex("a\nb\n\nc").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 4);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("$").is_err());
        assert!(lex("'ab'").is_err());
    }

    #[test]
    fn float_folds_to_double() {
        assert_eq!(toks("float"), vec![Tok::Double]);
    }
}
