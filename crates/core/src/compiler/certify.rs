//! Region certification: lower each offload task's interprocedural
//! mod/ref summary to a UVA page footprint the runtime can act on.
//!
//! The pass runs on the *final* mobile module — after outlining,
//! unification, partitioning and dispatcher insertion — so the global
//! indices and layout it sees are exactly what the loader will place on
//! the unified address space. Certificates are advisory by construction:
//! the session only acts on a certificate when it is precise, and a
//! dynamic oracle cross-checks every fault and dirty page against it,
//! trapping loudly on any violation.

use std::collections::BTreeSet;

use offload_ir::analysis::pointsto::{AbsLoc, PointsTo, PtsSet};
use offload_ir::analysis::{
    escape_analysis, lower_footprint, mod_ref_summaries, proven_readonly_pages, run_region_lints,
    CallGraph, FootprintSpace,
};
use offload_ir::diag::{Code, Diagnostic};
use offload_ir::layout::DataLayout;
use offload_ir::{FuncId, Module};
use offload_machine::{uva_map, PAGE_SIZE};

use crate::plan::{OffloadTask, RegionCertificate};

/// The UVA geometry the loader actually uses, as a [`FootprintSpace`].
/// Stack locations cover both devices' stack segments (a caller-frame
/// address may leak into the region through a pointer argument); heap
/// locations cover everything from the first local heap to the end of
/// the unified heap.
pub fn uva_footprint_space() -> FootprintSpace {
    FootprintSpace {
        page_size: PAGE_SIZE,
        // `loader::load_at_into` aligns every global to at least 16
        // bytes; `global_extents` replicates its bump allocation.
        globals_base: uva_map::GLOBALS_BASE,
        global_align_floor: 16,
        stack_pages: (
            (uva_map::SERVER_STACK_TOP - uva_map::STACK_SIZE) / PAGE_SIZE,
            uva_map::MOBILE_STACK_TOP / PAGE_SIZE,
        ),
        heap_pages: (
            uva_map::MOBILE_LOCAL_HEAP / PAGE_SIZE,
            uva_map::UNIFIED_HEAP_END / PAGE_SIZE,
        ),
    }
}

/// What certification produced: one certificate per task, the region
/// lints (OFF030–OFF033), and the solver's round count.
pub struct CertifyOutput {
    /// One certificate per offload task, in task order.
    pub certificates: Vec<RegionCertificate>,
    /// OFF030–OFF033 diagnostics.
    pub diags: Vec<Diagnostic>,
    /// Mod/ref solver rounds (regression guard: bounded by the SCC
    /// budget, small in practice).
    pub rounds: u32,
}

/// Certify every offload task of the final mobile `module`.
pub fn certify_tasks(module: &Module, layout: &DataLayout, tasks: &[OffloadTask]) -> CertifyOutput {
    let pt = PointsTo::analyze(module);
    let mr = mod_ref_summaries(module, &pt);
    let esc = escape_analysis(module, &pt);
    let space = uva_footprint_space();
    let cg = CallGraph::build(module);
    let roots: Vec<FuncId> = tasks.iter().map(|t| t.local_func).collect();
    let mut diags = run_region_lints(module, &pt, &esc, &roots);

    let mut certificates: Vec<RegionCertificate> = Vec::with_capacity(tasks.len());
    for task in tasks {
        // Stack slots owned by functions *inside* the region live on the
        // server's private stack while the offload runs — they never
        // cross the wire, exactly like `is_server_private_page` at run
        // time — so they are stripped before lowering. Slots of outside
        // functions (a caller local passed by pointer) stay and lower
        // coarsely to the stack segment.
        let region = cg.reachable_from(&[task.local_func]);
        let summary = mr.summary(task.local_func);
        let reads = strip_region_stack(&summary.reads, &region);
        let writes = strip_region_stack(&summary.writes, &region);
        let read = lower_footprint(&space, module, layout, &reads);
        let write = lower_footprint(&space, module, layout, &writes);
        let proven_readonly = proven_readonly_pages(&space, module, layout, &write);
        let cert = RegionCertificate {
            task: task.id,
            read,
            write,
            proven_readonly,
        };
        // OFF032: the certified footprint is larger than what the
        // profiler saw the region touch — the Equation-1 estimate fed by
        // `mem_bytes` may be optimistic for other inputs.
        if cert.is_precise() {
            let cert_bytes = cert.footprint_bytes(space.page_size);
            if cert_bytes > task.mem_bytes {
                diags.push(
                    Diagnostic::new(
                        Code::FootprintExceedsMemory,
                        format!(
                            "{}: certified footprint is {cert_bytes} B but the profile \
                             estimated {} B",
                            task.name, task.mem_bytes
                        ),
                    )
                    .note(
                        "the static estimator may under-price communication for \
                         inputs that touch the full footprint",
                    ),
                );
            }
        }
        certificates.push(cert);
    }

    // OFF033: a page one region proved read-only sits in a sibling
    // region's precise may-write set. Per-offload the proof still holds
    // (baselines reset between offloads), but cross-region aliasing like
    // this usually means the regions share mutable state — flag it and
    // drop the page so the baseline filter stays conservative.
    for i in 0..certificates.len() {
        let mut dropped: Vec<u64> = Vec::new();
        for (j, other) in certificates.iter().enumerate() {
            if i == j || other.write.unknown {
                continue;
            }
            for &p in &certificates[i].proven_readonly {
                if other.write.contains(p) && !dropped.contains(&p) {
                    dropped.push(p);
                }
            }
        }
        if !dropped.is_empty() {
            let name = tasks[i].name.clone();
            diags.push(
                Diagnostic::new(
                    Code::ReadonlyPageDirtied,
                    format!(
                        "{name}: {} page(s) proven read-only here are writable by a \
                         sibling region",
                        dropped.len()
                    ),
                )
                .note("the pages are dropped from the proven-read-only set"),
            );
            certificates[i]
                .proven_readonly
                .retain(|p| !dropped.contains(p));
        }
    }

    CertifyOutput {
        certificates,
        diags,
        rounds: mr.rounds(),
    }
}

/// Drop stack locations owned by region members from a mod/ref set;
/// everything else (globals, heap, outside-frame stack, unknown) is kept.
fn strip_region_stack(set: &PtsSet, region: &BTreeSet<FuncId>) -> PtsSet {
    let mut out = PtsSet::empty();
    out.unknown = set.unknown;
    for &loc in set.locs() {
        if let AbsLoc::Stack(owner, _) = loc {
            if region.contains(&owner) {
                continue;
            }
        }
        out.insert(loc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uva_space_matches_loader_geometry() {
        let s = uva_footprint_space();
        assert_eq!(s.page_size, PAGE_SIZE);
        assert_eq!(s.globals_base, uva_map::GLOBALS_BASE);
        // Stack range covers both stacks, heap range both heaps plus the
        // unified heap; the two segments must not overlap.
        assert!(s.stack_pages.0 >= s.heap_pages.1);
        assert!(s.stack_pages.0 < s.stack_pages.1);
        assert!(s.heap_pages.0 < s.heap_pages.1);
        assert_eq!(s.stack_pages.1 * PAGE_SIZE, uva_map::MOBILE_STACK_TOP);
    }
}
