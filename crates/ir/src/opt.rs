//! Lightweight IR optimizations: constant folding, branch simplification
//! and dead-code elimination.
//!
//! The front-end lowers clang -O0 style, so the IR carries plenty of
//! foldable constants and never-read temporaries. The offload compiler
//! runs this pass before profiling so cycle counts reflect code a real
//! back-end would emit. Registers are single-assignment, which keeps the
//! analyses simple: a register's constant-ness is a property of its one
//! defining instruction.

use std::collections::HashMap;

use crate::inst::{BinOp, Callee, CmpOp, Inst, UnOp};
use crate::module::{ConstValue, FuncId, Function, Module, ValueId};
use crate::types::Type;

/// What one optimization run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions folded into constants.
    pub folded: usize,
    /// Conditional branches turned unconditional.
    pub branches_simplified: usize,
    /// Dead instructions removed.
    pub dead_removed: usize,
}

impl OptStats {
    /// Total changes.
    pub fn total(&self) -> usize {
        self.folded + self.branches_simplified + self.dead_removed
    }
}

/// Optimize every function in the module to a fixpoint.
pub fn optimize_module(module: &mut Module) -> OptStats {
    let mut stats = OptStats::default();
    for fi in 0..module.function_count() {
        let id = FuncId(fi as u32);
        if module.function(id).is_declaration() {
            continue;
        }
        loop {
            let mut round = OptStats::default();
            let func = module.function_mut(id);
            round.folded += fold_constants(func);
            round.branches_simplified += simplify_branches(func);
            round.dead_removed += eliminate_dead(func);
            stats.folded += round.folded;
            stats.branches_simplified += round.branches_simplified;
            stats.dead_removed += round.dead_removed;
            if round.total() == 0 {
                break;
            }
        }
    }
    stats
}

fn const_of(inst: &Inst) -> Option<(ValueId, ConstValue)> {
    match inst {
        Inst::Const { dst, value } => Some((*dst, value.clone())),
        _ => None,
    }
}

fn as_int(v: &ConstValue) -> Option<i64> {
    match v {
        ConstValue::I8(x) => Some(*x as i64),
        ConstValue::I16(x) => Some(*x as i64),
        ConstValue::I32(x) => Some(*x as i64),
        ConstValue::I64(x) => Some(*x),
        _ => None,
    }
}

fn as_f64(v: &ConstValue) -> Option<f64> {
    match v {
        ConstValue::F64(x) => Some(*x),
        _ => None,
    }
}

fn make_int(ty: &Type, v: i64) -> Option<ConstValue> {
    Some(match ty {
        Type::I8 => ConstValue::I8(v as i8),
        Type::I16 => ConstValue::I16(v as i16),
        Type::I32 => ConstValue::I32(v as i32),
        Type::I64 => ConstValue::I64(v),
        _ => return None,
    })
}

/// Fold `Bin`/`Un`/`Cmp`/`Cast` instructions whose operands are constants.
fn fold_constants(func: &mut Function) -> usize {
    // Map of registers known constant (single assignment ⇒ one pass over
    // all blocks suffices to collect).
    let mut env: HashMap<ValueId, ConstValue> = HashMap::new();
    for block in &func.blocks {
        for inst in &block.insts {
            if let Some((dst, v)) = const_of(inst) {
                env.insert(dst, v);
            }
        }
    }

    let mut folded = 0usize;
    for block in &mut func.blocks {
        for inst in &mut block.insts {
            let replacement: Option<(ValueId, ConstValue)> = match inst {
                Inst::Bin {
                    dst,
                    op,
                    ty,
                    lhs,
                    rhs,
                } => {
                    match (env.get(lhs), env.get(rhs)) {
                        (Some(a), Some(b)) if ty.is_int() => {
                            let (a, b) = match (as_int(a), as_int(b)) {
                                (Some(a), Some(b)) => (a, b),
                                _ => continue,
                            };
                            let v = match op {
                                BinOp::Add => a.wrapping_add(b),
                                BinOp::Sub => a.wrapping_sub(b),
                                BinOp::Mul => a.wrapping_mul(b),
                                BinOp::Div if b != 0 => a.wrapping_div(b),
                                BinOp::Rem if b != 0 => a.wrapping_rem(b),
                                BinOp::And => a & b,
                                BinOp::Or => a | b,
                                BinOp::Xor => a ^ b,
                                BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                                BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                                _ => continue, // div/rem by zero: leave the trap in
                            };
                            make_int(ty, truncate(ty, v)).map(|c| (*dst, c))
                        }
                        (Some(a), Some(b)) if *ty == Type::F64 => {
                            let (a, b) = match (as_f64(a), as_f64(b)) {
                                (Some(a), Some(b)) => (a, b),
                                _ => continue,
                            };
                            let v = match op {
                                BinOp::Add => a + b,
                                BinOp::Sub => a - b,
                                BinOp::Mul => a * b,
                                BinOp::Div => a / b,
                                _ => continue,
                            };
                            Some((*dst, ConstValue::F64(v)))
                        }
                        _ => None,
                    }
                }
                Inst::Un {
                    dst,
                    op,
                    ty,
                    operand,
                } => match (env.get(operand), op) {
                    (Some(v), UnOp::Neg) if ty.is_int() => as_int(v)
                        .and_then(|x| make_int(ty, truncate(ty, x.wrapping_neg())))
                        .map(|c| (*dst, c)),
                    (Some(v), UnOp::Neg) if *ty == Type::F64 => {
                        as_f64(v).map(|x| (*dst, ConstValue::F64(-x)))
                    }
                    (Some(v), UnOp::Not) if ty.is_int() => as_int(v)
                        .and_then(|x| make_int(ty, truncate(ty, !x)))
                        .map(|c| (*dst, c)),
                    _ => None,
                },
                Inst::Cmp {
                    dst,
                    op,
                    ty,
                    lhs,
                    rhs,
                } if ty.is_int() => {
                    match (env.get(lhs).and_then(as_int), env.get(rhs).and_then(as_int)) {
                        (Some(a), Some(b)) => {
                            let v = match op {
                                CmpOp::Eq => a == b,
                                CmpOp::Ne => a != b,
                                CmpOp::Lt => a < b,
                                CmpOp::Le => a <= b,
                                CmpOp::Gt => a > b,
                                CmpOp::Ge => a >= b,
                            };
                            Some((*dst, ConstValue::I32(i32::from(v))))
                        }
                        _ => None,
                    }
                }
                Inst::Cast { dst, kind, to, src } => {
                    use crate::inst::CastKind::*;
                    match (env.get(src), kind) {
                        (Some(v), Sext | Trunc) => as_int(v)
                            .and_then(|x| make_int(to, truncate(to, x)))
                            .map(|c| (*dst, c)),
                        (Some(v), SiToF) => as_int(v).map(|x| (*dst, ConstValue::F64(x as f64))),
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some((dst, value)) = replacement {
                env.insert(dst, value.clone());
                *inst = Inst::Const { dst, value };
                folded += 1;
            }
        }
    }
    folded
}

fn truncate(ty: &Type, v: i64) -> i64 {
    match ty {
        Type::I8 => v as i8 as i64,
        Type::I16 => v as i16 as i64,
        Type::I32 => v as i32 as i64,
        _ => v,
    }
}

/// Turn `condbr` on a constant condition into `br`.
fn simplify_branches(func: &mut Function) -> usize {
    let mut env: HashMap<ValueId, i64> = HashMap::new();
    for block in &func.blocks {
        for inst in &block.insts {
            if let Some((dst, v)) = const_of(inst) {
                if let Some(x) = as_int(&v) {
                    env.insert(dst, x);
                }
            }
        }
    }
    let mut changed = 0usize;
    for block in &mut func.blocks {
        if let Some(Inst::CondBr {
            cond,
            then_bb,
            else_bb,
        }) = block.insts.last()
        {
            if let Some(c) = env.get(cond) {
                let target = if *c != 0 { *then_bb } else { *else_bb };
                *block.insts.last_mut().expect("nonempty") = Inst::Br { target };
                changed += 1;
            }
        }
    }
    changed
}

/// Remove pure instructions whose results are never used. `Alloca` counts
/// as pure: an address never taken is storage never touched.
fn eliminate_dead(func: &mut Function) -> usize {
    let mut used: Vec<bool> = vec![false; func.value_types.len()];
    // Parameters are always "used" (ABI).
    for u in used.iter_mut().take(func.params.len()) {
        *u = true;
    }
    for block in &func.blocks {
        for inst in &block.insts {
            let mut uses = Vec::new();
            inst.uses(&mut uses);
            for v in uses {
                used[v.0 as usize] = true;
            }
        }
    }
    let mut removed = 0usize;
    for block in &mut func.blocks {
        let before = block.insts.len();
        block.insts.retain(|inst| {
            let pure = matches!(
                inst,
                Inst::Const { .. }
                    | Inst::Alloca { .. }
                    | Inst::Bin { .. }
                    | Inst::Un { .. }
                    | Inst::Cmp { .. }
                    | Inst::Cast { .. }
                    | Inst::FieldAddr { .. }
                    | Inst::IndexAddr { .. }
            );
            if !pure {
                return true;
            }
            // Division can trap; keep it unless operands are known safe
            // (folding already turned safe ones into constants).
            if let Inst::Bin {
                op: BinOp::Div | BinOp::Rem,
                ty,
                ..
            } = inst
            {
                if ty.is_int() {
                    return true;
                }
            }
            match inst.dst() {
                Some(d) => {
                    let keep = used[d.0 as usize];
                    if !keep {
                        removed += 1;
                    }
                    keep
                }
                None => true,
            }
        });
        debug_assert!(block.insts.len() + removed >= before);
    }
    removed
}

/// `true` if the module still calls `callee` anywhere (test helper).
pub fn calls(module: &Module, callee: FuncId) -> bool {
    module.iter_functions().any(|(_, f)| {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Call { callee: Callee::Direct(t), .. } if *t == callee))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::verify::verify_module;

    fn const_func() -> (Module, FuncId) {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        let a = b.const_i32(6);
        let c = b.const_i32(7);
        let prod = b.bin(BinOp::Mul, Type::I32, a, c);
        let dead = b.bin(BinOp::Add, Type::I32, a, c);
        let _ = dead;
        b.ret(Some(prod));
        b.finish();
        (m, f)
    }

    #[test]
    fn folds_and_removes_dead() {
        let (mut m, f) = const_func();
        let stats = optimize_module(&mut m);
        verify_module(&m).unwrap();
        assert!(stats.folded >= 2, "{stats:?}");
        assert!(stats.dead_removed >= 1, "{stats:?}");
        // The multiply is gone; a constant 42 feeds the return.
        let has_mul = m.function(f).blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Bin { .. }));
        assert!(!has_mul);
    }

    #[test]
    fn simplifies_constant_branches() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        let one = b.const_i32(1);
        let taken = b.new_block();
        let not_taken = b.new_block();
        b.cond_br(one, taken, not_taken);
        b.switch_to(taken);
        let r = b.const_i32(5);
        b.ret(Some(r));
        b.switch_to(not_taken);
        let r2 = b.const_i32(9);
        b.ret(Some(r2));
        b.finish();

        let stats = optimize_module(&mut m);
        verify_module(&m).unwrap();
        assert_eq!(stats.branches_simplified, 1);
        assert!(matches!(
            m.function(f).blocks[0].insts.last(),
            Some(Inst::Br { .. })
        ));
    }

    #[test]
    fn division_by_zero_is_not_folded_away() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        let a = b.const_i32(5);
        let z = b.const_i32(0);
        let _trap = b.bin(BinOp::Div, Type::I32, a, z);
        let r = b.const_i32(1);
        b.ret(Some(r));
        b.finish();
        let stats = optimize_module(&mut m);
        verify_module(&m).unwrap();
        // The div survives (it must still trap at run time).
        let has_div = m.function(f).blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Bin { op: BinOp::Div, .. }));
        assert!(has_div, "{stats:?}");
    }

    #[test]
    fn loads_stores_calls_survive() {
        let mut m = Module::new("t");
        let g = m.declare_function("g", vec![], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, g);
            b.ret(None);
            b.finish();
        }
        let f = m.declare_function("f", vec![], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        let slot = b.alloca(Type::I32, 1);
        let v = b.const_i32(3);
        b.store(Type::I32, slot, v);
        b.call(g, vec![]);
        let back = b.load(Type::I32, slot);
        b.ret(Some(back));
        b.finish();
        optimize_module(&mut m);
        verify_module(&m).unwrap();
        assert!(calls(&m, g), "calls are side-effecting and must survive");
        let kinds: Vec<bool> = m.function(f).blocks[0]
            .insts
            .iter()
            .map(|i| matches!(i, Inst::Store { .. } | Inst::Load { .. }))
            .collect();
        assert!(kinds.iter().filter(|k| **k).count() >= 2);
    }

    #[test]
    fn fixpoint_chains_folds() {
        // ((2+3)*4) == 20 needs two rounds: fold add, then fold mul.
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        let two = b.const_i32(2);
        let three = b.const_i32(3);
        let add = b.bin(BinOp::Add, Type::I32, two, three);
        let four = b.const_i32(4);
        let mul = b.bin(BinOp::Mul, Type::I32, add, four);
        b.ret(Some(mul));
        b.finish();
        optimize_module(&mut m);
        let remaining_bins = m.function(f).blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bin { .. }))
            .count();
        assert_eq!(remaining_bins, 0);
    }
}
