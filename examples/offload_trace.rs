//! Trace an offloaded run end to end: attach a [`TraceCollector`], watch
//! the compiler phases and the §4 session life-cycle as typed events,
//! then render the trace three ways — span tree, ASCII timeline, and a
//! metrics digest. Export the same stream as Chrome `trace_event` JSONL
//! with `reproduce trace <program> --format jsonl`.
//!
//! ```sh
//! cargo run --release --example offload_trace
//! ```

use native_offloader::{Offloader, SessionConfig};
use offload_obs::export::{render_timeline, render_tree};
use offload_obs::TraceCollector;
use offload_workloads::by_short_name;

fn main() {
    let w = by_short_name("sjeng").expect("sjeng exists");
    // sjeng translates a fn-ptr per search node — hundreds of thousands
    // of events, more than the default ring; size it to keep them all.
    let mut obs = TraceCollector::with_capacity(1 << 20);

    // One collector spans both halves: compiler phases land on the
    // ordinal compile clock, runtime events on the simulated clock.
    let app = Offloader::new()
        .compile_source_traced(w.source, w.name, &(w.profile_input)(), &mut obs)
        .expect("compiles");
    let mut cfg = SessionConfig::fast_network();
    cfg.dynamic_estimation = false; // always show a full offload session
    let rep = app
        .run_offloaded_traced(&(w.eval_input)(), &cfg, &mut obs)
        .expect("runs");

    let records = obs.records();
    println!(
        "== {} traced: {} events, {} dropped ==\n",
        w.name,
        records.len(),
        obs.dropped()
    );

    // The span tree nests compiler phases and offload sessions; cap the
    // instants shown so the shape stays readable.
    let tree = render_tree(&records);
    let mut shown = 0;
    for line in tree.lines() {
        let is_span = line.trim_start().starts_with('▶');
        if is_span || shown < 30 {
            println!("{line}");
            if !is_span {
                shown += 1;
            }
        }
    }
    println!("  ... (instants truncated; `reproduce trace sjeng --format tree` for all)\n");

    println!("{}", render_timeline(&records, 96));

    // The metrics registry accumulates counters and histograms as events
    // flow; the same snapshot rides on `rep.metrics`.
    println!("counters:");
    let snap = &rep.metrics;
    for (name, value) in &snap.counters {
        println!("  {name:<28} {value}");
    }
    println!("\nhistograms:");
    for (name, h) in &snap.histograms {
        println!("  {name:<28} n={} mean={:.3}", h.count, h.mean());
    }

    println!(
        "\nsimulated total {:.2} ms, energy {:.1} mJ; breakdown total {:.2} ms (reconciles)",
        rep.total_seconds * 1e3,
        rep.energy_mj,
        rep.breakdown.total() * 1e3
    );
}
