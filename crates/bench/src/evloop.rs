//! `reproduce evloop` — the event-driven session core benchmark behind
//! `BENCH_pr8.json`.
//!
//! The question this answers: how many *concurrent offload sessions* can
//! one worker multiplex, against the thread-per-session shape the farm
//! used? Two engines execute the identical per-session lane scripts:
//!
//! * **event engine** — `runtime::evloop::multiplex`: one thread, a
//!   slot-bounded queue of timestamped events, per-worker run queues,
//!   shared uplink/downlink/server lanes. Deterministic,
//!   allocation-free in steady state.
//! * **thread-per-session baseline** — one OS thread per session,
//!   spawned the way the farm spawns (default stacks), each walking the
//!   same script by locking shared lane clocks — exactly the blocking
//!   engine's architecture. Nondeterministic finish order,
//!   kernel-scheduled.
//!
//! Both do the same simulation arithmetic per segment, so the measured
//! gap is pure architecture: event dispatch vs thread context switching.
//! **Host wall-clock rates are informational and machine-dependent; the
//! gateable number is the committed speedup ratio** (both engines measured
//! on the same host in the same run), plus the simulated p99 makespan,
//! which is deterministic.
//!
//! Scripts are compiled once per suite entry (18 workloads, fast
//! network) from a traced serial run, then replicated round-robin to the
//! requested concurrency — so a 100k-session sweep costs 18 sessions of
//! per-session simulation plus pure event-time multiplexing.

use std::fmt::Write as _;
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use native_offloader::runtime::evloop::{multiplex, EvloopConfig, SessionScript};
use native_offloader::runtime::farm::FARM_RING_CAPACITY;
use native_offloader::runtime::session::run_offloaded_traced;
use offload_obs::{EngineLane, NoopCollector, TraceCollector};

use crate::farm::suite;

/// Concurrency levels of the sweep.
pub const SWEEP: [usize; 3] = [1_000, 10_000, 100_000];

/// Sessions above this skip the thread-per-session baseline: the point
/// is made at 10k, and a 100k-thread spawn is minutes of host time that
/// would dwarf the rest of `reproduce`.
pub const BASELINE_CAP: usize = 10_000;

/// One concurrency level of the sweep.
#[derive(Debug, Clone)]
pub struct EvloopRow {
    /// Concurrent sessions multiplexed.
    pub sessions: usize,
    /// Events the engine dispatched.
    pub events: u64,
    /// Host wall-clock of the event engine, milliseconds.
    pub evloop_host_ms: f64,
    /// Sessions per host second through the event engine.
    pub sessions_per_s: f64,
    /// Host wall-clock of the thread-per-session baseline, milliseconds
    /// (`None` above [`BASELINE_CAP`]).
    pub baseline_host_ms: Option<f64>,
    /// Sessions per host second through the baseline.
    pub baseline_sessions_per_s: Option<f64>,
    /// Sessions-per-worker advantage of the event engine (same host,
    /// same run, same scripts) — the headline, gated ≥ 50x at 10k.
    pub speedup: Option<f64>,
    /// Simulated completion-time p99 across the sessions, seconds.
    pub p99_makespan_s: f64,
    /// Simulated makespan (last session completion), seconds.
    pub makespan_s: f64,
    /// Simulated busy seconds on the shared uplink.
    pub link_up_busy_s: f64,
}

/// The whole benchmark artifact.
#[derive(Debug, Clone)]
pub struct EvloopBench {
    /// Worker count of the event engine (the per-worker claim ⇒ 1).
    pub workers: usize,
    /// Server slots shared by all sessions.
    pub server_slots: usize,
    /// Suite scripts: name, spine segments, detached pages.
    pub scripts: Vec<(String, usize, usize)>,
    /// One row per sweep level.
    pub rows: Vec<EvloopRow>,
    /// `true` if any event-engine run grew a pre-sized container
    /// (the zero-steady-state-allocation invariant failed).
    pub containers_grew: bool,
}

/// Compile the per-session lane scripts from traced serial runs of the
/// 18-workload suite on the fast network.
#[must_use]
pub fn compile_scripts() -> Vec<(String, SessionScript)> {
    use native_offloader::SessionConfig;
    suite()
        .iter()
        .map(|(name, app, input)| {
            let mut obs = TraceCollector::with_capacity(FARM_RING_CAPACITY);
            let cfg = SessionConfig::fast_network();
            run_offloaded_traced(app, input, &cfg, &mut obs).expect("suite session runs");
            (name.clone(), SessionScript::from_records(&obs.records()))
        })
        .collect()
}

/// Walk `script_of` through the thread-per-session baseline: one OS
/// thread per session contending on shared lane clocks under mutexes —
/// the blocking engine's architecture at this concurrency. Returns host
/// seconds for all sessions to finish.
///
/// The simulation arithmetic per segment (one lane acquire, one
/// `max` + add) matches what the event engine does per event, so the
/// measured difference is scheduling architecture, not work.
///
/// A start barrier holds every thread until all are spawned, matching
/// the event engine's semantics (it admits every session at `t = 0`).
/// Without it the threads drip through as the spawn loop progresses and
/// the kernel never actually schedules the full concurrency this
/// benchmark is about.
#[must_use]
pub fn run_thread_baseline(scripts: &[SessionScript], script_of: &[u32], workers: usize) -> f64 {
    let workers = workers.max(1);
    // Lane clocks: per-worker CPU, shared uplink/downlink/server.
    let cpu: Vec<Mutex<f64>> = (0..workers).map(|_| Mutex::new(0.0)).collect();
    let link_up = Mutex::new(0.0f64);
    let link_down = Mutex::new(0.0f64);
    let server = Mutex::new(0.0f64);
    let all_admitted = Barrier::new(script_of.len() + 1);
    let start = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(script_of.len());
        for (s, &sc) in script_of.iter().enumerate() {
            let script = &scripts[sc as usize];
            let cpu = &cpu;
            let (link_up, link_down, server) = (&link_up, &link_down, &server);
            // Spawn exactly as the farm spawns its workers (default
            // stacks): the baseline models the incumbent thread-per-
            // session architecture, not a hand-tuned minimal thread.
            let all_admitted = &all_admitted;
            let h = std::thread::Builder::new()
                .spawn_scoped(scope, move || {
                    all_admitted.wait();
                    let mut t = 0.0f64;
                    for seg in &script.spine {
                        let lane = match seg.lane {
                            EngineLane::WorkerCpu => &cpu[s % workers],
                            EngineLane::LinkUp => link_up,
                            EngineLane::LinkDown => link_down,
                            EngineLane::Server => server,
                        };
                        let mut free = lane.lock().expect("lane clock poisoned");
                        let begin = if t > *free { t } else { *free };
                        t = begin + seg.duration_s;
                        *free = t;
                    }
                    for page in &script.pages {
                        let mut free = link_up.lock().expect("lane clock poisoned");
                        *free += page.duration_s;
                    }
                    t
                })
                .expect("spawn baseline session thread");
            handles.push(h);
        }
        all_admitted.wait();
        for h in handles {
            let _ = h.join().expect("baseline session thread panicked");
        }
    });
    start.elapsed().as_secs_f64()
}

/// Exact p-quantile of `values` (sorted copy, nearest-rank with linear
/// interpolation — matches `Histogram`'s exact small-sample path).
fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
}

/// Run the sweep: event engine at every level, baseline up to
/// [`BASELINE_CAP`] sessions.
#[must_use]
pub fn run_bench(workers: usize, server_slots: usize, sweep: &[usize]) -> EvloopBench {
    let named = compile_scripts();
    let scripts: Vec<SessionScript> = named.iter().map(|(_, s)| s.clone()).collect();
    let cfg = EvloopConfig {
        workers,
        server_slots,
    };
    let mut rows = Vec::with_capacity(sweep.len());
    let mut grew = false;
    for &n in sweep {
        let script_of: Vec<u32> = (0..n).map(|i| (i % scripts.len()) as u32).collect();
        // Warm (and correctness) pass, then best-of-N timed passes — the
        // minimum is the standard low-noise wall-clock estimator, and it
        // is applied symmetrically to the engine and the baseline below
        // (5 engine passes ~ milliseconds; 3 baseline passes ~ seconds).
        let sched = multiplex(&scripts, &script_of, &cfg, &mut NoopCollector);
        let mut evloop_s = f64::INFINITY;
        let mut timed = sched;
        for _ in 0..5 {
            let host = Instant::now();
            let pass = multiplex(&scripts, &script_of, &cfg, &mut NoopCollector);
            evloop_s = evloop_s.min(host.elapsed().as_secs_f64());
            grew |= pass.containers_grew;
            timed = pass;
        }
        grew |= timed.containers_grew;

        let (baseline_host_ms, baseline_sessions_per_s, speedup) = if n <= BASELINE_CAP {
            let base_s = (0..3)
                .map(|_| run_thread_baseline(&scripts, &script_of, workers))
                .fold(f64::INFINITY, f64::min);
            let base_rate = n as f64 / base_s.max(f64::MIN_POSITIVE);
            let ev_rate = n as f64 / evloop_s.max(f64::MIN_POSITIVE);
            (
                Some(base_s * 1e3),
                Some(base_rate),
                Some(ev_rate / base_rate.max(f64::MIN_POSITIVE)),
            )
        } else {
            (None, None, None)
        };
        rows.push(EvloopRow {
            sessions: n,
            events: timed.events_dispatched,
            evloop_host_ms: evloop_s * 1e3,
            sessions_per_s: n as f64 / evloop_s.max(f64::MIN_POSITIVE),
            baseline_host_ms,
            baseline_sessions_per_s,
            speedup,
            p99_makespan_s: quantile(&timed.completions, 0.99),
            makespan_s: timed.makespan_s,
            link_up_busy_s: timed.lane_busy_s[1],
        });
    }
    EvloopBench {
        workers,
        server_slots,
        scripts: named
            .iter()
            .map(|(name, s)| (name.clone(), s.spine.len(), s.pages.len()))
            .collect(),
        rows,
        containers_grew: grew,
    }
}

/// Render the artifact as pretty-printed JSON (hand-rolled — the
/// workspace is dependency-free).
#[must_use]
pub fn to_json(b: &EvloopBench) -> String {
    fn opt(v: Option<f64>, digits: usize) -> String {
        v.map_or("null".to_string(), |x| format!("{x:.digits$}"))
    }
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"bench_pr8.v1\",\n");
    let _ = writeln!(s, "  \"workers\": {},", b.workers);
    let _ = writeln!(s, "  \"server_slots\": {},", b.server_slots);
    let _ = writeln!(s, "  \"containers_grew\": {},", b.containers_grew);
    s.push_str("  \"scripts\": [\n");
    for (i, (name, spine, pages)) in b.scripts.iter().enumerate() {
        let comma = if i + 1 == b.scripts.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{name}\", \"spine_segments\": {spine}, \"stream_pages\": {pages}}}{comma}"
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"rows\": [\n");
    for (i, r) in b.rows.iter().enumerate() {
        let comma = if i + 1 == b.rows.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"sessions\": {}, \"events\": {}, \"evloop_host_ms\": {:.3}, \"sessions_per_s\": {:.1}, \"baseline_host_ms\": {}, \"baseline_sessions_per_s\": {}, \"speedup\": {}, \"p99_makespan_s\": {:.6}, \"makespan_s\": {:.6}, \"link_up_busy_s\": {:.6}}}{comma}",
            r.sessions,
            r.events,
            r.evloop_host_ms,
            r.sessions_per_s,
            opt(r.baseline_host_ms, 3),
            opt(r.baseline_sessions_per_s, 1),
            opt(r.speedup, 2),
            r.p99_makespan_s,
            r.makespan_s,
            r.link_up_busy_s,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Render the human table.
#[must_use]
pub fn render_table(b: &EvloopBench) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Event-driven core: interleaved sessions per worker (workers={}, server_slots={})\n",
        b.workers, b.server_slots
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>14} {:>14} {:>10} {:>16} {:>14}",
        "sessions", "events", "evloop", "thread/sess", "speedup", "p99 makespan", "makespan"
    );
    for r in &b.rows {
        let _ = writeln!(
            out,
            "{:>10} {:>12} {:>11.1}/s {:>11}/s {:>10} {:>14.3} s {:>12.3} s",
            r.sessions,
            r.events,
            r.sessions_per_s,
            r.baseline_sessions_per_s
                .map_or("-".to_string(), |v| format!("{v:.1}")),
            r.speedup.map_or("-".to_string(), |v| format!("{v:.1}x")),
            r.p99_makespan_s,
            r.makespan_s,
        );
    }
    let total_pages: usize = b.scripts.iter().map(|(_, _, p)| *p).sum();
    let _ = writeln!(
        out,
        "\nscripts: {} workloads, {} spine segments, {} stream pages; rates are host wall-clock (informational), makespans simulated (deterministic)",
        b.scripts.len(),
        b.scripts.iter().map(|(_, s, _)| *s).sum::<usize>(),
        total_pages,
    );
    out
}

/// Pull `"speedup"` of the row with `"sessions": 10000` out of a
/// committed `bench_pr8.v1` artifact.
#[must_use]
pub fn parse_committed_speedup_at_10k(json: &str) -> Option<f64> {
    for line in json.lines() {
        let line = line.trim();
        if !line.contains("\"sessions\": 10000,") {
            continue;
        }
        let key = "\"speedup\": ";
        let at = line.find(key)? + key.len();
        let rest = &line[at..];
        let end = rest.find([',', '}'])?;
        return rest[..end].trim().parse().ok();
    }
    None
}

/// Pull `"sessions_per_s"` of the 10k row out of a committed artifact.
#[must_use]
pub fn parse_committed_rate_at_10k(json: &str) -> Option<f64> {
    for line in json.lines() {
        let line = line.trim();
        if !line.contains("\"sessions\": 10000,") {
            continue;
        }
        let key = "\"sessions_per_s\": ";
        let at = line.find(key)? + key.len();
        let rest = &line[at..];
        let end = rest.find([',', '}'])?;
        return rest[..end].trim().parse().ok();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_endpoints() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 3.0);
        assert_eq!(quantile(&v, 0.5), 2.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn committed_speedup_at_10k_sessions_meets_the_gate() {
        // The committed artifact is the acceptance gate: ≥ 50x
        // sessions-per-worker over thread-per-session at 10k concurrent
        // sessions. Both engines were measured on the same host in the
        // same run, so the ratio is host-independent architecture gain.
        let json = include_str!("../../../BENCH_pr8.json");
        let speedup =
            parse_committed_speedup_at_10k(json).expect("BENCH_pr8.json has a 10k-session row");
        assert!(
            speedup >= 50.0,
            "committed 10k-session speedup {speedup} below the 50x gate"
        );
    }

    #[test]
    fn committed_artifact_holds_the_zero_alloc_invariant() {
        let json = include_str!("../../../BENCH_pr8.json");
        assert!(
            json.contains("\"containers_grew\": false"),
            "committed run grew a pre-sized container in steady state"
        );
    }

    #[test]
    fn json_roundtrip_of_parsers() {
        let b = EvloopBench {
            workers: 1,
            server_slots: 16,
            scripts: vec![("w".into(), 3, 1)],
            rows: vec![EvloopRow {
                sessions: 10_000,
                events: 123,
                evloop_host_ms: 5.0,
                sessions_per_s: 2_000_000.0,
                baseline_host_ms: Some(500.0),
                baseline_sessions_per_s: Some(20_000.0),
                speedup: Some(100.0),
                p99_makespan_s: 1.5,
                makespan_s: 2.0,
                link_up_busy_s: 0.5,
            }],
            containers_grew: false,
        };
        let json = to_json(&b);
        assert_eq!(parse_committed_speedup_at_10k(&json), Some(100.0));
        assert_eq!(parse_committed_rate_at_10k(&json), Some(2_000_000.0));
    }
}
