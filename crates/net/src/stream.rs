//! In-flight transfer model for speculative page streaming.
//!
//! The synchronous demand path serializes every page behind a control
//! round trip: fault → `PageRequest` → page → resume. Speculative
//! streaming instead pushes predicted pages onto the link *while the
//! server VM computes*. This module models exactly that overlap on
//! simulated time:
//!
//! * the link is a single FIFO pipe — a streamed page starts serializing
//!   no earlier than the previous one finished serializing
//!   ([`StreamWindow::free_s`] tracks the sender horizon), and arrives
//!   one propagation latency later, so back-to-back predictions pipeline
//!   (spaced by bandwidth, paying latency once each in parallel) instead
//!   of teleporting;
//! * each page gets a deterministic **arrival time**; a fault at `now` on
//!   an in-flight page pays only `max(0, arrival - now)` — the residual —
//!   instead of a full round trip;
//! * pages still in flight at finalization are *waste*: the bytes crossed
//!   the wire for nothing, and the adaptive controller narrows the window
//!   in response.
//!
//! The model deliberately lives in `net` next to [`Link`]: it is pure
//! timing arithmetic over `Link::transfer_time`, with no knowledge of
//! predictors or sessions, which keeps it unit-testable in isolation.

use std::collections::BTreeMap;

use crate::link::Link;

/// One page currently occupying the link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InFlightPage {
    /// Simulated time at which the page is fully received by the server.
    pub arrival_s: f64,
    /// Wire payload bytes the page burned (for waste accounting).
    pub wire_bytes: u64,
}

/// What a finalization drain found in the window, split by whether each
/// page had already arrived at the server when the session tore down.
/// Page order within each half (they partition the window's key order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DrainOutcome {
    /// Pages with `arrival_s <= now`: fully crossed the wire, yet never
    /// faulted on — delivered waste.
    pub delivered: Vec<(u64, InFlightPage)>,
    /// Pages still crossing at `now`: cut off mid-flight.
    pub undelivered: Vec<(u64, InFlightPage)>,
}

impl DrainOutcome {
    /// Total drained pages (both halves — all waste).
    #[must_use]
    pub fn pages(&self) -> u64 {
        (self.delivered.len() + self.undelivered.len()) as u64
    }

    /// Total wire bytes the drained pages burned.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        self.delivered
            .iter()
            .chain(&self.undelivered)
            .map(|(_, p)| p.wire_bytes)
            .sum()
    }

    /// `true` when nothing was drained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.delivered.is_empty() && self.undelivered.is_empty()
    }
}

/// The set of in-flight streamed pages plus the link-occupancy horizon.
///
/// Deterministic by construction: pages are keyed in a `BTreeMap`, and
/// scheduling is pure arithmetic over the caller-supplied clock.
#[derive(Debug, Clone, Default)]
pub struct StreamWindow {
    /// The simulated time at which the sender finishes serializing the
    /// last queued page — when the pipe accepts the next one.
    free_s: f64,
    in_flight: BTreeMap<u64, InFlightPage>,
}

impl StreamWindow {
    /// An empty window with the link free immediately.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `page` onto the link at simulated time `now_s`, carrying
    /// `wire_payload_bytes`. The page starts serializing when the sender
    /// frees up (`max(now_s, free_s)`), finishes serializing one
    /// [`Link::serialization_time`] later, and arrives one propagation
    /// latency after that. Returns the arrival time.
    ///
    /// The pipe is pipelined: `free_s` tracks the sender's serialization
    /// horizon only, so back-to-back pages arrive one serialization time
    /// apart — propagation of each page overlaps serialization of the
    /// next, exactly like packets on an established connection. (The
    /// synchronous demand path, by contrast, pays the full
    /// request/response latency on every batch.)
    ///
    /// Scheduling a page that is already in flight is a caller bug.
    pub fn schedule(&mut self, now_s: f64, page: u64, wire_payload_bytes: u64, link: &Link) -> f64 {
        debug_assert!(
            !self.in_flight.contains_key(&page),
            "page {page} double-streamed"
        );
        let depart_s = if now_s > self.free_s {
            now_s
        } else {
            self.free_s
        };
        let sent_s = depart_s + link.serialization_time(wire_payload_bytes);
        let arrival_s = sent_s + link.latency_s;
        self.free_s = sent_s;
        self.in_flight.insert(
            page,
            InFlightPage {
                arrival_s,
                wire_bytes: wire_payload_bytes,
            },
        );
        arrival_s
    }

    /// [`StreamWindow::schedule`] plus an observe-only
    /// [`EventKind::QueueDepth`](offload_obs::EventKind) sample of the
    /// window's occupancy after the insert — the hook the time-series
    /// resampler reads its in-flight curve from. Timing arithmetic is
    /// identical to the untraced path.
    pub fn schedule_traced(
        &mut self,
        obs: &mut dyn offload_obs::Collector,
        now_s: f64,
        page: u64,
        wire_payload_bytes: u64,
        link: &Link,
    ) -> f64 {
        let arrival_s = self.schedule(now_s, page, wire_payload_bytes, link);
        obs.record(
            now_s,
            offload_obs::EventKind::QueueDepth {
                queue: offload_obs::QueueLane::StreamWindow,
                depth: self.in_flight.len() as u64,
            },
        );
        arrival_s
    }

    /// `true` if `page` is currently in flight.
    #[must_use]
    pub fn contains(&self, page: u64) -> bool {
        self.in_flight.contains_key(&page)
    }

    /// Remove and return `page`'s in-flight record (on fault).
    pub fn take(&mut self, page: u64) -> Option<InFlightPage> {
        self.in_flight.remove(&page)
    }

    /// Residual wait a fault at `now_s` pays for `page`, if in flight:
    /// `max(0, arrival - now)`.
    #[must_use]
    pub fn residual(&self, now_s: f64, page: u64) -> Option<f64> {
        self.in_flight
            .get(&page)
            .map(|p| (p.arrival_s - now_s).max(0.0))
    }

    /// Drain every still-in-flight page (at finalization), classified
    /// against the finalization clock `now_s`.
    ///
    /// The `arrival == now` boundary is well-defined and single-counted:
    /// a fault racing the arrival takes the page *first* ([`take`](
    /// StreamWindow::take) via the fault path) and pays a residual of
    /// exactly `0.0` — a hit, never drained. Only pages still in the
    /// window reach the drain, where `arrival_s <= now_s` means
    /// *delivered* (crossed the wire, never touched) and the rest are
    /// cut off mid-flight. Both halves are waste — the split is
    /// observability, not accounting — so every streamed page is counted
    /// exactly once: `hits + drained == streamed`.
    pub fn drain(&mut self, now_s: f64) -> DrainOutcome {
        let mut out = DrainOutcome::default();
        for (page, flight) in std::mem::take(&mut self.in_flight) {
            if flight.arrival_s <= now_s {
                out.delivered.push((page, flight));
            } else {
                out.undelivered.push((page, flight));
            }
        }
        out
    }

    /// Pages currently in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// `true` if nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// The time the link frees up for the next streamed page.
    #[must_use]
    pub fn free_at(&self) -> f64 {
        self.free_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        // 8 Mbps, 1 ms latency, no per-message overhead: 1000 wire bytes
        // take 1e-3 + 1000*8/8e6 = 2 ms.
        Link {
            name: "test".into(),
            bandwidth_bps: 8_000_000,
            latency_s: 0.001,
            per_message_bytes: 0,
        }
    }

    #[test]
    fn pages_pipeline_behind_each_other() {
        let l = link();
        let mut w = StreamWindow::new();
        let a1 = w.schedule(0.0, 10, 1000, &l);
        assert!((a1 - 0.002).abs() < 1e-12);
        // Second page scheduled at the same instant queues behind the
        // first's *serialization* (1 ms), then pays its own 1 ms of
        // serialization plus the 1 ms propagation: arrives at 3 ms. The
        // propagation of page one overlaps the serialization of page two.
        let a2 = w.schedule(0.0, 11, 1000, &l);
        assert!((a2 - 0.003).abs() < 1e-12);
        assert_eq!(w.len(), 2);
        assert!((w.free_at() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn link_idles_until_the_next_schedule() {
        let l = link();
        let mut w = StreamWindow::new();
        w.schedule(0.0, 1, 1000, &l);
        // Scheduled well after the first arrival: departs immediately.
        let a = w.schedule(1.0, 2, 1000, &l);
        assert!((a - 1.002).abs() < 1e-12);
    }

    #[test]
    fn residual_shrinks_to_zero_after_arrival() {
        let l = link();
        let mut w = StreamWindow::new();
        w.schedule(0.0, 5, 1000, &l); // arrives at 2 ms
        assert!((w.residual(0.0005, 5).unwrap() - 0.0015).abs() < 1e-12);
        assert_eq!(w.residual(0.5, 5).unwrap(), 0.0);
        assert!(w.residual(0.0, 99).is_none());
    }

    #[test]
    fn take_removes_and_drain_empties_in_page_order() {
        let l = link();
        let mut w = StreamWindow::new();
        w.schedule(0.0, 9, 100, &l);
        w.schedule(0.0, 3, 100, &l);
        w.schedule(0.0, 7, 100, &l);
        let hit = w.take(3).expect("in flight");
        assert!(hit.arrival_s > 0.0);
        assert!(!w.contains(3));
        // Finalize mid-flight (before anything arrived): both leftovers
        // are undelivered, in page order.
        let rest = w.drain(0.0);
        assert!(rest.delivered.is_empty());
        assert_eq!(
            rest.undelivered.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            [7, 9]
        );
        assert_eq!(rest.pages(), 2);
        assert_eq!(rest.wire_bytes(), 200);
        assert!(w.is_empty());
        // free_s survives a drain: the link horizon is physical.
        assert!(w.free_at() > 0.0);
    }

    #[test]
    fn drain_splits_delivered_from_in_flight_at_the_boundary() {
        let l = link();
        let mut w = StreamWindow::new();
        let a1 = w.schedule(0.0, 1, 1000, &l); // arrives at 2 ms
        let a2 = w.schedule(0.0, 2, 1000, &l); // arrives at 3 ms
                                               // Finalize exactly at page 1's arrival instant: `arrival == now`
                                               // classifies as delivered — counted once, in the delivered half.
        let out = w.drain(a1);
        assert_eq!(
            out.delivered.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            [1]
        );
        assert_eq!(
            out.undelivered.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            [2]
        );
        // Single-counted: two streamed pages, zero hits, two waste.
        assert_eq!(out.pages(), 2);
        assert!(a2 > a1);
    }

    #[test]
    fn fault_exactly_at_arrival_is_a_hit_not_waste() {
        let l = link();
        let mut w = StreamWindow::new();
        let arrival = w.schedule(0.0, 5, 1000, &l);
        // A fault racing the arrival at exactly `now == arrival` pays a
        // residual of exactly 0.0 — and takes the page out of the window.
        assert_eq!(w.residual(arrival, 5).unwrap().to_bits(), 0.0f64.to_bits());
        assert!(w.take(5).is_some());
        // The page is gone: a finalization drain at the same instant
        // cannot count it again.
        let out = w.drain(arrival);
        assert!(out.is_empty());
        assert_eq!(out.pages(), 0);
    }

    #[test]
    fn traced_schedule_samples_depth_with_identical_timing() {
        use offload_obs::{EventKind, QueueLane, TraceCollector};
        let l = link();
        let mut obs = TraceCollector::new();
        let mut traced = StreamWindow::new();
        let mut plain = StreamWindow::new();
        let t1 = traced.schedule_traced(&mut obs, 0.0, 10, 1000, &l);
        let t2 = traced.schedule_traced(&mut obs, 0.0, 11, 1000, &l);
        let p1 = plain.schedule(0.0, 10, 1000, &l);
        let p2 = plain.schedule(0.0, 11, 1000, &l);
        assert_eq!(t1.to_bits(), p1.to_bits());
        assert_eq!(t2.to_bits(), p2.to_bits());
        let depths: Vec<u64> = obs
            .records()
            .iter()
            .filter_map(|r| match r.kind {
                EventKind::QueueDepth {
                    queue: QueueLane::StreamWindow,
                    depth,
                } => Some(depth),
                _ => None,
            })
            .collect();
        assert_eq!(depths, vec![1, 2]);
    }
}
