//! Integration: the concurrent session farm is byte-identical to serial
//! execution — same reports, console output and wire-byte counters, and
//! the merged sharded traces reconcile — for the whole 18-program suite.

use std::sync::OnceLock;

use native_offloader::runtime::derive::check_reconciliation;
use native_offloader::runtime::farm::{
    check_serial_equivalence, reports_equal, run_farm, FarmJob, FarmResult,
};
use native_offloader::{CompiledApp, Offloader, SessionConfig, WorkloadInput};
use offload_workloads::{all, chess};

/// The 17 miniatures plus chess (the 18th, paper §5.2 case study),
/// compiled once per test binary.
fn apps() -> &'static [(String, CompiledApp, WorkloadInput)] {
    static APPS: OnceLock<Vec<(String, CompiledApp, WorkloadInput)>> = OnceLock::new();
    APPS.get_or_init(|| {
        let mut v: Vec<(String, CompiledApp, WorkloadInput)> = all()
            .into_iter()
            .map(|w| {
                let app = w
                    .compile()
                    .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
                let input = (w.eval_input)();
                (w.name.to_string(), app, input)
            })
            .collect();
        let chess_app = Offloader::new()
            .compile_source(chess::SOURCE, "chess", &chess::input(9, 2))
            .expect("chess compiles");
        v.push(("chess".to_string(), chess_app, chess::input(9, 2)));
        v
    })
}

fn jobs() -> Vec<FarmJob<'static>> {
    apps()
        .iter()
        .map(|(_, app, input)| FarmJob {
            app,
            input: input.clone(),
            cfg: SessionConfig::fast_network(),
        })
        .collect()
}

/// One serial (reference) and one 4-worker farm over the full suite,
/// shared across the tests below (sessions are the expensive part).
fn farms() -> &'static (FarmResult, FarmResult) {
    static FARMS: OnceLock<(FarmResult, FarmResult)> = OnceLock::new();
    FARMS.get_or_init(|| {
        let jobs = jobs();
        let serial = run_farm(&jobs, 1).expect("serial farm");
        let parallel = run_farm(&jobs, 4).expect("parallel farm");
        (serial, parallel)
    })
}

/// The core guarantee: parallel worker counts produce the same bytes as
/// one worker, for every workload — reports field by field (f64s
/// compared on bits) and traces record by record.
#[test]
fn farm_is_byte_identical_across_worker_counts() {
    let (reference, parallel4) = farms();
    assert_eq!(reference.reports.len(), 18, "the full suite runs");
    let two = run_farm(&jobs(), 2).expect("2-worker farm");
    for parallel in [parallel4, &two] {
        for (i, (name, _, _)) in apps().iter().enumerate() {
            reports_equal(&reference.reports[i], &parallel.reports[i])
                .unwrap_or_else(|e| panic!("{name} diverged from serial: {e}"));
            let a = reference.trace.shard(i).expect("reference shard");
            let b = parallel.trace.shard(i).expect("parallel shard");
            assert_eq!(a.records, b.records, "{name}: trace diverged");
            assert_eq!(a.metrics, b.metrics, "{name}: metrics diverged");
            assert_eq!((a.dropped, b.dropped), (0, 0), "{name}: ring overflowed");
        }
    }
}

/// The merged sharded collectors still satisfy the bit-exact trace →
/// report reconciliation, shard by shard: sharding loses nothing.
#[test]
fn merged_shards_reconcile_against_reports() {
    let (_, parallel4) = farms();
    assert_eq!(parallel4.trace.len(), 18);
    assert_eq!(parallel4.trace.dropped(), 0, "no shard may drop records");
    let cfg = SessionConfig::fast_network();
    for (i, (name, _, _)) in apps().iter().enumerate() {
        let shard = parallel4.trace.shard(i).expect("shard");
        check_reconciliation(&shard.records, &parallel4.reports[i], &cfg)
            .unwrap_or_else(|e| panic!("{name}: merged-shard reconciliation failed: {e}"));
    }
}

/// The `reproduce farm --check-serial-equivalence` gate function itself.
#[test]
fn serial_equivalence_gate_passes() {
    // A slice of the suite keeps the debug-mode runtime sane; the CI gate
    // runs the full 18 in release through the reproduce binary.
    let jobs: Vec<FarmJob> = jobs().into_iter().take(6).collect();
    check_serial_equivalence(&jobs, 4).expect("farm must match serial execution");
}
