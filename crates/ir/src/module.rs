//! Modules, functions, blocks, globals and constants.
//!
//! A [`Module`] is the unit the Native Offloader compiler partitions: the
//! front-end lowers a whole application into one module, the offload passes
//! clone and rewrite it into a *mobile* module and a *server* module, and
//! each simulated device executes its own copy.

use std::collections::HashMap;
use std::fmt;

use crate::inst::Inst;
use crate::types::{StructDef, Type};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Index of a struct definition within its [`Module`].
    StructId,
    "%s"
);
id_type!(
    /// Index of a global variable within its [`Module`].
    GlobalId,
    "@g"
);
id_type!(
    /// Index of a function within its [`Module`].
    FuncId,
    "@f"
);
id_type!(
    /// Index of a basic block within its [`Function`].
    BlockId,
    "bb"
);
id_type!(
    /// Index of a virtual register within its [`Function`].
    ValueId,
    "%v"
);

/// A compile-time constant.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstValue {
    /// 8-bit integer.
    I8(i8),
    /// 16-bit integer.
    I16(i16),
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// Null pointer of the given pointee type.
    Null(Type),
    /// Address of a global variable.
    GlobalAddr(GlobalId),
    /// Address of a function (the *device-specific* numeric value is chosen
    /// by each back-end — the reason the paper needs function-pointer
    /// mapping, §3.4).
    FuncAddr(FuncId),
}

impl ConstValue {
    /// The IR type of this constant (pointers are typed by pointee).
    pub fn ty(&self, module: &Module) -> Type {
        match self {
            ConstValue::I8(_) => Type::I8,
            ConstValue::I16(_) => Type::I16,
            ConstValue::I32(_) => Type::I32,
            ConstValue::I64(_) => Type::I64,
            ConstValue::F64(_) => Type::F64,
            ConstValue::Null(pointee) => pointee.clone().ptr_to(),
            ConstValue::GlobalAddr(id) => module.global(*id).ty.clone().ptr_to(),
            ConstValue::FuncAddr(id) => {
                let f = module.function(*id);
                Type::Func(Box::new(crate::types::FuncSig {
                    params: f.params.clone(),
                    ret: f.ret.clone(),
                }))
                .ptr_to()
            }
        }
    }
}

/// Initializer of a global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// All-zero bytes.
    Zeroed,
    /// Flattened leaf values in declaration order. The loader walks the
    /// global's type with the device's data layout and writes each leaf at
    /// its laid-out offset, so the same initializer works under any ABI.
    Scalars(Vec<ConstValue>),
    /// Raw bytes (string literals).
    Bytes(Vec<u8>),
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Source-level name.
    pub name: String,
    /// Value type.
    pub ty: Type,
    /// Initializer.
    pub init: GlobalInit,
    /// Set by the memory unifier: this global is *referenced* (its address
    /// may cross devices) and must live in the unified globals segment
    /// (§3.2 "referenced global variable allocation").
    pub unified: bool,
}

/// A basic block: straight-line instructions ending in a terminator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Instructions; the last must be a terminator
    /// ([`Inst::is_terminator`]).
    pub insts: Vec<Inst>,
}

/// A function. A function with no blocks is an *external declaration* —
/// precisely what the paper's function filter treats as an "unknown external
/// library call" (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Source-level name.
    pub name: String,
    /// Parameter types; parameters occupy value ids `0..params.len()`.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Types of every virtual register (params first).
    pub value_types: Vec<Type>,
}

impl Function {
    /// `true` if this is an external declaration with no body.
    pub fn is_declaration(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The type of a virtual register.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn value_type(&self, v: ValueId) -> &Type {
        &self.value_types[v.0 as usize]
    }

    /// Iterate over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Successor blocks of `bb`, read from its terminator.
    pub fn successors(&self, bb: BlockId) -> Vec<BlockId> {
        match self.blocks[bb.0 as usize].insts.last() {
            Some(Inst::Br { target }) => vec![*target],
            Some(Inst::CondBr {
                then_bb, else_bb, ..
            }) => vec![*then_bb, *else_bb],
            _ => vec![],
        }
    }

    /// Total instruction count across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A whole program at IR level.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Module (application) name.
    pub name: String,
    structs: Vec<StructDef>,
    globals: Vec<Global>,
    functions: Vec<Function>,
    /// The program entry point, if defined.
    pub entry: Option<FuncId>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Define a struct and return its id.
    pub fn define_struct(&mut self, def: StructDef) -> StructId {
        self.structs.push(def);
        StructId(self.structs.len() as u32 - 1)
    }

    /// The definition of a struct.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn struct_def(&self, id: StructId) -> &StructDef {
        &self.structs[id.0 as usize]
    }

    /// Replace a struct's fields — used by front-ends to close the loop on
    /// self-referential structs (declare the name first, fill the body
    /// once field types can resolve).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_struct_fields(&mut self, id: StructId, fields: Vec<Type>) {
        self.structs[id.0 as usize].fields = fields;
    }

    /// Iterate over all struct ids.
    pub fn struct_ids(&self) -> impl Iterator<Item = StructId> {
        (0..self.structs.len() as u32).map(StructId)
    }

    /// Define a global variable and return its id.
    pub fn define_global(
        &mut self,
        name: impl Into<String>,
        ty: Type,
        init: GlobalInit,
    ) -> GlobalId {
        self.globals.push(Global {
            name: name.into(),
            ty,
            init,
            unified: false,
        });
        GlobalId(self.globals.len() as u32 - 1)
    }

    /// A global by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// Mutable access to a global.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn global_mut(&mut self, id: GlobalId) -> &mut Global {
        &mut self.globals[id.0 as usize]
    }

    /// Iterate over `(GlobalId, &Global)` pairs.
    pub fn iter_globals(&self) -> impl Iterator<Item = (GlobalId, &Global)> {
        self.globals
            .iter()
            .enumerate()
            .map(|(i, g)| (GlobalId(i as u32), g))
    }

    /// Number of globals.
    pub fn global_count(&self) -> usize {
        self.globals.len()
    }

    /// Declare a function (body added later through the builder) and
    /// return its id.
    pub fn declare_function(
        &mut self,
        name: impl Into<String>,
        params: Vec<Type>,
        ret: Type,
    ) -> FuncId {
        let value_types = params.clone();
        self.functions.push(Function {
            name: name.into(),
            params,
            ret,
            blocks: Vec::new(),
            value_types,
        });
        FuncId(self.functions.len() as u32 - 1)
    }

    /// A function by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.0 as usize]
    }

    /// Iterate over `(FuncId, &Function)` pairs.
    pub fn iter_functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Number of functions (including declarations).
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Look up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.iter_functions()
            .find(|(_, f)| f.name == name)
            .map(|(id, _)| id)
    }

    /// Look up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.iter_globals()
            .find(|(_, g)| g.name == name)
            .map(|(id, _)| id)
    }

    /// Remove the bodies of the given functions, turning them into
    /// declarations (the partitioner's *unused function removal*, §3.3).
    pub fn strip_bodies(&mut self, ids: &[FuncId]) {
        for id in ids {
            let f = &mut self.functions[id.0 as usize];
            f.blocks.clear();
            f.value_types.truncate(f.params.len());
        }
    }

    /// Map from function name to id, for tests and tools.
    pub fn function_names(&self) -> HashMap<&str, FuncId> {
        self.iter_functions()
            .map(|(id, f)| (f.name.as_str(), id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let mut m = Module::new("app");
        let s = m.define_struct(StructDef {
            name: "S".into(),
            fields: vec![Type::I32],
        });
        assert_eq!(m.struct_def(s).name, "S");
        let g = m.define_global("counter", Type::I32, GlobalInit::Zeroed);
        assert_eq!(m.global(g).name, "counter");
        assert_eq!(m.global_by_name("counter"), Some(g));
        let f = m.declare_function("main", vec![], Type::I32);
        assert_eq!(m.function_by_name("main"), Some(f));
        assert!(m.function(f).is_declaration());
    }

    #[test]
    fn const_types() {
        let mut m = Module::new("app");
        let g = m.define_global("x", Type::F64, GlobalInit::Zeroed);
        assert_eq!(ConstValue::I32(1).ty(&m), Type::I32);
        assert_eq!(ConstValue::GlobalAddr(g).ty(&m), Type::F64.ptr_to());
        assert_eq!(ConstValue::Null(Type::I8).ty(&m), Type::I8.ptr_to());
    }

    #[test]
    fn strip_bodies_makes_declarations() {
        let mut m = Module::new("app");
        let f = m.declare_function("g", vec![Type::I32], Type::Void);
        {
            let func = m.function_mut(f);
            func.blocks.push(Block {
                insts: vec![Inst::Ret { value: None }],
            });
        }
        assert!(!m.function(f).is_declaration());
        m.strip_bodies(&[f]);
        assert!(m.function(f).is_declaration());
        assert_eq!(m.function(f).value_types.len(), 1);
    }

    #[test]
    fn display_ids() {
        assert_eq!(FuncId(3).to_string(), "@f3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(ValueId(7).to_string(), "%v7");
    }
}
