//! Fuzz tests for the machine substrate: paged memory, the heap
//! allocator, scalar encode/decode and the power timeline. These carry
//! the UVA protocol's correctness, so they are fuzzed rather than
//! spot-checked — against a fixed-seed splitmix64 stream, so every run
//! exercises identical cases and failures reproduce deterministically.

use offload_ir::{Endian, Type};
use offload_machine::heap::HeapAllocator;
use offload_machine::mem::{BackingPolicy, Memory};
use offload_machine::power::{PowerSpec, PowerState, PowerTimeline};
use offload_machine::vm::{decode_scalar, encode_scalar, RtVal};

/// Minimal splitmix64 — the canonical copy lives in
/// `offload_workloads::rng`, which this leaf crate cannot depend on.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Writes land exactly where they were put, for arbitrary (addr, data)
/// pairs including page-straddling spans.
#[test]
fn memory_write_read_roundtrip() {
    let mut rng = Rng(0x3E3);
    for _ in 0..24 {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        // Apply in order; later writes may overwrite earlier ones, so
        // replay into a HashMap model.
        let mut model: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        let writes: Vec<(u64, Vec<u8>)> = (0..1 + rng.below(19))
            .map(|_| {
                let addr = rng.below(1_000_000);
                let len = 1 + rng.below(599) as usize;
                let data = rng.bytes(len);
                (addr, data)
            })
            .collect();
        for (addr, data) in &writes {
            m.write(*addr, data).unwrap();
            for (i, b) in data.iter().enumerate() {
                model.insert(addr + i as u64, *b);
            }
        }
        for (addr, data) in &writes {
            let mut buf = vec![0u8; data.len()];
            m.read(*addr, &mut buf).unwrap();
            for (i, b) in buf.iter().enumerate() {
                assert_eq!(*b, *model.get(&(addr + i as u64)).unwrap());
            }
        }
    }
}

/// Every page written is flagged dirty; untouched pages are not.
#[test]
fn dirty_pages_are_exactly_the_written_ones() {
    let mut rng = Rng(0xD127);
    for _ in 0..24 {
        let pages: std::collections::BTreeSet<u64> =
            (0..1 + rng.below(19)).map(|_| rng.below(200)).collect();
        let mut m = Memory::new(BackingPolicy::DemandZero);
        // Touch some pages read-only first.
        let mut buf = [0u8; 1];
        for p in 0u64..200 {
            m.read(p * 4096, &mut buf).unwrap();
        }
        m.clear_dirty();
        for p in &pages {
            m.write(p * 4096 + 7, &[1]).unwrap();
        }
        let dirty: std::collections::BTreeSet<u64> = m.dirty_pages().collect();
        assert_eq!(dirty, pages);
    }
}

/// Live heap allocations never overlap, stay in-arena, and freeing
/// everything returns the arena to empty.
#[test]
fn heap_allocations_disjoint() {
    let mut rng = Rng(0x8EA9);
    for _ in 0..24 {
        let sizes: Vec<u64> = (0..1 + rng.below(39))
            .map(|_| 1 + rng.below(4_999))
            .collect();
        let mut h = HeapAllocator::new(0x10000, 0x10000 + (1 << 20));
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let addr = h.alloc(*size).unwrap();
            assert!(addr >= h.base() && addr + size <= h.end());
            for (a, s) in &live {
                assert!(addr + size <= *a || addr >= a + s, "overlap");
            }
            live.push((addr, *size));
            // Free every third allocation as we go, exercising coalescing.
            if i % 3 == 2 {
                let (a, _) = live.remove(i / 3 % live.len().max(1));
                h.free(a).unwrap();
            }
        }
        for (a, _) in live {
            h.free(a).unwrap();
        }
        assert_eq!(h.bytes_in_use(), 0);
        assert_eq!(h.live_count(), 0);
    }
}

/// Scalar encode/decode roundtrips for every type/endianness pair — the
/// §3.2 endianness translation rests on this being exact.
#[test]
fn scalar_roundtrip() {
    let mut rng = Rng(0x5CA1A7);
    for _ in 0..256 {
        let v = rng.next() as i64;
        let f = f64::from_bits(rng.next());
        for endian in [Endian::Little, Endian::Big] {
            for (ty, val) in [
                (Type::I8, RtVal::I(v as i8 as i64)),
                (Type::I16, RtVal::I(v as i16 as i64)),
                (Type::I32, RtVal::I(v as i32 as i64)),
                (Type::I64, RtVal::I(v)),
            ] {
                let size = match ty {
                    Type::I8 => 1,
                    Type::I16 => 2,
                    Type::I32 => 4,
                    _ => 8,
                };
                let mut buf = [0u8; 8];
                encode_scalar(val, &ty, endian, &mut buf[..size]);
                assert_eq!(decode_scalar(&buf[..size], &ty, endian), val);
            }
            if !f.is_nan() {
                let mut buf = [0u8; 8];
                encode_scalar(RtVal::F(f), &Type::F64, endian, &mut buf);
                assert_eq!(decode_scalar(&buf, &Type::F64, endian), RtVal::F(f));
            }
        }
    }
}

/// Timeline energy equals the sum of state power × duration, and the
/// total length equals the sum of durations (merging included).
#[test]
fn timeline_energy_is_additive() {
    let mut rng = Rng(0xE4E9);
    for _ in 0..48 {
        let spec = PowerSpec::galaxy_s5();
        let mut tl = PowerTimeline::new();
        let mut expect_energy = 0.0;
        let mut expect_len = 0.0;
        for _ in 0..1 + rng.below(29) {
            let state = match rng.below(5) {
                0 => PowerState::Idle,
                1 => PowerState::Compute,
                2 => PowerState::Waiting,
                3 => PowerState::Receive,
                _ => PowerState::Transmit,
            };
            let d = rng.unit_f64() * 10.0;
            tl.push(state, d);
            expect_energy += spec.draw_mw(state) * d;
            expect_len += d;
        }
        assert!((tl.energy_mj(&spec) - expect_energy).abs() < 1e-6);
        assert!((tl.total_seconds() - expect_len).abs() < 1e-9);
    }
}
