//! Recursive-descent parser for MiniC.
//!
//! The parser tracks typedef and struct names so it can tell declarations
//! from expressions (the classic C "lexer hack", kept inside the parser
//! here). Declarators cover what the paper's code needs: pointers, multi-
//! dimensional arrays, and function pointers — including arrays of function
//! pointers like Fig. 3's `EVALFUNC evals[7]`.

use std::collections::HashSet;

use crate::ast::*;
use crate::error::CompileError;
use crate::token::{Spanned, Tok};

/// Parse a token stream into a [`Unit`].
///
/// # Errors
///
/// Returns a [`CompileError`] at the offending line on any syntax error.
pub fn parse(tokens: Vec<Spanned>) -> Result<Unit, CompileError> {
    Parser {
        tokens,
        pos: 0,
        typedefs: HashSet::new(),
        structs: HashSet::new(),
    }
    .unit()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    typedefs: HashSet<String>,
    structs: HashSet<String>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn peek_at(&self, n: usize) -> Option<&Tok> {
        self.tokens.get(self.pos + n).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |s| s.line)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), CompileError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.describe_peek())))
        }
    }

    fn describe_peek(&self) -> String {
        match self.peek() {
            Some(t) => t.to_string(),
            None => "end of input".into(),
        }
    }

    fn err(&self, message: impl Into<String>) -> CompileError {
        CompileError::parse(self.line(), message)
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // ----- types ---------------------------------------------------------

    /// `true` if the current token starts a type.
    fn at_type(&self) -> bool {
        match self.peek() {
            Some(Tok::Void | Tok::Char | Tok::Short | Tok::Kint | Tok::Long | Tok::Double)
            | Some(Tok::Struct)
            | Some(Tok::Unsigned | Tok::Const | Tok::Static) => true,
            Some(Tok::Ident(name)) => self.typedefs.contains(name),
            _ => false,
        }
    }

    /// Parse a base type (no declarator): `int`, `struct S`, typedef name,
    /// with leading qualifiers skipped.
    fn base_type(&mut self) -> Result<TypeExpr, CompileError> {
        while matches!(self.peek(), Some(Tok::Const | Tok::Static | Tok::Unsigned)) {
            self.bump();
        }
        let t = match self.bump() {
            Some(Tok::Void) => TypeExpr::Void,
            Some(Tok::Char) => TypeExpr::Char,
            Some(Tok::Short) => TypeExpr::Short,
            Some(Tok::Kint) => TypeExpr::Int,
            Some(Tok::Long) => {
                // `long long` and `long int` collapse to Long.
                while matches!(self.peek(), Some(Tok::Long) | Some(Tok::Kint)) {
                    self.bump();
                }
                TypeExpr::Long
            }
            Some(Tok::Double) => TypeExpr::Double,
            Some(Tok::Struct) => {
                let name = self.ident()?;
                TypeExpr::Struct(name)
            }
            Some(Tok::Ident(name)) if self.typedefs.contains(&name) => TypeExpr::Named(name),
            other => return Err(self.err(format!("expected type, found {other:?}"))),
        };
        Ok(t)
    }

    /// Parse `base_type` followed by `*`s (an abstract type, e.g. in casts
    /// and `sizeof`).
    fn abstract_type(&mut self) -> Result<TypeExpr, CompileError> {
        let mut t = self.base_type()?;
        while self.eat(&Tok::Star) {
            t = TypeExpr::Ptr(Box::new(t));
        }
        Ok(t)
    }

    /// Parse a declarator after the base type: pointers, the name, array
    /// suffixes, or a function-pointer form `(*name)(params)` /
    /// `(*name[N])(params)`. Returns `(type, name)`.
    fn declarator(&mut self, base: TypeExpr) -> Result<(TypeExpr, String), CompileError> {
        let mut t = base;
        while self.eat(&Tok::Star) {
            t = TypeExpr::Ptr(Box::new(t));
        }
        if self.eat(&Tok::LParen) {
            // Function pointer declarator.
            self.expect(&Tok::Star)?;
            let name = self.ident()?;
            let mut array_len = None;
            if self.eat(&Tok::LBracket) {
                array_len = Some(self.array_len()?);
                self.expect(&Tok::RBracket)?;
            }
            self.expect(&Tok::RParen)?;
            self.expect(&Tok::LParen)?;
            let params = self.param_types()?;
            self.expect(&Tok::RParen)?;
            let mut ty = TypeExpr::FnPtr {
                ret: Box::new(t),
                params,
            };
            if let Some(len) = array_len {
                ty = TypeExpr::Array(Box::new(ty), len);
            }
            return Ok((ty, name));
        }
        let name = self.ident()?;
        let mut dims = Vec::new();
        while self.eat(&Tok::LBracket) {
            dims.push(self.array_len()?);
            self.expect(&Tok::RBracket)?;
        }
        for len in dims.into_iter().rev() {
            t = TypeExpr::Array(Box::new(t), len);
        }
        Ok((t, name))
    }

    fn array_len(&mut self) -> Result<usize, CompileError> {
        match self.bump() {
            Some(Tok::Int(v)) if v >= 0 => Ok(v as usize),
            other => Err(self.err(format!("expected array length, found {other:?}"))),
        }
    }

    /// Parameter type list for function-pointer types (names optional).
    fn param_types(&mut self) -> Result<Vec<TypeExpr>, CompileError> {
        let mut params = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            return Ok(params);
        }
        if self.peek() == Some(&Tok::Void) && self.peek_at(1) == Some(&Tok::RParen) {
            self.bump();
            return Ok(params);
        }
        loop {
            let mut t = self.abstract_type()?;
            // Optional parameter name and array suffix.
            if let Some(Tok::Ident(_)) = self.peek() {
                self.bump();
            }
            if self.eat(&Tok::LBracket) {
                let len = self.array_len()?;
                self.expect(&Tok::RBracket)?;
                t = TypeExpr::Array(Box::new(t), len);
            }
            params.push(t);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(params)
    }

    // ----- top level -------------------------------------------------------

    fn unit(mut self) -> Result<Unit, CompileError> {
        let mut decls = Vec::new();
        while self.peek().is_some() {
            decls.extend(self.top_decl()?);
        }
        Ok(Unit { decls })
    }

    fn top_decl(&mut self) -> Result<Vec<Decl>, CompileError> {
        let line = self.line();
        if self.peek() == Some(&Tok::Typedef) {
            return self.typedef();
        }
        if self.peek() == Some(&Tok::Struct)
            && matches!(self.peek_at(1), Some(Tok::Ident(_)))
            && self.peek_at(2) == Some(&Tok::LBrace)
        {
            self.bump();
            let name = self.ident()?;
            let fields = self.struct_body()?;
            self.expect(&Tok::Semi)?;
            self.structs.insert(name.clone());
            return Ok(vec![Decl::Struct { name, fields, line }]);
        }

        let base = self.base_type()?;
        let (ty, name) = self.declarator(base.clone())?;

        if self.peek() == Some(&Tok::LParen)
            && !matches!(ty, TypeExpr::Array(..) | TypeExpr::FnPtr { .. })
        {
            // Function definition or prototype.
            self.bump();
            let params = self.named_params()?;
            self.expect(&Tok::RParen)?;
            let body = if self.eat(&Tok::Semi) {
                None
            } else {
                Some(self.block()?)
            };
            return Ok(vec![Decl::Function {
                ret: ty,
                name,
                params,
                body,
                line,
            }]);
        }

        // Global variable(s), possibly comma-separated.
        let mut out = Vec::new();
        let mut cur = (ty, name);
        loop {
            let init = if self.eat(&Tok::Assign) {
                Some(self.initializer()?)
            } else {
                None
            };
            out.push(Decl::Global {
                ty: cur.0,
                name: cur.1,
                init,
                line,
            });
            if self.eat(&Tok::Comma) {
                cur = self.declarator(base.clone())?;
            } else {
                break;
            }
        }
        self.expect(&Tok::Semi)?;
        Ok(out)
    }

    fn typedef(&mut self) -> Result<Vec<Decl>, CompileError> {
        let line = self.line();
        self.expect(&Tok::Typedef)?;
        if self.peek() == Some(&Tok::Struct)
            && (self.peek_at(1) == Some(&Tok::LBrace)
                || (matches!(self.peek_at(1), Some(Tok::Ident(_)))
                    && self.peek_at(2) == Some(&Tok::LBrace)))
        {
            // `typedef struct [Tag] { ... } Name;` desugars to a struct
            // definition plus a typedef alias.
            self.bump();
            let tag = if let Some(Tok::Ident(_)) = self.peek() {
                Some(self.ident()?)
            } else {
                None
            };
            let fields = self.struct_body()?;
            let name = self.ident()?;
            self.expect(&Tok::Semi)?;
            let struct_name = tag.unwrap_or_else(|| name.clone());
            self.structs.insert(struct_name.clone());
            self.typedefs.insert(name.clone());
            return Ok(vec![
                Decl::Struct {
                    name: struct_name.clone(),
                    fields,
                    line,
                },
                Decl::Typedef {
                    name,
                    ty: TypeExpr::Struct(struct_name),
                    line,
                },
            ]);
        }
        let base = self.base_type()?;
        let (ty, name) = self.declarator(base)?;
        self.expect(&Tok::Semi)?;
        self.typedefs.insert(name.clone());
        Ok(vec![Decl::Typedef { name, ty, line }])
    }

    fn struct_body(&mut self) -> Result<Vec<(TypeExpr, String)>, CompileError> {
        self.expect(&Tok::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let base = self.base_type()?;
            loop {
                let (ty, name) = self.declarator(base.clone())?;
                fields.push((ty, name));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::Semi)?;
        }
        Ok(fields)
    }

    fn named_params(&mut self) -> Result<Vec<(TypeExpr, String)>, CompileError> {
        let mut params = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            return Ok(params);
        }
        if self.peek() == Some(&Tok::Void) && self.peek_at(1) == Some(&Tok::RParen) {
            self.bump();
            return Ok(params);
        }
        loop {
            let base = self.base_type()?;
            let (mut ty, name) = self.declarator(base)?;
            // Array parameters decay to pointers.
            if let TypeExpr::Array(elem, _) = ty {
                ty = TypeExpr::Ptr(elem);
            }
            params.push((ty, name));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(params)
    }

    fn initializer(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        if self.eat(&Tok::LBrace) {
            let mut items = Vec::new();
            if !self.eat(&Tok::RBrace) {
                loop {
                    items.push(self.initializer()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                    if self.peek() == Some(&Tok::RBrace) {
                        break; // trailing comma
                    }
                }
                self.expect(&Tok::RBrace)?;
            }
            return Ok(Expr {
                line,
                kind: ExprKind::InitList(items),
            });
        }
        self.assign_expr()
    }

    // ----- statements ------------------------------------------------------

    fn block(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(Stmt {
            line,
            kind: StmtKind::Block(stmts),
        })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::LBrace) => self.block(),
            Some(Tok::If) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch = if self.eat(&Tok::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt {
                    line,
                    kind: StmtKind::If {
                        cond,
                        then_branch,
                        else_branch,
                    },
                })
            }
            Some(Tok::While) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt {
                    line,
                    kind: StmtKind::While { cond, body },
                })
            }
            Some(Tok::Do) => {
                self.bump();
                let body = Box::new(self.stmt()?);
                self.expect(&Tok::While)?;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt {
                    line,
                    kind: StmtKind::DoWhile { body, cond },
                })
            }
            Some(Tok::For) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else if self.at_type() {
                    Some(Box::new(self.decl_stmt()?))
                } else {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Some(Box::new(Stmt {
                        line,
                        kind: StmtKind::Expr(e),
                    }))
                };
                let cond = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                let step = if self.peek() == Some(&Tok::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt {
                    line,
                    kind: StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                })
            }
            Some(Tok::Return) => {
                self.bump();
                let value = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt {
                    line,
                    kind: StmtKind::Return(value),
                })
            }
            Some(Tok::Break) => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt {
                    line,
                    kind: StmtKind::Break,
                })
            }
            Some(Tok::Continue) => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt {
                    line,
                    kind: StmtKind::Continue,
                })
            }
            Some(Tok::Switch) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let scrutinee = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::LBrace)?;
                let mut cases: Vec<(i64, Vec<Stmt>)> = Vec::new();
                let mut default: Option<Vec<Stmt>> = None;
                while !self.eat(&Tok::RBrace) {
                    if self.eat(&Tok::Case) {
                        let neg = self.eat(&Tok::Minus);
                        let v = match self.bump() {
                            Some(Tok::Int(v)) => {
                                if neg {
                                    -v
                                } else {
                                    v
                                }
                            }
                            other => {
                                return Err(self
                                    .err(format!("expected integer case label, found {other:?}")))
                            }
                        };
                        self.expect(&Tok::Colon)?;
                        cases.push((v, Vec::new()));
                    } else if self.eat(&Tok::Default) {
                        self.expect(&Tok::Colon)?;
                        if default.is_some() {
                            return Err(self.err("duplicate default label"));
                        }
                        default = Some(Vec::new());
                    } else if cases.is_empty() && default.is_none() {
                        return Err(self.err("statement before first case label"));
                    } else {
                        let stmt = self.stmt()?;
                        // Statements attach to the most recent label; C
                        // fallthrough is resolved during lowering. A
                        // default placed before later cases is not
                        // supported (the common layout is last).
                        if let Some(d) = default.as_mut() {
                            d.push(stmt);
                        } else {
                            cases.last_mut().expect("label exists").1.push(stmt);
                        }
                    }
                }
                Ok(Stmt {
                    line,
                    kind: StmtKind::Switch {
                        scrutinee,
                        cases,
                        default,
                    },
                })
            }
            Some(Tok::Asm) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let text = match self.bump() {
                    Some(Tok::Str(s)) => s,
                    other => {
                        return Err(self.err(format!("expected string in asm, found {other:?}")))
                    }
                };
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt {
                    line,
                    kind: StmtKind::Asm(text),
                })
            }
            Some(Tok::Semi) => {
                self.bump();
                Ok(Stmt {
                    line,
                    kind: StmtKind::Block(vec![]),
                })
            }
            _ if self.at_type() => self.decl_stmt(),
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt {
                    line,
                    kind: StmtKind::Expr(e),
                })
            }
        }
    }

    /// A local declaration statement (single or comma-separated names).
    fn decl_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let base = self.base_type()?;
        let mut stmts = Vec::new();
        loop {
            let (ty, name) = self.declarator(base.clone())?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.initializer()?)
            } else {
                None
            };
            stmts.push(Stmt {
                line,
                kind: StmtKind::Decl { ty, name, init },
            });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::Semi)?;
        if stmts.len() == 1 {
            Ok(stmts.pop().expect("one statement"))
        } else {
            Ok(Stmt {
                line,
                kind: StmtKind::Block(stmts),
            })
        }
    }

    // ----- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.ternary_expr()?;
        let line = lhs.line;
        let op = match self.peek() {
            Some(Tok::Assign) => None,
            Some(Tok::PlusAssign) => Some(BinaryOp::Add),
            Some(Tok::MinusAssign) => Some(BinaryOp::Sub),
            Some(Tok::StarAssign) => Some(BinaryOp::Mul),
            Some(Tok::SlashAssign) => Some(BinaryOp::Div),
            Some(Tok::PercentAssign) => Some(BinaryOp::Rem),
            Some(Tok::AmpAssign) => Some(BinaryOp::BitAnd),
            Some(Tok::PipeAssign) => Some(BinaryOp::BitOr),
            Some(Tok::CaretAssign) => Some(BinaryOp::BitXor),
            Some(Tok::ShlAssign) => Some(BinaryOp::Shl),
            Some(Tok::ShrAssign) => Some(BinaryOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assign_expr()?;
        Ok(Expr {
            line,
            kind: ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
        })
    }

    fn ternary_expr(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary_expr(0)?;
        if self.eat(&Tok::Question) {
            let line = cond.line;
            let a = self.assign_expr()?;
            self.expect(&Tok::Colon)?;
            let b = self.assign_expr()?;
            return Ok(Expr {
                line,
                kind: ExprKind::Ternary(Box::new(cond), Box::new(a), Box::new(b)),
            });
        }
        Ok(cond)
    }

    /// Precedence-climbing binary expression parser.
    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (prec, kind) = match self.peek() {
                Some(Tok::OrOr) => (1, None),
                Some(Tok::AndAnd) => (2, None),
                Some(Tok::Pipe) => (3, Some(BinaryOp::BitOr)),
                Some(Tok::Caret) => (4, Some(BinaryOp::BitXor)),
                Some(Tok::Amp) => (5, Some(BinaryOp::BitAnd)),
                Some(Tok::EqEq) => (6, Some(BinaryOp::Eq)),
                Some(Tok::NotEq) => (6, Some(BinaryOp::Ne)),
                Some(Tok::Lt) => (7, Some(BinaryOp::Lt)),
                Some(Tok::Le) => (7, Some(BinaryOp::Le)),
                Some(Tok::Gt) => (7, Some(BinaryOp::Gt)),
                Some(Tok::Ge) => (7, Some(BinaryOp::Ge)),
                Some(Tok::Shl) => (8, Some(BinaryOp::Shl)),
                Some(Tok::Shr) => (8, Some(BinaryOp::Shr)),
                Some(Tok::Plus) => (9, Some(BinaryOp::Add)),
                Some(Tok::Minus) => (9, Some(BinaryOp::Sub)),
                Some(Tok::Star) => (10, Some(BinaryOp::Mul)),
                Some(Tok::Slash) => (10, Some(BinaryOp::Div)),
                Some(Tok::Percent) => (10, Some(BinaryOp::Rem)),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let tok = self.bump().expect("operator");
            let rhs = self.binary_expr(prec + 1)?;
            let line = lhs.line;
            lhs = Expr {
                line,
                kind: match (tok, kind) {
                    (Tok::OrOr, _) => ExprKind::LogicalOr(Box::new(lhs), Box::new(rhs)),
                    (Tok::AndAnd, _) => ExprKind::LogicalAnd(Box::new(lhs), Box::new(rhs)),
                    (_, Some(op)) => ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                    _ => unreachable!(),
                },
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let op = match self.peek() {
            Some(Tok::Minus) => Some(UnaryOp::Neg),
            Some(Tok::Bang) => Some(UnaryOp::LogicalNot),
            Some(Tok::Tilde) => Some(UnaryOp::BitNot),
            Some(Tok::Star) => Some(UnaryOp::Deref),
            Some(Tok::Amp) => Some(UnaryOp::AddrOf),
            Some(Tok::PlusPlus) => Some(UnaryOp::PreInc),
            Some(Tok::MinusMinus) => Some(UnaryOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary_expr()?;
            return Ok(Expr {
                line,
                kind: ExprKind::Unary(op, Box::new(operand)),
            });
        }
        if self.peek() == Some(&Tok::Sizeof) {
            self.bump();
            self.expect(&Tok::LParen)?;
            let ty = self.abstract_type()?;
            self.expect(&Tok::RParen)?;
            return Ok(Expr {
                line,
                kind: ExprKind::SizeofType(ty),
            });
        }
        // Cast: `(` starts a type.
        if self.peek() == Some(&Tok::LParen) && self.token_starts_type(1) {
            self.bump();
            let ty = self.abstract_type()?;
            self.expect(&Tok::RParen)?;
            let operand = self.unary_expr()?;
            return Ok(Expr {
                line,
                kind: ExprKind::Cast(ty, Box::new(operand)),
            });
        }
        self.postfix_expr()
    }

    fn token_starts_type(&self, n: usize) -> bool {
        match self.peek_at(n) {
            Some(Tok::Void | Tok::Char | Tok::Short | Tok::Kint | Tok::Long | Tok::Double)
            | Some(Tok::Struct)
            | Some(Tok::Unsigned | Tok::Const) => true,
            Some(Tok::Ident(name)) => {
                // A typedef name only starts a cast if followed by `*` or `)`.
                self.typedefs.contains(name)
                    && matches!(self.peek_at(n + 1), Some(Tok::Star) | Some(Tok::RParen))
            }
            _ => false,
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary_expr()?;
        loop {
            let line = self.line();
            match self.peek() {
                Some(Tok::LParen) => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.assign_expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    if let ExprKind::Ident(name) = &e.kind {
                        if name == "syscall" {
                            e = Expr {
                                line: e.line,
                                kind: ExprKind::Syscall(args),
                            };
                            continue;
                        }
                    }
                    e = Expr {
                        line: e.line,
                        kind: ExprKind::Call {
                            callee: Box::new(e),
                            args,
                        },
                    };
                }
                Some(Tok::LBracket) => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    e = Expr {
                        line,
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    };
                }
                Some(Tok::Dot) => {
                    self.bump();
                    let field = self.ident()?;
                    e = Expr {
                        line,
                        kind: ExprKind::Member {
                            base: Box::new(e),
                            field,
                            arrow: false,
                        },
                    };
                }
                Some(Tok::Arrow) => {
                    self.bump();
                    let field = self.ident()?;
                    e = Expr {
                        line,
                        kind: ExprKind::Member {
                            base: Box::new(e),
                            field,
                            arrow: true,
                        },
                    };
                }
                Some(Tok::PlusPlus) => {
                    self.bump();
                    e = Expr {
                        line,
                        kind: ExprKind::Unary(UnaryOp::PostInc, Box::new(e)),
                    };
                }
                Some(Tok::MinusMinus) => {
                    self.bump();
                    e = Expr {
                        line,
                        kind: ExprKind::Unary(UnaryOp::PostDec, Box::new(e)),
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr {
                line,
                kind: ExprKind::Int(v),
            }),
            Some(Tok::Float(v)) => Ok(Expr {
                line,
                kind: ExprKind::Float(v),
            }),
            Some(Tok::Str(s)) => Ok(Expr {
                line,
                kind: ExprKind::Str(s),
            }),
            Some(Tok::Ident(name)) => Ok(Expr {
                line,
                kind: ExprKind::Ident(name),
            }),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_function() {
        let u = parse_src("int add(int a, int b) { return a + b; }");
        assert_eq!(u.decls.len(), 1);
        match &u.decls[0] {
            Decl::Function {
                name, params, body, ..
            } => {
                assert_eq!(name, "add");
                assert_eq!(params.len(), 2);
                assert!(body.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_struct_and_typedef() {
        let u = parse_src(
            "typedef struct { char from; char to; double score; } Move;\n\
             typedef double (*EVALFUNC)(int);\n\
             Move m_global;\n\
             EVALFUNC evals[7];",
        );
        assert!(
            matches!(&u.decls[0], Decl::Struct { name, fields, .. } if name == "Move" && fields.len() == 3)
        );
        assert!(
            matches!(&u.decls[1], Decl::Typedef { name, ty: TypeExpr::Struct(s), .. } if name == "Move" && s == "Move")
        );
        assert!(
            matches!(&u.decls[2], Decl::Typedef { name, ty: TypeExpr::FnPtr { .. }, .. } if name == "EVALFUNC")
        );
        assert!(matches!(&u.decls[3], Decl::Global { ty: TypeExpr::Named(n), .. } if n == "Move"));
        assert!(
            matches!(&u.decls[4], Decl::Global { ty: TypeExpr::Array(inner, 7), .. } if matches!(**inner, TypeExpr::Named(_)))
        );
    }

    #[test]
    fn parses_function_pointer_decl_and_array() {
        let u = parse_src("double (*eval)(int); double (*table[4])(int);");
        assert!(
            matches!(&u.decls[0], Decl::Global { ty: TypeExpr::FnPtr { .. }, name, .. } if name == "eval")
        );
        assert!(
            matches!(&u.decls[1], Decl::Global { ty: TypeExpr::Array(t, 4), .. } if matches!(**t, TypeExpr::FnPtr { .. }))
        );
    }

    #[test]
    fn parses_global_with_init_list() {
        let u = parse_src("int primes[4] = {2, 3, 5, 7};");
        match &u.decls[0] {
            Decl::Global { init: Some(e), .. } => {
                assert!(matches!(&e.kind, ExprKind::InitList(items) if items.len() == 4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        parse_src(
            "void f(int n) {\n\
               int i; int acc = 0;\n\
               for (i = 0; i < n; i++) { acc += i; if (acc > 10) break; else continue; }\n\
               while (n--) acc--;\n\
               do { acc = acc * 2; } while (acc < 100);\n\
             }",
        );
    }

    #[test]
    fn parses_casts_sizeof_ternary() {
        let u = parse_src(
            "typedef struct { int x; } P;\n\
             void f() { double d = (double)3; int n = sizeof(P); int m = n > 0 ? n : -n; P *p = (P*)malloc(sizeof(P)); }",
        );
        // typedef-struct desugars into a struct decl plus a typedef alias.
        assert_eq!(u.decls.len(), 3);
    }

    #[test]
    fn parses_member_access_chain() {
        parse_src(
            "struct Pt { int x; int y; };\n\
             int f(struct Pt *p) { return p->x + (*p).y; }",
        );
    }

    #[test]
    fn parses_asm_and_syscall() {
        let u = parse_src("void f() { asm(\"wfi\"); syscall(42, 1, 2); }");
        match &u.decls[0] {
            Decl::Function { body: Some(b), .. } => {
                let StmtKind::Block(stmts) = &b.kind else {
                    panic!()
                };
                assert!(matches!(&stmts[0].kind, StmtKind::Asm(t) if t == "wfi"));
                assert!(
                    matches!(&stmts[1].kind, StmtKind::Expr(e) if matches!(&e.kind, ExprKind::Syscall(a) if a.len() == 3))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_multi_declarators() {
        let u = parse_src("int a, b = 2, *c;");
        assert_eq!(u.decls.len(), 3);
    }

    #[test]
    fn parses_multidim_array() {
        let u = parse_src("int grid[3][4];");
        assert!(
            matches!(&u.decls[0], Decl::Global { ty: TypeExpr::Array(inner, 3), .. } if matches!(**inner, TypeExpr::Array(_, 4)))
        );
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse(lex("int main( {").unwrap()).is_err());
        assert!(parse(lex("int x = ;").unwrap()).is_err());
    }

    #[test]
    fn precedence() {
        let u = parse_src("int f() { return 1 + 2 * 3; }");
        let Decl::Function { body: Some(b), .. } = &u.decls[0] else {
            panic!()
        };
        let StmtKind::Block(stmts) = &b.kind else {
            panic!()
        };
        let StmtKind::Return(Some(e)) = &stmts[0].kind else {
            panic!()
        };
        // Must parse as 1 + (2 * 3).
        let ExprKind::Binary(BinaryOp::Add, _, rhs) = &e.kind else {
            panic!("{e:?}")
        };
        assert!(matches!(&rhs.kind, ExprKind::Binary(BinaryOp::Mul, _, _)));
    }
}
