//! Server-specific optimizations (§3.4).
//!
//! *Remote I/O*: hot regions are full of I/O; without remoting, the filter
//! would exclude most of the program (§3.4). The server partition gets its
//! well-known output (and prefetchable file) calls replaced with `r_*`
//! builtins that execute on the mobile device.
//!
//! *Function-pointer mapping*: back-ends choose function addresses, so a
//! pointer produced on the mobile device does not resolve on the server.
//! Every indirect call in the server partition is preceded by a
//! `fn_map_to_local` translation through the function map tables.

use offload_ir::{Callee, Inst, Module, ValueId};

/// Replace remotable I/O builtin calls with their remote versions.
/// Returns the number of call sites rewritten.
pub fn replace_remote_io(module: &mut Module) -> usize {
    let mut count = 0;
    for fi in 0..module.function_count() {
        let func = module.function_mut(offload_ir::FuncId(fi as u32));
        for block in &mut func.blocks {
            for inst in &mut block.insts {
                if let Inst::Call {
                    callee: Callee::Builtin(b),
                    ..
                } = inst
                {
                    if let Some(remote) = b.remote_replacement() {
                        *b = remote;
                        count += 1;
                    }
                }
            }
        }
    }
    count
}

/// Insert `fn_map_to_local` translations before every indirect call.
/// Returns the number of sites instrumented.
pub fn insert_fn_ptr_mapping(module: &mut Module) -> usize {
    let mut count = 0;
    for fi in 0..module.function_count() {
        let func = module.function_mut(offload_ir::FuncId(fi as u32));
        if func.is_declaration() {
            continue;
        }
        for bi in 0..func.blocks.len() {
            let mut i = 0usize;
            while i < func.blocks[bi].insts.len() {
                if let Inst::Call {
                    callee: Callee::Indirect(ptr),
                    ..
                } = &func.blocks[bi].insts[i]
                {
                    let ptr = *ptr;
                    let ty = func.value_type(ptr).clone();
                    let mapped = ValueId(func.value_types.len() as u32);
                    func.value_types.push(ty);
                    func.blocks[bi].insts.insert(
                        i,
                        Inst::Call {
                            dst: Some(mapped),
                            callee: Callee::Builtin(offload_ir::Builtin::FnMapToLocal),
                            args: vec![ptr],
                        },
                    );
                    if let Inst::Call {
                        callee: Callee::Indirect(p),
                        ..
                    } = &mut func.blocks[bi].insts[i + 1]
                    {
                        *p = mapped;
                    }
                    count += 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_ir::verify::verify_module;
    use offload_ir::Builtin;

    const SRC: &str = "
        double half(double x) { return x / 2.0; }
        double (*table[1])(double) = { half };
        int main() {
            double (*f)(double) = table[0];
            printf(\"%f\\n\", f(4.0));
            int fd = fopen(\"data\", \"r\");
            char b[4];
            fread(b, 1, 4, fd);
            fclose(fd);
            putchar(10);
            return 0;
        }";

    #[test]
    fn io_calls_become_remote() {
        let mut m = offload_minic::compile(SRC, "t").unwrap();
        let n = replace_remote_io(&mut m);
        assert_eq!(n, 5, "printf, fopen, fread, fclose, putchar");
        verify_module(&m).unwrap();
        let mut seen_remote = 0;
        for (_, f) in m.iter_functions() {
            for b in &f.blocks {
                for inst in &b.insts {
                    if let Inst::Call {
                        callee: Callee::Builtin(bi),
                        ..
                    } = inst
                    {
                        assert!(
                            !matches!(
                                bi,
                                Builtin::Printf
                                    | Builtin::FOpen
                                    | Builtin::FRead
                                    | Builtin::FClose
                                    | Builtin::Putchar
                            ),
                            "local I/O must be gone"
                        );
                        if bi.is_remote_io() {
                            seen_remote += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(seen_remote, 5);
    }

    #[test]
    fn indirect_calls_get_mapping() {
        let mut m = offload_minic::compile(SRC, "t").unwrap();
        let n = insert_fn_ptr_mapping(&mut m);
        assert_eq!(n, 1);
        verify_module(&m).unwrap();
        // The mapping call must directly precede the indirect call and
        // feed its callee.
        let main = m.function(m.entry.unwrap());
        let mut found = false;
        for block in &main.blocks {
            for w in block.insts.windows(2) {
                if let (
                    Inst::Call {
                        dst: Some(mapped),
                        callee: Callee::Builtin(Builtin::FnMapToLocal),
                        ..
                    },
                    Inst::Call {
                        callee: Callee::Indirect(p),
                        ..
                    },
                ) = (&w[0], &w[1])
                {
                    assert_eq!(p, mapped);
                    found = true;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn passes_are_idempotent_enough() {
        let mut m = offload_minic::compile(SRC, "t").unwrap();
        replace_remote_io(&mut m);
        assert_eq!(replace_remote_io(&mut m), 0, "second run finds nothing");
    }
}
