//! The typed event vocabulary of the offload stack.
//!
//! Every compiler phase and runtime operation is described by one
//! [`EventKind`] variant. Events are deliberately *flat and `Copy`*: no
//! strings, no heap — constructing one costs nothing, which is what keeps
//! the [`NoopCollector`](crate::NoopCollector) path allocation-free.
//!
//! Two timestamp lanes exist:
//!
//! * **compiler lane** — phases have no simulated clock, so compile spans
//!   are stamped with an ordinal sequence (see
//!   [`CompileClock`](crate::CompileClock));
//! * **runtime lane** — runtime events carry the *simulated* wall clock of
//!   the mobile power timeline, in seconds.

/// A compiler pipeline phase (Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilePhase {
    /// Hot-region profiling (§3.1).
    Profile,
    /// Static analysis: points-to, indirect-call resolution, and the
    /// provenance/portability lints (the `offload-analyze` layer). Runs
    /// before the filter, which consumes its results.
    Analyze,
    /// Machine-specific function filtering (§3.1).
    Filter,
    /// Equation-1 static estimation (§3.1).
    Estimate,
    /// Memory unification (§3.2).
    Unify,
    /// Mobile/server partitioning (§3.3).
    Partition,
    /// Server-specific optimization (§3.4).
    Optimize,
    /// Region certification: interprocedural mod/ref + page-footprint
    /// lowering on the final mobile module, emitting the per-task
    /// certificates the runtime session consumes.
    Certify,
}

impl CompilePhase {
    /// Stable lowercase name (used for metrics keys and trace names).
    pub fn name(self) -> &'static str {
        match self {
            CompilePhase::Profile => "profile",
            CompilePhase::Filter => "filter",
            CompilePhase::Analyze => "analyze",
            CompilePhase::Estimate => "estimate",
            CompilePhase::Unify => "unify",
            CompilePhase::Partition => "partition",
            CompilePhase::Optimize => "optimize",
            CompilePhase::Certify => "certify",
        }
    }

    /// All phases in pipeline order.
    pub const ALL: [CompilePhase; 8] = [
        CompilePhase::Profile,
        CompilePhase::Analyze,
        CompilePhase::Filter,
        CompilePhase::Estimate,
        CompilePhase::Unify,
        CompilePhase::Partition,
        CompilePhase::Optimize,
        CompilePhase::Certify,
    ];
}

/// A span (begin/end pair) in the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Span {
    /// One compiler phase.
    Compile(CompilePhase),
    /// One offload invocation (§4 life cycle), by task id.
    Offload {
        /// The plan's task id.
        task: u32,
    },
    /// Server-side execution of the offloaded task.
    ServerExec {
        /// The plan's task id.
        task: u32,
    },
}

impl Span {
    /// Trace-event name for this span.
    pub fn name(self) -> &'static str {
        match self {
            Span::Compile(p) => p.name(),
            Span::Offload { .. } => "offload",
            Span::ServerExec { .. } => "server_exec",
        }
    }
}

/// Transfer direction, mirrored from the net crate (obs sits below it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Mobile → server (the mobile transmits).
    Up,
    /// Server → mobile (the mobile receives).
    Down,
}

/// Which Fig. 7 cost lane a network frame is accounted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostLane {
    /// Memory-transfer communication time (§4).
    Comm,
    /// Remote I/O operation time (§3.4).
    RemoteIo,
    /// Speculatively streamed pages: the frame occupies the link
    /// concurrently with server compute, so its duration is *not* charged
    /// to any Fig. 7 stall lane. Only the residual arrival time of a
    /// fault on an in-flight page (emitted as
    /// [`EventKind::StreamHit`]) reaches `comm_s`.
    Stream,
}

/// The mobile power state, mirrored from the machine crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerLane {
    /// Screen-on idle.
    Idle,
    /// CPU busy computing locally.
    Compute,
    /// Radio up, waiting for the server.
    Waiting,
    /// Receiving data.
    Receive,
    /// Transmitting data.
    Transmit,
}

impl PowerLane {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            PowerLane::Idle => "idle",
            PowerLane::Compute => "compute",
            PowerLane::Waiting => "waiting",
            PowerLane::Receive => "receive",
            PowerLane::Transmit => "transmit",
        }
    }
}

/// Severity lane of a static-analysis diagnostic (mirrors
/// `offload_ir::diag::Severity`; obs sits below the ir crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagLane {
    /// Hard portability hazard: the construct cannot offload safely.
    Error,
    /// Suspicious but not disqualifying.
    Warning,
    /// Explanatory note (reason-chain links, verdict context).
    Info,
}

impl DiagLane {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DiagLane::Error => "error",
            DiagLane::Warning => "warning",
            DiagLane::Info => "info",
        }
    }
}

/// A remote I/O operation kind (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemoteOp {
    /// `printf` routed home.
    Printf,
    /// `putchar` routed home.
    Putchar,
    /// `fopen` on the mobile filesystem.
    FOpen,
    /// `fclose`.
    FClose,
    /// `fread` (the expensive remote-input round trip of §5.1).
    FRead,
    /// `fwrite`.
    FWrite,
}

impl RemoteOp {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            RemoteOp::Printf => "printf",
            RemoteOp::Putchar => "putchar",
            RemoteOp::FOpen => "fopen",
            RemoteOp::FClose => "fclose",
            RemoteOp::FRead => "fread",
            RemoteOp::FWrite => "fwrite",
        }
    }
}

/// Which runtime queue a [`EventKind::QueueDepth`] sample reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueLane {
    /// Pending bytes in the remote-I/O batch buffer (§4 batching) — the
    /// console output accumulated on the server awaiting the
    /// finalization flush.
    IoBatch,
    /// Speculatively streamed pages currently in flight on the link
    /// (the stream window's occupancy).
    StreamWindow,
    /// Sessions runnable on a worker of the event-driven engine
    /// (`runtime::evloop`) but not yet holding the CPU lane.
    RunQueue,
}

impl QueueLane {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            QueueLane::IoBatch => "io_batch",
            QueueLane::StreamWindow => "stream_window",
            QueueLane::RunQueue => "run_queue",
        }
    }
}

/// A shared resource lane of the event-driven engine
/// (`runtime::evloop`). A lane is *owned* while a dispatched event holds
/// it: occupancy is first-class state, not derived after the fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineLane {
    /// One worker's CPU: mobile-side compute of the session it granted.
    WorkerCpu,
    /// The uplink (mobile → server) of the shared radio.
    LinkUp,
    /// The downlink (server → mobile) of the shared radio.
    LinkDown,
    /// A server execution slot.
    Server,
}

impl EngineLane {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            EngineLane::WorkerCpu => "worker_cpu",
            EngineLane::LinkUp => "link_up",
            EngineLane::LinkDown => "link_down",
            EngineLane::Server => "server",
        }
    }

    /// All lanes, in dispatch-priority order.
    pub const ALL: [EngineLane; 4] = [
        EngineLane::WorkerCpu,
        EngineLane::LinkUp,
        EngineLane::LinkDown,
        EngineLane::Server,
    ];
}

/// What kind of payload a frame carried (mirrors `offload_net::MsgKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Offload request (§4 initialization).
    OffloadRequest,
    /// Prefetched pages sent with the request.
    Prefetch,
    /// A copy-on-demand page (§4).
    DemandPage,
    /// Dirty pages written back at finalization.
    DirtyPage,
    /// Return value + termination signal.
    Return,
    /// A remote I/O request or response.
    RemoteIo,
    /// Control traffic.
    Control,
    /// A speculatively streamed page (in-flight, overlapped with compute).
    StreamPage,
}

impl FrameKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FrameKind::OffloadRequest => "offload_request",
            FrameKind::Prefetch => "prefetch",
            FrameKind::DemandPage => "demand_page",
            FrameKind::DirtyPage => "dirty_page",
            FrameKind::Return => "return",
            FrameKind::RemoteIo => "remote_io",
            FrameKind::Control => "control",
            FrameKind::StreamPage => "stream_page",
        }
    }
}

/// One typed event. All variants are `Copy`; payloads are raw numbers in
/// the units the session accounts with (u64 cycles, f64 seconds), so a
/// consumer can reproduce the session's arithmetic *bit for bit* (see
/// `native_offloader::runtime::derive`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A span opens.
    Begin(Span),
    /// The innermost open span of this kind closes.
    End(Span),
    /// Mobile CPU executed `cycles` since the last accounting point.
    MobileCompute {
        /// Cycle delta on the mobile clock.
        cycles: u64,
    },
    /// The mobile waited while the server executed `cycles`.
    ServerCompute {
        /// Cycle delta on the server clock.
        cycles: u64,
    },
    /// One frame crossed the link.
    Frame {
        /// Payload kind.
        kind: FrameKind,
        /// Direction.
        dir: Dir,
        /// Uncompressed payload bytes.
        raw_bytes: u64,
        /// Wire bytes (after compression, before framing overhead).
        wire_bytes: u64,
        /// Transfer duration, simulated seconds.
        duration_s: f64,
        /// Which Fig. 7 lane this frame's time is charged to.
        lane: CostLane,
    },
    /// The runtime estimator evaluated a dispatch site.
    OffloadDecision {
        /// Task id.
        task: u32,
        /// `true` if the estimator said go.
        accepted: bool,
        /// Estimated gain, seconds (`Tg` of Equation 1).
        t_gain_s: f64,
        /// Estimated communication time, seconds.
        t_comm_s: f64,
        /// Bandwidth figure used, bits/second.
        bandwidth_bps: u64,
    },
    /// A copy-on-demand fault was serviced over the network.
    DemandFault {
        /// Faulting page number.
        page: u64,
        /// Pages pulled including the fault-ahead window.
        pages: u32,
        /// Configured fault-ahead window size.
        window: u32,
        /// Round-trip duration, seconds.
        duration_s: f64,
    },
    /// The prediction layer scheduled a page onto the stream (the page
    /// starts occupying the link concurrently with server compute).
    PrefetchPredict {
        /// Predicted page number.
        page: u64,
        /// Adaptive streaming window at prediction time.
        window: u32,
    },
    /// A demand fault landed on an in-flight streamed page: the mobile
    /// pays only the residual arrival time instead of a full round trip.
    StreamHit {
        /// Faulting page number.
        page: u64,
        /// Remaining transfer time the fault still had to wait, seconds.
        residual_s: f64,
        /// Estimated synchronous round-trip time avoided, seconds.
        saved_s: f64,
    },
    /// Streamed pages the server never touched before finalization
    /// (aggregate, emitted once per offload when non-zero).
    StreamWaste {
        /// Untouched streamed pages.
        pages: u64,
        /// Wire bytes those pages burned on the link.
        wire_bytes: u64,
    },
    /// Initialization prefetch shipped pages to the server.
    PrefetchBatch {
        /// Pages shipped.
        pages: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// Finalization wrote dirty pages back to the mobile memory.
    DirtyWriteBack {
        /// Pages written back.
        pages: u64,
        /// Uncompressed bytes.
        raw_bytes: u64,
        /// Wire bytes after compression.
        wire_bytes: u64,
    },
    /// Finalization shipped the dirty write-back as sub-page delta runs
    /// instead of full pages (emitted alongside [`EventKind::DirtyWriteBack`],
    /// which keeps the page count and the final raw/wire accounting).
    DeltaWriteBack {
        /// Pages covered by the delta blob.
        pages: u64,
        /// What the full-page message would have cost, uncompressed.
        full_bytes: u64,
        /// The delta message's uncompressed size.
        delta_bytes: u64,
    },
    /// Batched remote console output was flushed home.
    BatchFlush {
        /// Batched bytes.
        bytes: u64,
    },
    /// A payload was (de)compressed.
    Compression {
        /// Input bytes.
        raw_bytes: u64,
        /// Output bytes.
        wire_bytes: u64,
        /// Mobile CPU seconds spent decompressing (0 for compression,
        /// which the server pays for).
        decompress_s: f64,
    },
    /// A remote I/O operation executed on the server, routed home.
    RemoteIo {
        /// The operation.
        op: RemoteOp,
        /// Payload bytes moved (request + response).
        bytes: u64,
    },
    /// A function pointer was translated through the map tables (§3.4).
    FnPtrTranslate {
        /// Server cycles charged for the table walk.
        cycles: u64,
    },
    /// The static analyzer emitted one diagnostic (`offload-analyze`).
    AnalysisDiagnostic {
        /// Stable numeric diagnostic code (`OFF%03u`, e.g. 10 = OFF010).
        code: u16,
        /// Severity lane.
        severity: DiagLane,
    },
    /// Per-module offload verdict summary from the analysis-backed filter.
    AnalysisVerdicts {
        /// Functions judged offloadable.
        offloadable: u32,
        /// Functions rejected as machine-specific.
        machine_specific: u32,
        /// Indirect call sites whose target set the points-to analysis
        /// bounded to a finite set of functions.
        indirect_bounded: u32,
        /// Indirect call sites with unbounded (unknown) target sets.
        indirect_unbounded: u32,
    },
    /// A compiler-certified page footprint was activated for an offload:
    /// the runtime restricted its page-table snapshot (and seeded its
    /// predictors) from the certificate.
    Certificate {
        /// Offload task id.
        task: u32,
        /// Precisely certified may-read pages (globals segment).
        read_pages: u32,
        /// Precisely certified may-write pages (globals segment).
        write_pages: u32,
        /// Globals pages proven read-only for this region.
        readonly_pages: u32,
        /// `true` when both footprint sides resolved to exact page lists
        /// (no coarse segment ranges, no unknown top).
        precise: bool,
    },
    /// The dynamic soundness oracle finished cross-checking one offload:
    /// every observed fault landed inside the certified footprint and
    /// every dirty page inside the may-write set (violations trap the run
    /// instead of emitting this event).
    OracleCheck {
        /// Offload task id.
        task: u32,
        /// Demand faults checked against the footprint.
        faults_checked: u32,
        /// Dirty pages checked against the may-write set.
        dirty_checked: u32,
        /// Baseline snapshot clones skipped for pages the certificate
        /// proves can never enter the write-back diff.
        baseline_skipped: u32,
    },
    /// The mobile power state machine advanced.
    Power {
        /// State during the interval.
        state: PowerLane,
        /// Interval length, simulated seconds.
        duration_s: f64,
    },
    /// The event-driven engine granted a shared resource lane to a
    /// session at event-dispatch time (observe-only, emitted by the
    /// scheduler — never by the per-session engine, so session traces
    /// stay byte-identical across engines).
    LaneGrant {
        /// The lane now owned by the session.
        lane: EngineLane,
        /// Worker whose queue the session was dispatched from.
        worker: u32,
        /// Session id (submission index into the job list).
        session: u32,
        /// How long the grant holds the lane, simulated seconds.
        duration_s: f64,
    },
    /// A runtime queue changed size (observe-only: sampled after the
    /// mutation, it never feeds back into accounting). The time-series
    /// resampler (`series`) turns these step samples into fixed-Δt
    /// depth curves.
    QueueDepth {
        /// Which queue was sampled.
        queue: QueueLane,
        /// Depth after the mutation: bytes for [`QueueLane::IoBatch`],
        /// pages for [`QueueLane::StreamWindow`].
        depth: u64,
    },
}

/// An event with its timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Timestamp: simulated seconds on the runtime lane, ordinal
    /// micro-ticks on the compiler lane.
    pub ts_s: f64,
    /// The event.
    pub kind: EventKind,
}
