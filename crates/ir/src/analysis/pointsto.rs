//! Andersen-style points-to analysis.
//!
//! Flow-insensitive, field-insensitive, interprocedural: every virtual
//! register is mapped to the set of *abstract locations* it may point to
//! (stack slots, globals, heap allocation sites, function addresses), and
//! every abstract location to the set its contents may point to. The
//! solver iterates the transfer rules to a fixpoint — sets only grow, so
//! on the small modules this compiler partitions that converges in a
//! handful of rounds.
//!
//! The offload compiler uses two products of the analysis:
//!
//! * **indirect-call resolution** — for each `Callee::Indirect` site, the
//!   set of functions the pointer may name ([`CallTargets::Bounded`]) or
//!   the admission that it could be anything ([`CallTargets::Unbounded`]).
//!   This is what makes the §3.1 function filter *sound* for function
//!   pointers without giving up on them entirely: an indirect call whose
//!   target set is bounded and clean stays offloadable.
//! * **provenance facts** — whether an integer value carries a pointer's
//!   provenance, which the UVA portability lints (§3.2) use to tell a
//!   benign `ptrtoint` round-trip from a pointer smuggled through opaque
//!   arithmetic.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::inst::{BinOp, Builtin, Callee, CastKind, Inst, UnOp};
use crate::module::{BlockId, ConstValue, FuncId, GlobalId, GlobalInit, Module, ValueId};

/// An abstract memory location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbsLoc {
    /// A stack slot, named by the `Alloca` destination register.
    Stack(FuncId, ValueId),
    /// A global variable.
    Global(GlobalId),
    /// A heap allocation site, named by the allocating call's destination
    /// register (registers are single-assignment, so this is unique).
    Heap(FuncId, ValueId),
    /// The address of a function.
    Func(FuncId),
}

/// What a value may point to. `unknown` is the lattice top: the value may
/// point anywhere (externally fabricated, or provenance destroyed).
///
/// Locations are kept as a **sorted, deduplicated `Vec`**: joins on the hot
/// fixpoint path are a linear two-pointer merge (with an allocation-free
/// subset fast path), instead of per-element tree inserts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PtsSet {
    /// Known abstract locations, sorted ascending, no duplicates.
    locs: Vec<AbsLoc>,
    /// `true` if the value may additionally point anywhere.
    pub unknown: bool,
}

impl PtsSet {
    /// The empty (bottom) set: provably points nowhere.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The top set: may point anywhere.
    pub fn top() -> Self {
        PtsSet {
            locs: Vec::new(),
            unknown: true,
        }
    }

    /// The singleton set holding exactly `loc`.
    pub fn one(loc: AbsLoc) -> Self {
        PtsSet {
            locs: vec![loc],
            unknown: false,
        }
    }

    /// The known locations, sorted ascending.
    pub fn locs(&self) -> &[AbsLoc] {
        &self.locs
    }

    /// `true` if `loc` is among the known locations.
    pub fn contains(&self, loc: AbsLoc) -> bool {
        self.locs.binary_search(&loc).is_ok()
    }

    /// Add one location; returns `true` if the set grew.
    pub fn insert(&mut self, loc: AbsLoc) -> bool {
        match self.locs.binary_search(&loc) {
            Ok(_) => false,
            Err(i) => {
                self.locs.insert(i, loc);
                true
            }
        }
    }

    /// `true` if this set carries any pointer provenance at all.
    pub fn has_provenance(&self) -> bool {
        self.unknown || !self.locs.is_empty()
    }

    /// Merge `other` into `self`; returns `true` if `self` grew.
    pub fn merge(&mut self, other: &PtsSet) -> bool {
        let mut grew = false;
        if other.unknown && !self.unknown {
            self.unknown = true;
            grew = true;
        }
        if other.locs.is_empty() {
            return grew;
        }
        if self.locs.is_empty() {
            self.locs = other.locs.clone();
            return true;
        }
        // Allocation-free fast path: nothing new to add.
        if sorted_subset(&other.locs, &self.locs) {
            return grew;
        }
        let mut merged = Vec::with_capacity(self.locs.len() + other.locs.len());
        let (a, b) = (&self.locs, &other.locs);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.locs = merged;
        true
    }

    /// The function ids among the known locations.
    pub fn funcs(&self) -> impl Iterator<Item = FuncId> + '_ {
        self.locs.iter().filter_map(|l| match l {
            AbsLoc::Func(f) => Some(*f),
            _ => None,
        })
    }
}

/// `true` if sorted slice `needle` is a subset of sorted slice `hay`.
fn sorted_subset(needle: &[AbsLoc], hay: &[AbsLoc]) -> bool {
    let mut i = 0;
    'outer: for n in needle {
        while i < hay.len() {
            match hay[i].cmp(n) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// An instruction position within a module: function, block, index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallSite {
    /// Enclosing function.
    pub func: FuncId,
    /// Block within the function.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: u32,
}

/// Resolution of an indirect call site.
#[derive(Debug, Clone, PartialEq)]
pub enum CallTargets {
    /// The pointer provably names one of these functions.
    Bounded(BTreeSet<FuncId>),
    /// The pointer may name anything — the call must be treated as
    /// reaching every address-taken function *and* unknown code.
    Unbounded,
}

impl CallTargets {
    /// `true` for [`CallTargets::Bounded`].
    pub fn is_bounded(&self) -> bool {
        matches!(self, CallTargets::Bounded(_))
    }
}

/// The result of the analysis.
#[derive(Debug, Clone, Default)]
pub struct PointsTo {
    values: HashMap<(FuncId, ValueId), PtsSet>,
    contents: HashMap<AbsLoc, PtsSet>,
    ret_sets: HashMap<FuncId, PtsSet>,
    indirect: BTreeMap<CallSite, CallTargets>,
    /// Values stored through pointers the analysis lost track of: any
    /// load may observe them.
    leaked: PtsSet,
    /// Locations handed to unknown code, whose contents are clobbered.
    escaped: BTreeSet<AbsLoc>,
    rounds: u32,
}

impl PointsTo {
    /// Run the analysis over `module` to fixpoint.
    pub fn analyze(module: &Module) -> Self {
        let mut pt = PointsTo::default();
        pt.seed_globals(module);
        // Fixpoint: rerun the (monotone) transfer rules until nothing
        // grows. Bounded by the total number of (value, loc) pairs.
        loop {
            pt.rounds += 1;
            if !pt.round(module) {
                break;
            }
        }
        pt
    }

    /// What `(func, value)` may point to.
    pub fn value_set(&self, func: FuncId, value: ValueId) -> PtsSet {
        self.values.get(&(func, value)).cloned().unwrap_or_default()
    }

    /// What the contents of `loc` may point to.
    pub fn contents(&self, loc: AbsLoc) -> PtsSet {
        self.contents.get(&loc).cloned().unwrap_or_default()
    }

    /// Resolution of the indirect call at `site`, if that site exists.
    pub fn indirect_targets(&self, site: CallSite) -> Option<&CallTargets> {
        self.indirect.get(&site)
    }

    /// Every indirect call site with its resolution, in module order.
    pub fn indirect_sites(&self) -> impl Iterator<Item = (CallSite, &CallTargets)> {
        self.indirect.iter().map(|(s, t)| (*s, t))
    }

    /// Fixpoint rounds the solver took.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Locations handed to unknown code (their contents are clobbered).
    pub fn escaped_locs(&self) -> impl Iterator<Item = AbsLoc> + '_ {
        self.escaped.iter().copied()
    }

    /// Values stored through pointers the analysis lost track of: any
    /// load may observe them, any unknown store may have written them.
    pub fn leaked(&self) -> &PtsSet {
        &self.leaked
    }

    /// What `f` may return (empty if it returns no provenance).
    pub fn ret_set(&self, f: FuncId) -> PtsSet {
        self.ret_sets.get(&f).cloned().unwrap_or_default()
    }

    /// Every `(location, contents)` pair the analysis tracked.
    pub fn contents_iter(&self) -> impl Iterator<Item = (AbsLoc, &PtsSet)> {
        self.contents.iter().map(|(l, s)| (*l, s))
    }

    /// Every `((func, value), points-to set)` pair the analysis tracked.
    pub fn value_sets_iter(&self) -> impl Iterator<Item = ((FuncId, ValueId), &PtsSet)> {
        self.values.iter().map(|(k, s)| (*k, s))
    }

    fn seed_globals(&mut self, module: &Module) {
        for (gid, g) in module.iter_globals() {
            if let GlobalInit::Scalars(vals) = &g.init {
                let cell = self.contents.entry(AbsLoc::Global(gid)).or_default();
                for v in vals {
                    match v {
                        ConstValue::FuncAddr(f) => {
                            cell.insert(AbsLoc::Func(*f));
                        }
                        ConstValue::GlobalAddr(h) => {
                            cell.insert(AbsLoc::Global(*h));
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    fn val(&self, f: FuncId, v: ValueId) -> PtsSet {
        self.values.get(&(f, v)).cloned().unwrap_or_default()
    }

    fn merge_into_value(&mut self, f: FuncId, v: ValueId, set: &PtsSet) -> bool {
        self.values.entry((f, v)).or_default().merge(set)
    }

    fn merge_into_contents(&mut self, loc: AbsLoc, set: &PtsSet) -> bool {
        self.contents.entry(loc).or_default().merge(set)
    }

    /// Hand `set` to unknown code: its locations' contents become
    /// unknown, transitively, and anything reachable leaks.
    fn escape(&mut self, set: &PtsSet) -> bool {
        let mut changed = self.leaked.merge(set);
        let mut work: Vec<AbsLoc> = set.locs().to_vec();
        while let Some(loc) = work.pop() {
            if !self.escaped.insert(loc) {
                continue;
            }
            changed = true;
            let cell = self.contents.entry(loc).or_default();
            if !cell.unknown {
                cell.unknown = true;
            }
            let inner: Vec<AbsLoc> = cell.locs().to_vec();
            changed |= self.leaked.merge(&self.contents(loc));
            work.extend(inner);
        }
        changed
    }

    /// Bind arguments to a callee's parameters and its return set to the
    /// call's destination.
    fn bind_call(
        &mut self,
        module: &Module,
        caller: FuncId,
        target: FuncId,
        args: &[ValueId],
        dst: Option<ValueId>,
    ) -> bool {
        let mut changed = false;
        let callee = module.function(target);
        if callee.is_declaration() {
            // Unknown external: arguments escape, the result could be
            // anything (§3.1 treats the call as machine specific anyway;
            // the points-to layer just stays sound about it).
            for &a in args {
                let s = self.val(caller, a);
                changed |= self.escape(&s);
            }
            if let Some(d) = dst {
                changed |= self.merge_into_value(caller, d, &PtsSet::top());
            }
            return changed;
        }
        for (i, &a) in args.iter().enumerate().take(callee.params.len()) {
            let s = self.val(caller, a);
            changed |= self.merge_into_value(target, ValueId(i as u32), &s);
        }
        if let Some(d) = dst {
            let r = self.ret_sets.get(&target).cloned().unwrap_or_default();
            changed |= self.merge_into_value(caller, d, &r);
        }
        changed
    }

    fn builtin_call(
        &mut self,
        f: FuncId,
        b: Builtin,
        args: &[ValueId],
        dst: Option<ValueId>,
    ) -> bool {
        let mut changed = false;
        match b {
            Builtin::Malloc | Builtin::UMalloc => {
                if let Some(d) = dst {
                    let site = PtsSet::one(AbsLoc::Heap(f, d));
                    changed |= self.merge_into_value(f, d, &site);
                }
            }
            // memcpy(dst, src, ..): whatever src's cells hold may now
            // be held by dst's cells. Both return the dst pointer.
            Builtin::Memcpy | Builtin::Strcpy if args.len() >= 2 => {
                let dst_set = self.val(f, args[0]);
                let src_set = self.val(f, args[1]);
                let mut payload = PtsSet::empty();
                for &loc in src_set.locs() {
                    payload.merge(&self.contents(loc));
                }
                if src_set.unknown {
                    payload.unknown = true;
                    payload.merge(&self.leaked.clone());
                }
                for loc in dst_set.locs().to_vec() {
                    changed |= self.merge_into_contents(loc, &payload);
                }
                if dst_set.unknown {
                    changed |= self.leaked.merge(&payload);
                }
                if let Some(d) = dst {
                    changed |= self.merge_into_value(f, d, &dst_set);
                }
            }
            Builtin::Memset => {
                if let (Some(d), Some(&a0)) = (dst, args.first()) {
                    let s = self.val(f, a0);
                    changed |= self.merge_into_value(f, d, &s);
                }
            }
            Builtin::FnMapToLocal => {
                // Identity on provenance: the tables translate the
                // numeric value, not which function it names (§3.4).
                if let (Some(d), Some(&a0)) = (dst, args.first()) {
                    let s = self.val(f, a0);
                    changed |= self.merge_into_value(f, d, &s);
                }
            }
            // Every other builtin returns plain data and keeps no copy of
            // its pointer arguments.
            _ => {}
        }
        changed
    }

    fn transfer(&mut self, module: &Module, f: FuncId, site: CallSite, inst: &Inst) -> bool {
        let mut changed = false;
        match inst {
            Inst::Const { dst, value } => {
                let set = match value {
                    ConstValue::FuncAddr(t) => PtsSet::one(AbsLoc::Func(*t)),
                    ConstValue::GlobalAddr(g) => PtsSet::one(AbsLoc::Global(*g)),
                    _ => PtsSet::empty(),
                };
                if set.has_provenance() {
                    changed |= self.merge_into_value(f, *dst, &set);
                }
            }
            Inst::Alloca { dst, .. } => {
                let set = PtsSet::one(AbsLoc::Stack(f, *dst));
                changed |= self.merge_into_value(f, *dst, &set);
            }
            Inst::Load { dst, addr, .. } => {
                let addr_set = self.val(f, *addr);
                let mut loaded = PtsSet::empty();
                for &loc in addr_set.locs() {
                    loaded.merge(&self.contents(loc));
                }
                if addr_set.unknown {
                    // The address could alias anything, including cells
                    // written through pointers we lost track of.
                    loaded.unknown = true;
                }
                // Any load may observe values stored through unknown
                // pointers (they could have hit this cell).
                loaded.merge(&self.leaked.clone());
                if loaded.has_provenance() {
                    changed |= self.merge_into_value(f, *dst, &loaded);
                }
            }
            Inst::Store { addr, value, .. } => {
                let addr_set = self.val(f, *addr);
                let val_set = self.val(f, *value);
                if !val_set.has_provenance() {
                    return false;
                }
                for loc in addr_set.locs().to_vec() {
                    changed |= self.merge_into_contents(loc, &val_set);
                }
                if addr_set.unknown {
                    // The store may hit any cell: remember the payload so
                    // every load stays sound.
                    changed |= self.leaked.merge(&val_set);
                }
            }
            Inst::FieldAddr { dst, base, .. } | Inst::IndexAddr { dst, base, .. } => {
                let s = self.val(f, *base);
                changed |= self.merge_into_value(f, *dst, &s);
            }
            Inst::Cast { dst, kind, to, src } => {
                let s = self.val(f, *src);
                if !s.has_provenance() {
                    return false;
                }
                match kind {
                    CastKind::PtrCast
                    | CastKind::PtrZext
                    | CastKind::PtrToInt
                    | CastKind::IntToPtr
                    | CastKind::Zext
                    | CastKind::Sext => {
                        changed |= self.merge_into_value(f, *dst, &s);
                    }
                    CastKind::Trunc => {
                        // Truncating below the 32 bits every simulated
                        // address fits in destroys the provenance.
                        if to.int_bits().is_some_and(|b| b >= 32) {
                            changed |= self.merge_into_value(f, *dst, &s);
                        } else {
                            changed |= self.merge_into_value(f, *dst, &PtsSet::top());
                        }
                    }
                    CastKind::SiToF | CastKind::FToSi => {
                        // A pointer laundered through float arithmetic is
                        // beyond tracking.
                        changed |= self.merge_into_value(f, *dst, &PtsSet::top());
                    }
                }
            }
            Inst::Bin {
                dst, op, lhs, rhs, ..
            } => {
                let mut s = self.val(f, *lhs);
                s.merge(&self.val(f, *rhs));
                if !s.has_provenance() {
                    return false;
                }
                match op {
                    // Pointer ± offset keeps pointing into the same
                    // objects (field-insensitive).
                    BinOp::Add | BinOp::Sub => {
                        changed |= self.merge_into_value(f, *dst, &s);
                    }
                    // Anything else (masking, scaling, shifting) produces
                    // a value we can no longer resolve.
                    _ => {
                        changed |= self.merge_into_value(f, *dst, &PtsSet::top());
                    }
                }
            }
            Inst::Un {
                dst, op, operand, ..
            } => {
                let s = self.val(f, *operand);
                if !s.has_provenance() {
                    return false;
                }
                match op {
                    UnOp::ByteSwap => changed |= self.merge_into_value(f, *dst, &s),
                    UnOp::Neg | UnOp::Not => {
                        changed |= self.merge_into_value(f, *dst, &PtsSet::top());
                    }
                }
            }
            Inst::Cmp { .. } => {}
            Inst::Call { dst, callee, args } => match callee {
                Callee::Direct(t) => {
                    changed |= self.bind_call(module, f, *t, args, *dst);
                }
                Callee::Builtin(b) => {
                    changed |= self.builtin_call(f, *b, args, *dst);
                }
                Callee::Indirect(ptr) => {
                    let pset = self.val(f, *ptr);
                    if pset.unknown {
                        self.indirect.insert(site, CallTargets::Unbounded);
                        // The call could reach anything: arguments escape
                        // and every address-taken function may run with
                        // arbitrary parameters.
                        for &a in args {
                            let s = self.val(f, a);
                            changed |= self.escape(&s);
                        }
                        if let Some(d) = dst {
                            changed |= self.merge_into_value(f, *d, &PtsSet::top());
                        }
                        for (tid, tf) in module.iter_functions() {
                            if tf.is_declaration() {
                                continue;
                            }
                            let taken = self.values.values().any(|s| s.contains(AbsLoc::Func(tid)))
                                || self
                                    .contents
                                    .values()
                                    .any(|s| s.contains(AbsLoc::Func(tid)));
                            if taken {
                                for i in 0..tf.params.len() {
                                    changed |= self.merge_into_value(
                                        tid,
                                        ValueId(i as u32),
                                        &PtsSet::top(),
                                    );
                                }
                            }
                        }
                    } else {
                        let targets: BTreeSet<FuncId> = pset.funcs().collect();
                        for &t in &targets {
                            changed |= self.bind_call(module, f, t, args, *dst);
                        }
                        self.indirect.insert(site, CallTargets::Bounded(targets));
                    }
                }
            },
            Inst::Ret { value: Some(v) } => {
                let s = self.val(f, *v);
                if s.has_provenance() {
                    changed |= self.ret_sets.entry(f).or_default().merge(&s);
                }
            }
            Inst::Ret { value: None } | Inst::Br { .. } | Inst::CondBr { .. } => {}
            Inst::InlineAsm { .. } => {}
            Inst::Syscall { dst, args, .. } => {
                // The kernel may keep the arguments and return anything.
                for &a in args {
                    let s = self.val(f, a);
                    changed |= self.escape(&s);
                }
                changed |= self.merge_into_value(f, *dst, &PtsSet::top());
            }
        }
        changed
    }

    fn round(&mut self, module: &Module) -> bool {
        let mut changed = false;
        for (fid, func) in module.iter_functions() {
            for (bid, block) in func.iter_blocks() {
                for (i, inst) in block.insts.iter().enumerate() {
                    let site = CallSite {
                        func: fid,
                        block: bid,
                        inst: i as u32,
                    };
                    changed |= self.transfer(module, fid, site, inst);
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{FuncSig, Type};

    fn fn_ptr_ty() -> Type {
        Type::Func(Box::new(FuncSig {
            params: vec![],
            ret: Type::I32,
        }))
        .ptr_to()
    }

    #[test]
    fn direct_constant_function_pointer_is_bounded() {
        let mut m = Module::new("t");
        let clean = m.declare_function("clean", vec![], Type::I32);
        let caller = m.declare_function("caller", vec![], Type::I32);
        {
            let mut b = FunctionBuilder::new(&mut m, clean);
            let v = b.const_i32(1);
            b.ret(Some(v));
            b.finish();
        }
        {
            let mut b = FunctionBuilder::new(&mut m, caller);
            let fp = b.const_value(ConstValue::FuncAddr(clean));
            let r = b.call_indirect(fp, Type::I32, vec![]).unwrap();
            b.ret(Some(r));
            b.finish();
        }
        let pt = PointsTo::analyze(&m);
        let (site, targets) = pt.indirect_sites().next().expect("one indirect site");
        assert_eq!(site.func, caller);
        assert_eq!(targets, &CallTargets::Bounded(BTreeSet::from([clean])));
    }

    #[test]
    fn pointer_through_stack_slot_resolves() {
        let mut m = Module::new("t");
        let a = m.declare_function("a", vec![], Type::I32);
        let bf = m.declare_function("b", vec![], Type::I32);
        let caller = m.declare_function("caller", vec![Type::I32], Type::I32);
        for f in [a, bf] {
            let mut b = FunctionBuilder::new(&mut m, f);
            let v = b.const_i32(0);
            b.ret(Some(v));
            b.finish();
        }
        {
            // slot = alloca fn*; store a or b; call *load(slot)
            let mut b = FunctionBuilder::new(&mut m, caller);
            let slot = b.alloca(fn_ptr_ty(), 1);
            let fa = b.const_value(ConstValue::FuncAddr(a));
            let fb = b.const_value(ConstValue::FuncAddr(bf));
            b.store(fn_ptr_ty(), slot, fa);
            b.store(fn_ptr_ty(), slot, fb);
            let fp = b.load(fn_ptr_ty(), slot);
            let r = b.call_indirect(fp, Type::I32, vec![]).unwrap();
            b.ret(Some(r));
            b.finish();
        }
        let pt = PointsTo::analyze(&m);
        let (_, targets) = pt.indirect_sites().next().unwrap();
        assert_eq!(targets, &CallTargets::Bounded(BTreeSet::from([a, bf])));
    }

    #[test]
    fn global_table_resolves_to_initializer_members() {
        let mut m = Module::new("t");
        let a = m.declare_function("a", vec![], Type::I32);
        let caller = m.declare_function("caller", vec![Type::I32], Type::I32);
        let table = m.define_global(
            "table",
            fn_ptr_ty().array_of(1),
            GlobalInit::Scalars(vec![ConstValue::FuncAddr(a)]),
        );
        {
            let mut b = FunctionBuilder::new(&mut m, a);
            let v = b.const_i32(0);
            b.ret(Some(v));
            b.finish();
        }
        {
            let mut b = FunctionBuilder::new(&mut m, caller);
            let base = b.const_value(ConstValue::GlobalAddr(table));
            let idx = b.param(0);
            let slot = b.index_addr(base, fn_ptr_ty(), idx);
            let fp = b.load(fn_ptr_ty(), slot);
            let r = b.call_indirect(fp, Type::I32, vec![]).unwrap();
            b.ret(Some(r));
            b.finish();
        }
        let pt = PointsTo::analyze(&m);
        let (_, targets) = pt.indirect_sites().next().unwrap();
        assert_eq!(targets, &CallTargets::Bounded(BTreeSet::from([a])));
    }

    #[test]
    fn opaque_arithmetic_makes_target_unbounded() {
        let mut m = Module::new("t");
        let a = m.declare_function("a", vec![], Type::I32);
        let caller = m.declare_function("caller", vec![], Type::I32);
        {
            let mut b = FunctionBuilder::new(&mut m, a);
            let v = b.const_i32(0);
            b.ret(Some(v));
            b.finish();
        }
        {
            // fp = inttoptr(ptrtoint(a) ^ 1): provenance laundered.
            let mut b = FunctionBuilder::new(&mut m, caller);
            let fa = b.const_value(ConstValue::FuncAddr(a));
            let as_int = b.cast(CastKind::PtrToInt, Type::I64, fa);
            let one = b.const_i64(1);
            let munged = b.bin(BinOp::Xor, Type::I64, as_int, one);
            let fp = b.cast(CastKind::IntToPtr, fn_ptr_ty(), munged);
            let r = b.call_indirect(fp, Type::I32, vec![]).unwrap();
            b.ret(Some(r));
            b.finish();
        }
        let pt = PointsTo::analyze(&m);
        let (_, targets) = pt.indirect_sites().next().unwrap();
        assert_eq!(targets, &CallTargets::Unbounded);
    }

    #[test]
    fn ptrtoint_inttoptr_roundtrip_keeps_provenance() {
        let mut m = Module::new("t");
        let a = m.declare_function("a", vec![], Type::I32);
        let caller = m.declare_function("caller", vec![], Type::I32);
        {
            let mut b = FunctionBuilder::new(&mut m, a);
            let v = b.const_i32(0);
            b.ret(Some(v));
            b.finish();
        }
        {
            let mut b = FunctionBuilder::new(&mut m, caller);
            let fa = b.const_value(ConstValue::FuncAddr(a));
            let as_int = b.cast(CastKind::PtrToInt, Type::I64, fa);
            let fp = b.cast(CastKind::IntToPtr, fn_ptr_ty(), as_int);
            let r = b.call_indirect(fp, Type::I32, vec![]).unwrap();
            b.ret(Some(r));
            b.finish();
        }
        let pt = PointsTo::analyze(&m);
        let (_, targets) = pt.indirect_sites().next().unwrap();
        assert_eq!(targets, &CallTargets::Bounded(BTreeSet::from([a])));
    }

    #[test]
    fn pointer_passed_to_external_escapes() {
        let mut m = Module::new("t");
        let ext = m.declare_function("mystery", vec![fn_ptr_ty().ptr_to()], Type::Void);
        let a = m.declare_function("a", vec![], Type::I32);
        let caller = m.declare_function("caller", vec![], Type::I32);
        {
            let mut b = FunctionBuilder::new(&mut m, a);
            let v = b.const_i32(0);
            b.ret(Some(v));
            b.finish();
        }
        {
            // slot holds a; slot escapes to the external; the reloaded
            // pointer may have been overwritten with anything.
            let mut b = FunctionBuilder::new(&mut m, caller);
            let slot = b.alloca(fn_ptr_ty(), 1);
            let fa = b.const_value(ConstValue::FuncAddr(a));
            b.store(fn_ptr_ty(), slot, fa);
            b.call(ext, vec![slot]);
            let fp = b.load(fn_ptr_ty(), slot);
            let r = b.call_indirect(fp, Type::I32, vec![]).unwrap();
            b.ret(Some(r));
            b.finish();
        }
        let pt = PointsTo::analyze(&m);
        let (_, targets) = pt.indirect_sites().next().unwrap();
        assert_eq!(targets, &CallTargets::Unbounded);
    }

    #[test]
    fn fn_ptr_returned_through_helper_resolves() {
        let mut m = Module::new("t");
        let a = m.declare_function("a", vec![], Type::I32);
        let pick = m.declare_function("pick", vec![], fn_ptr_ty());
        let caller = m.declare_function("caller", vec![], Type::I32);
        {
            let mut b = FunctionBuilder::new(&mut m, a);
            let v = b.const_i32(0);
            b.ret(Some(v));
            b.finish();
        }
        {
            let mut b = FunctionBuilder::new(&mut m, pick);
            let fa = b.const_value(ConstValue::FuncAddr(a));
            b.ret(Some(fa));
            b.finish();
        }
        {
            let mut b = FunctionBuilder::new(&mut m, caller);
            let fp = b.call(pick, vec![]).unwrap();
            let r = b.call_indirect(fp, Type::I32, vec![]).unwrap();
            b.ret(Some(r));
            b.finish();
        }
        let pt = PointsTo::analyze(&m);
        let (_, targets) = pt.indirect_sites().next().unwrap();
        assert_eq!(targets, &CallTargets::Bounded(BTreeSet::from([a])));
        assert!(pt.rounds() >= 2, "return binding needs a second round");
    }

    #[test]
    fn value_sets_track_allocas_and_heap() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::Void);
        let (slot, heap);
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            slot = b.alloca(Type::I32, 1);
            let n = b.const_i64(8);
            heap = b
                .call_builtin(Builtin::Malloc, Type::I8.ptr_to(), vec![n])
                .unwrap();
            b.ret(None);
            b.finish();
        }
        let pt = PointsTo::analyze(&m);
        assert_eq!(pt.value_set(f, slot).locs(), &[AbsLoc::Stack(f, slot)]);
        assert_eq!(pt.value_set(f, heap).locs(), &[AbsLoc::Heap(f, heap)]);
        assert!(!pt.value_set(f, slot).unknown);
    }

    #[test]
    fn ptsset_sorted_merge_matches_set_semantics() {
        let g = |i| AbsLoc::Global(crate::module::GlobalId(i));
        let mut a = PtsSet::empty();
        for i in [5u32, 1, 3] {
            assert!(a.insert(g(i)));
        }
        assert!(!a.insert(g(3)), "duplicate insert must not grow");
        assert_eq!(a.locs(), &[g(1), g(3), g(5)], "locs stay sorted");

        let mut b = PtsSet::empty();
        b.insert(g(2));
        b.insert(g(3));
        assert!(a.merge(&b), "merge with a new element grows");
        assert_eq!(a.locs(), &[g(1), g(2), g(3), g(5)]);
        assert!(!a.merge(&b), "subset merge is a no-op");

        assert!(a.merge(&PtsSet::top()), "unknown propagates");
        assert!(a.unknown);
        assert!(!a.merge(&PtsSet::top()), "top is idempotent");
        assert!(a.contains(g(2)) && !a.contains(g(4)));
    }
}
