//! A recorded duplex channel between the mobile device and the server.
//!
//! Every transfer is appended to an event log with its simulated start
//! time, duration, direction and byte counts. The offload runtime replays
//! this log through the power model to produce the Fig. 8 power-over-time
//! traces, and the aggregated [`TrafficStats`] fill Table 4's
//! communication-traffic column.

use offload_obs::{Collector, CostLane, EventKind};

use crate::link::Link;

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Mobile → server (upload; the mobile transmits).
    MobileToServer,
    /// Server → mobile (download; the mobile receives).
    ServerToMobile,
}

impl Direction {
    /// The obs-crate mirror of this direction.
    pub fn obs_dir(self) -> offload_obs::Dir {
        match self {
            Direction::MobileToServer => offload_obs::Dir::Up,
            Direction::ServerToMobile => offload_obs::Dir::Down,
        }
    }
}

/// What a message carries (for stats breakdowns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Offload request: task id, stack pointer, page-table summary (§4
    /// initialization).
    OffloadRequest,
    /// Prefetched heap pages sent with the request.
    Prefetch,
    /// A copy-on-demand page (§4 offloading execution).
    DemandPage,
    /// Dirty pages written back at finalization (§4).
    DirtyPage,
    /// The offloaded task's return value and termination signal.
    Return,
    /// A remote I/O request or response (§3.4).
    RemoteIo,
    /// Control traffic (acks, dynamic-estimation probes).
    Control,
    /// A speculatively streamed page (fire-and-forget, overlapped with
    /// server compute).
    StreamPage,
}

impl MsgKind {
    /// The obs-crate mirror of this payload kind.
    pub fn frame_kind(self) -> offload_obs::FrameKind {
        match self {
            MsgKind::OffloadRequest => offload_obs::FrameKind::OffloadRequest,
            MsgKind::Prefetch => offload_obs::FrameKind::Prefetch,
            MsgKind::DemandPage => offload_obs::FrameKind::DemandPage,
            MsgKind::DirtyPage => offload_obs::FrameKind::DirtyPage,
            MsgKind::Return => offload_obs::FrameKind::Return,
            MsgKind::RemoteIo => offload_obs::FrameKind::RemoteIo,
            MsgKind::Control => offload_obs::FrameKind::Control,
            MsgKind::StreamPage => offload_obs::FrameKind::StreamPage,
        }
    }
}

/// One recorded transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferEvent {
    /// Simulated start time, seconds.
    pub start_s: f64,
    /// Duration, seconds.
    pub duration_s: f64,
    /// Direction.
    pub direction: Direction,
    /// Payload kind.
    pub kind: MsgKind,
    /// Uncompressed payload size.
    pub raw_bytes: u64,
    /// Bytes actually on the wire (after compression, plus framing).
    pub wire_bytes: u64,
}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrafficStats {
    /// Messages sent (after batching).
    pub messages: u64,
    /// Total uncompressed payload bytes.
    pub raw_bytes: u64,
    /// Total wire bytes.
    pub wire_bytes: u64,
    /// Total seconds spent transferring.
    pub transfer_seconds: f64,
}

impl TrafficStats {
    /// Compression ratio achieved (raw / wire), 1.0 when nothing was sent.
    pub fn compression_ratio(&self) -> f64 {
        if self.wire_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.wire_bytes as f64
        }
    }
}

/// The recorded channel.
#[derive(Debug, Clone)]
pub struct Channel {
    /// The link model in force.
    pub link: Link,
    events: Vec<TransferEvent>,
    up: TrafficStats,
    down: TrafficStats,
}

impl Channel {
    /// A channel over `link`.
    pub fn new(link: Link) -> Self {
        Channel {
            link,
            events: Vec::new(),
            up: TrafficStats::default(),
            down: TrafficStats::default(),
        }
    }

    /// Record a transfer starting at `start_s` carrying `raw_bytes` of
    /// payload that became `wire_payload_bytes` on the wire (equal unless
    /// compressed). Returns the transfer duration in seconds.
    pub fn transfer(
        &mut self,
        start_s: f64,
        direction: Direction,
        kind: MsgKind,
        raw_bytes: u64,
        wire_payload_bytes: u64,
    ) -> f64 {
        let duration = self.link.transfer_time(wire_payload_bytes);
        let wire_bytes = wire_payload_bytes + self.link.per_message_bytes;
        self.events.push(TransferEvent {
            start_s,
            duration_s: duration,
            direction,
            kind,
            raw_bytes,
            wire_bytes,
        });
        let stats = match direction {
            Direction::MobileToServer => &mut self.up,
            Direction::ServerToMobile => &mut self.down,
        };
        stats.messages += 1;
        stats.raw_bytes += raw_bytes;
        stats.wire_bytes += wire_bytes;
        stats.transfer_seconds += duration;
        duration
    }

    /// Like [`transfer`](Channel::transfer), additionally feeding the
    /// frame to an observability collector under the given Fig. 7 cost
    /// lane. This is the instrumented path the offload session uses; the
    /// plain `transfer` stays for untraced callers.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_traced(
        &mut self,
        obs: &mut dyn Collector,
        start_s: f64,
        direction: Direction,
        kind: MsgKind,
        raw_bytes: u64,
        wire_payload_bytes: u64,
        lane: CostLane,
    ) -> f64 {
        let duration = self.transfer(start_s, direction, kind, raw_bytes, wire_payload_bytes);
        obs.record(
            start_s,
            EventKind::Frame {
                kind: kind.frame_kind(),
                dir: direction.obs_dir(),
                raw_bytes,
                wire_bytes: wire_payload_bytes,
                duration_s: duration,
                lane,
            },
        );
        duration
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TransferEvent] {
        &self.events
    }

    /// Upload (mobile→server) statistics.
    pub fn upload_stats(&self) -> TrafficStats {
        self.up
    }

    /// Download (server→mobile) statistics.
    pub fn download_stats(&self) -> TrafficStats {
        self.down
    }

    /// Combined statistics.
    pub fn total_stats(&self) -> TrafficStats {
        TrafficStats {
            messages: self.up.messages + self.down.messages,
            raw_bytes: self.up.raw_bytes + self.down.raw_bytes,
            wire_bytes: self.up.wire_bytes + self.down.wire_bytes,
            transfer_seconds: self.up.transfer_seconds + self.down.transfer_seconds,
        }
    }

    /// Drop recorded history (between benchmark repetitions).
    pub fn reset(&mut self) {
        self.events.clear();
        self.up = TrafficStats::default();
        self.down = TrafficStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_accumulate_stats() {
        let mut ch = Channel::new(Link::wifi_802_11ac());
        let d1 = ch.transfer(
            0.0,
            Direction::MobileToServer,
            MsgKind::OffloadRequest,
            100,
            100,
        );
        let d2 = ch.transfer(d1, Direction::ServerToMobile, MsgKind::Return, 4096, 1000);
        assert!(d1 > 0.0 && d2 > 0.0);
        assert_eq!(ch.upload_stats().messages, 1);
        assert_eq!(ch.download_stats().messages, 1);
        assert_eq!(ch.download_stats().raw_bytes, 4096);
        assert!(ch.download_stats().wire_bytes < 4096);
        assert_eq!(ch.events().len(), 2);
        assert!(ch.total_stats().transfer_seconds > 0.0);
    }

    #[test]
    fn compression_ratio() {
        let mut ch = Channel::new(Link::ideal());
        ch.transfer(
            0.0,
            Direction::ServerToMobile,
            MsgKind::DirtyPage,
            8192,
            1024,
        );
        assert!(ch.download_stats().compression_ratio() > 7.0);
    }

    #[test]
    fn reset_clears_history() {
        let mut ch = Channel::new(Link::wifi_802_11n());
        ch.transfer(0.0, Direction::MobileToServer, MsgKind::Control, 1, 1);
        ch.reset();
        assert!(ch.events().is_empty());
        assert_eq!(ch.total_stats().messages, 0);
    }

    #[test]
    fn slow_link_produces_longer_events() {
        let mut slow = Channel::new(Link::wifi_802_11n());
        let mut fast = Channel::new(Link::wifi_802_11ac());
        let raw = 1_000_000;
        let ds = slow.transfer(0.0, Direction::MobileToServer, MsgKind::Prefetch, raw, raw);
        let df = fast.transfer(0.0, Direction::MobileToServer, MsgKind::Prefetch, raw, raw);
        assert!(ds > df);
    }
}
