//! The paper's running example, end to end: the chess game of §1–§3.
//!
//! Reproduces the Table 1 experience (movement computation is several
//! times faster on the desktop), prints the Table 3 estimation table the
//! compiler produced, and plays a short offloaded game.
//!
//! ```sh
//! cargo run --release --example chess_offload
//! ```

use native_offloader::{CompileConfig, Offloader, SessionConfig};
use offload_workloads::chess;

fn main() {
    // Compile with the Table 3 assumptions (BW = 80 Mbps).
    let app = Offloader::with_config(CompileConfig::table3())
        .compile_source(chess::SOURCE, "chess", &chess::input(9, 2))
        .expect("chess compiles");

    println!("== Table 3-style static estimation (profiling input: depth 9) ==");
    println!(
        "{:<22} {:>9} {:>6} {:>9} {:>9} {:>9} {:>9}  verdict",
        "candidate", "exec(ms)", "invo", "mem(KB)", "Tideal", "Tc", "Tg"
    );
    for row in &app.plan.estimates {
        let verdict = if row.machine_specific {
            "machine specific"
        } else if row.selected {
            "OFFLOAD"
        } else {
            "not profitable"
        };
        println!(
            "{:<22} {:>9.2} {:>6} {:>9.1} {:>9.2} {:>9.2} {:>9.2}  {}",
            row.name,
            row.exec_time_s * 1e3,
            row.invocations,
            row.mem_bytes as f64 / 1024.0,
            row.t_ideal_s * 1e3,
            row.t_comm_s * 1e3,
            row.t_gain_s * 1e3,
            verdict
        );
    }

    // Play a 3-move game at depth 10 locally and offloaded.
    let input = chess::input(10, 3);
    let local = app.run_local(&input).expect("local game");
    let off = app
        .run_offloaded(&input, &SessionConfig::fast_network())
        .expect("offloaded game");
    assert_eq!(local.console, off.console);

    println!("\n== A 3-move game at difficulty 10 ==");
    println!("AI scores:\n{}", local.console.trim());
    println!(
        "\nlocal (phone only): {:.1} ms;  offloaded (802.11ac): {:.1} ms  ->  {:.2}x speedup",
        local.total_seconds * 1e3,
        off.total_seconds * 1e3,
        off.speedup_vs(&local)
    );
    println!(
        "offloads: {} performed, {} fn-ptr translations (the evals table), {} bytes received",
        off.offloads_performed, off.fn_map_translations, off.download.raw_bytes
    );
}
