//! Media and recognition miniatures: `177.mesa`, `456.hmmer`,
//! `464.h264ref`, `482.sphinx3`.
//!
//! `177.mesa` shades every pixel through a function-pointer table (1169
//! fn-ptr uses in the paper). `456.hmmer` is the minimum-traffic program
//! of the suite (0.3 MB): its gene-sequence search "takes only the
//! initialized parameters as its inputs". `464.h264ref` reads its video
//! input remotely frame by frame and computes SAD metrics through function
//! pointers. `482.sphinx3` loads an acoustic model file remotely before a
//! long scoring loop.

use crate::{PaperRow, WorkloadSpec};
use native_offloader::WorkloadInput;

const MESA_SRC: &str = r#"
// 177.mesa miniature: software rasterizer with per-region shader
// function pointers.
typedef int (*SHADER)(int);

int fb[4096];
int seed;

int shade_flat(int p)   { return (p * 3) % 256; }
int shade_gouraud(int p){ return (p * 5 + p / 7) % 256; }
int shade_tex(int p)    { return (p * p % 253) + 1; }
int shade_fog(int p)    { return 255 - (p % 200); }

SHADER shaders[4] = { shade_flat, shade_gouraud, shade_tex, shade_fog };

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

long Render(int frames) {
    int f; int p; int s;
    long acc = 0;
    for (f = 0; f < frames; f++) {
        for (p = 0; p < 4096; p++) {
            SHADER sh = (shaders)[(p / 256 + f) % 4];
            int c = sh(p + f);
            int blend;
            for (blend = 0; blend < 6; blend++) c = (c * 7 + fb[p]) % 256;
            fb[p] = c;
            acc += c;
        }
    }
    return acc;
}

int main() {
    int frames; int i;
    scanf("%d", &frames);
    seed = 8;
    for (i = 0; i < 4096; i++) fb[i] = rnd() % 256;
    long a = Render(frames);
    printf("rendered %d\n", (int)(a % 1000000));
    return 0;
}
"#;

/// The `177.mesa` miniature.
pub fn mesa() -> WorkloadSpec {
    WorkloadSpec {
        name: "177.mesa",
        short: "mesa",
        description: "3-D software rasterizer with shader fn-ptrs (SPEC CPU2000)",
        source: MESA_SRC,
        profile_input: || WorkloadInput::from_stdin("14\n"),
        eval_input: || WorkloadInput::from_stdin("32\n"),
        expected_target: "Render",
        paper: PaperRow {
            loc_k: 42.2,
            exec_time_s: 120.2,
            offloaded_fns: (11, 1105),
            referenced_gv: (608, 627),
            fn_ptr_uses: 1169,
            target: "Render",
            coverage_pct: 99.02,
            invocations: 1,
            traffic_mb_per_inv: 20.3,
            refused_on_slow: false,
        },
    }
}

const HMMER_SRC: &str = r#"
// 456.hmmer miniature: profile-HMM Viterbi over a generated sequence;
// takes only scalar parameters as input (minimal traffic).
int dp[1024];
int model[256];
int seed;

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

long main_loop_serial(int seqs) {
    int s; int i; int j;
    long best = 0;
    for (s = 0; s < seqs; s++) {
        int sym = (s * 131 + 7) % 23;
        for (i = 0; i < 1024; i++) dp[i] = 0;
        for (j = 0; j < 48; j++) {
            for (i = 1; i < 1024; i++) {
                int m = dp[i - 1] + model[(i + sym) % 256];
                int d = dp[i] - 3;
                dp[i] = m;
                if (d > m) dp[i] = d;
            }
            sym = (sym * 31 + j) % 23;
        }
        if (dp[1023] > best) best = dp[1023];
    }
    return best;
}

int main() {
    int seqs; int i;
    scanf("%d", &seqs);
    seed = 21;
    for (i = 0; i < 256; i++) model[i] = rnd() % 11 - 3;
    long b = main_loop_serial(seqs);
    printf("best %d\n", (int)b);
    return 0;
}
"#;

/// The `456.hmmer` miniature.
pub fn hmmer() -> WorkloadSpec {
    WorkloadSpec {
        name: "456.hmmer",
        short: "hmmer",
        description: "gene-sequence profile-HMM search (SPEC CPU2006)",
        source: HMMER_SRC,
        profile_input: || WorkloadInput::from_stdin("30\n"),
        eval_input: || WorkloadInput::from_stdin("70\n"),
        expected_target: "main_loop_serial",
        paper: PaperRow {
            loc_k: 20.6,
            exec_time_s: 31.3,
            offloaded_fns: (36, 538),
            referenced_gv: (995, 1050),
            fn_ptr_uses: 36,
            target: "main_loop_serial",
            coverage_pct: 99.99,
            invocations: 1,
            traffic_mb_per_inv: 0.3,
            refused_on_slow: false,
        },
    }
}

const H264REF_SRC: &str = r#"
// 464.h264ref miniature: video encoder; reads raw frames remotely and
// computes SAD metrics through a function-pointer table.
typedef int (*SADF)(int, int);

char frame[4096];
char refframe[4096];
int seed;

int sad_16x16(int a, int b) { int d = a - b; if (d < 0) d = -d; return d; }
int sad_8x8(int a, int b)   { int d = a - b; if (d < 0) d = -d; return d / 2 + 1; }
int sad_4x4(int a, int b)   { int d = a - b; if (d < 0) d = -d; return d / 4 + 2; }
int sad_hadamard(int a, int b) { int d = a + b; return d % 97; }

SADF sad_fns[4] = { sad_16x16, sad_8x8, sad_4x4, sad_hadamard };

long encode_sequence(int frames) {
    int f; int i; int m;
    long bits = 0;
    int fd = fopen("video.yuv", "r");
    for (f = 0; f < frames; f++) {
        long got = fread(frame, 1, 4096, fd);
        if (got < 1) break;
        for (i = 0; i < 4096; i++) {
            int best = 1000000;
            int pass;
            for (pass = 0; pass < 3; pass++) {
                for (m = 0; m < 4; m++) {
                    SADF sad = (sad_fns)[m];
                    int cost = sad(frame[i], refframe[(i + pass) % 4096]);
                    if (cost < best) best = cost;
                }
            }
            bits += best;
            refframe[i] = frame[i];
        }
    }
    fclose(fd);
    return bits;
}

int main() {
    int frames; int i;
    scanf("%d", &frames);
    seed = 31;
    for (i = 0; i < 4096; i++) refframe[i] = 0;
    long b = encode_sequence(frames);
    printf("bits %d\n", (int)(b % 10000000));
    return 0;
}
"#;

fn video_file(frames: usize) -> Vec<u8> {
    (0..4096 * frames)
        .map(|i| {
            let x = (i as u32).wrapping_mul(2654435761);
            ((x >> 26) + (i as u32 / 64 % 32)) as u8
        })
        .collect()
}

/// The `464.h264ref` miniature.
pub fn h264ref() -> WorkloadSpec {
    WorkloadSpec {
        name: "464.h264ref",
        short: "h264ref",
        description: "H.264 video encoder with remote frame input (SPEC CPU2006)",
        source: H264REF_SRC,
        profile_input: || WorkloadInput::from_stdin("5\n").with_file("video.yuv", video_file(5)),
        eval_input: || WorkloadInput::from_stdin("12\n").with_file("video.yuv", video_file(12)),
        expected_target: "encode_sequence",
        paper: PaperRow {
            loc_k: 59.5,
            exec_time_s: 78.2,
            offloaded_fns: (48, 1333),
            referenced_gv: (2012, 2822),
            fn_ptr_uses: 457,
            target: "encode_sequence",
            coverage_pct: 99.79,
            invocations: 1,
            traffic_mb_per_inv: 17.1,
            refused_on_slow: false,
        },
    }
}

const SPHINX3_SRC: &str = r#"
// 482.sphinx3 miniature: speech decoding; loads the acoustic model
// remotely, then scores frames against Gaussian mixtures.
double model[8192];
double feats[64];
char modelraw[16384];
int seed;

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

double decode(int frames) {
    int f; int m; int d; int i;
    double score = 0.0;
    int fd = fopen("hmm.bin", "r");
    long got = fread(modelraw, 1, 16384, fd);
    fclose(fd);
    for (i = 0; i < 8192; i++) {
        int b = modelraw[i % 16384];
        if (b < 0) b = b + 256;
        model[i] = (double)b * 0.004;
    }
    for (f = 0; f < frames; f++) {
        for (i = 0; i < 64; i++) feats[i] = (double)((f * 31 + i) % 100) * 0.01;
        for (m = 0; m < 64; m++) {
            double dist = 0.0;
            for (d = 0; d < 64; d++) {
                double diff = feats[d] - model[(m * 64 + d) % 8192];
                dist += diff * diff;
            }
            score += 1.0 / (1.0 + dist);
        }
    }
    return score + (double)got * 0.0;
}

int main() {
    int frames;
    scanf("%d", &frames);
    seed = 41;
    double s = decode(frames);
    printf("decoded %.4f\n", s);
    return 0;
}
"#;

fn hmm_file() -> Vec<u8> {
    (0..16384u32)
        .map(|i| (i.wrapping_mul(40503) >> 22) as u8)
        .collect()
}

/// The `482.sphinx3` miniature.
pub fn sphinx3() -> WorkloadSpec {
    WorkloadSpec {
        name: "482.sphinx3",
        short: "sphinx3",
        description: "speech recognition with remote model input (SPEC CPU2006)",
        source: SPHINX3_SRC,
        profile_input: || WorkloadInput::from_stdin("60\n").with_file("hmm.bin", hmm_file()),
        eval_input: || WorkloadInput::from_stdin("140\n").with_file("hmm.bin", hmm_file()),
        expected_target: "decode",
        paper: PaperRow {
            loc_k: 13.1,
            exec_time_s: 375.2,
            offloaded_fns: (124, 370),
            referenced_gv: (1265, 1329),
            fn_ptr_uses: 14,
            target: "main_for.cond",
            coverage_pct: 98.39,
            invocations: 1,
            traffic_mb_per_inv: 34.0,
            refused_on_slow: false,
        },
    }
}
