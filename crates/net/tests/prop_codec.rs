//! Property tests for the LZ codec and the link model. The codec carries
//! every dirty page home (§4); a corrupting codec corrupts program state
//! invisibly, so roundtripping is tested against adversarial inputs.

use offload_net::{lz, Link};
use proptest::prelude::*;

proptest! {
    /// compress → decompress is the identity for arbitrary bytes.
    #[test]
    fn roundtrip_arbitrary(data in prop::collection::vec(any::<u8>(), 0..20_000)) {
        let packed = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&packed).unwrap(), data);
    }

    /// ...including highly repetitive inputs with long overlapping
    /// matches (the zero-page / struct-array shape of real traffic).
    #[test]
    fn roundtrip_repetitive(byte in any::<u8>(), run in 1usize..30_000, tail in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut data = vec![byte; run];
        data.extend(tail);
        let packed = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&packed).unwrap(), data);
    }

    /// ...and for page-structured data: repeated 4 KiB blocks compress to
    /// less than one block.
    #[test]
    fn repeated_pages_compress_hard(page in prop::collection::vec(any::<u8>(), 64..256), reps in 4usize..16) {
        let data: Vec<u8> = std::iter::repeat_n(page.clone(), reps).flatten().collect();
        let packed = lz::compress(&data);
        prop_assert!(packed.len() < page.len() * 2 + 64,
            "{} bytes compressed to {}", data.len(), packed.len());
        prop_assert_eq!(lz::decompress(&packed).unwrap(), data);
    }

    /// Truncating a valid stream never panics — it errors or yields a
    /// prefix-decodable result, but must not crash the runtime.
    #[test]
    fn truncation_never_panics(data in prop::collection::vec(any::<u8>(), 1..4_000), cut in 0usize..4_000) {
        let packed = lz::compress(&data);
        let cut = cut.min(packed.len());
        let _ = lz::decompress(&packed[..cut]); // Ok or Err, never panic
    }

    /// Transfer time is monotone in payload size and bounded below by the
    /// link latency.
    #[test]
    fn transfer_time_is_monotone(a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let link = Link::wifi_802_11n();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(link.transfer_time(lo) <= link.transfer_time(hi));
        prop_assert!(link.transfer_time(lo) >= link.latency_s);
    }

    /// A faster link never loses: 802.11ac ≤ 802.11n for every size.
    #[test]
    fn faster_link_dominates(bytes in 0u64..50_000_000) {
        prop_assert!(Link::wifi_802_11ac().transfer_time(bytes) <= Link::wifi_802_11n().transfer_time(bytes));
    }
}
