//! Plain-text rendering: aligned tables and ASCII bar charts, so every
//! figure regenerates on a terminal.

/// Render a table: header row + data rows, columns padded to fit.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            // Left-align the first column, right-align the rest.
            if i == 0 {
                out.push_str(&format!("{cell:<w$}", w = widths[i]));
            } else {
                out.push_str(&format!("{cell:>w$}", w = widths[i]));
            }
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    render_row(&header_cells, &widths, &mut out);
    let rule_len = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        render_row(row, &widths, &mut out);
    }
    out
}

/// Render a horizontal ASCII bar chart: one `(label, value)` per line,
/// scaled so the longest bar is `width` characters.
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    let max = items
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN, f64::max)
        .max(1e-12);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let n = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$}  {:<width$}  {value:.3}\n",
            "#".repeat(n.max(usize::from(*value > 0.0)))
        ));
    }
    out
}

/// Render a stacked horizontal bar: segments as (char, value).
pub fn stacked_bar(segments: &[(char, f64)], total_width: usize, scale_max: f64) -> String {
    let mut out = String::new();
    for (ch, value) in segments {
        let n = ((value / scale_max.max(1e-12)) * total_width as f64).round() as usize;
        out.push_str(&ch.to_string().repeat(n));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_aligns_columns() {
        let t = super::table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn bar_chart_scales_to_width() {
        let c = super::bar_chart(&[("a".into(), 10.0), ("b".into(), 5.0)], 20);
        let lines: Vec<&str> = c.lines().collect();
        assert!(lines[0].matches('#').count() == 20);
        assert!(lines[1].matches('#').count() == 10);
    }

    #[test]
    fn stacked_bar_concatenates() {
        let s = super::stacked_bar(&[('C', 5.0), ('N', 5.0)], 10, 10.0);
        assert_eq!(s, "CCCCCNNNNN");
    }
}
