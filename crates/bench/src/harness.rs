//! The evaluation matrix: each workload compiled once and executed under
//! the paper's four conditions (local, slow 802.11n, fast 802.11ac, ideal
//! link).

use native_offloader::{CompiledApp, RunReport, SessionConfig};
use offload_workloads::WorkloadSpec;

/// One workload's complete measurement set.
pub struct WorkloadRun {
    /// The workload.
    pub spec: WorkloadSpec,
    /// The compiled application (plan, stats).
    pub app: CompiledApp,
    /// Local (phone-only) baseline.
    pub local: RunReport,
    /// Offloaded over 802.11n.
    pub slow: RunReport,
    /// Offloaded over 802.11ac.
    pub fast: RunReport,
    /// Offloaded over the free link (Fig. 6 "Ideal").
    pub ideal: RunReport,
}

impl WorkloadRun {
    /// Compile and run `spec` under all four conditions.
    ///
    /// # Panics
    ///
    /// Panics if any stage fails — the suite is expected to be green.
    pub fn measure(spec: WorkloadSpec) -> Self {
        let app = spec
            .compile()
            .unwrap_or_else(|e| panic!("{}: compile: {e}", spec.name));
        let input = (spec.eval_input)();
        let local = app
            .run_local(&input)
            .unwrap_or_else(|e| panic!("{}: local: {e}", spec.name));
        let slow = app
            .run_offloaded(&input, &SessionConfig::slow_network())
            .unwrap_or_else(|e| panic!("{}: slow: {e}", spec.name));
        let fast = app
            .run_offloaded(&input, &SessionConfig::fast_network())
            .unwrap_or_else(|e| panic!("{}: fast: {e}", spec.name));
        let ideal = app
            .run_offloaded(&input, &SessionConfig::ideal_network())
            .unwrap_or_else(|e| panic!("{}: ideal: {e}", spec.name));
        for r in [&slow, &fast, &ideal] {
            assert_eq!(local.console, r.console, "{}: output drift", spec.name);
        }
        WorkloadRun {
            spec,
            app,
            local,
            slow,
            fast,
            ideal,
        }
    }
}

/// Measure the full 17-program suite.
pub fn measure_suite() -> Vec<WorkloadRun> {
    offload_workloads::all()
        .into_iter()
        .map(WorkloadRun::measure)
        .collect()
}
