//! Network sensitivity study: sweep link bandwidth and watch the dynamic
//! estimator flip from "offload" to "stay local" — the §3.1/§5.1 behaviour
//! that protects programs like 164.gzip from slow networks.
//!
//! ```sh
//! cargo run --release --example network_study
//! ```

use native_offloader::SessionConfig;
use offload_net::Link;
use offload_workloads::by_short_name;

fn main() {
    // gzip: the paper's most communication-bound program.
    let w = by_short_name("gzip").expect("gzip exists");
    let app = w.compile().expect("compiles");
    let input = (w.eval_input)();
    let local = app.run_local(&input).expect("local");

    println!("== {} under varying bandwidth ==", w.name);
    println!("local baseline: {:.2} ms\n", local.total_seconds * 1e3);
    println!(
        "{:>10}  {:>9}  {:>9}  {:>8}  decision",
        "bandwidth", "time(ms)", "vs local", "traffic"
    );
    for mbps in [10u64, 40, 80, 150, 300, 500, 1000] {
        let link = Link::custom(format!("{mbps} Mbps"), mbps * 1_000_000, 0.002);
        let cfg = SessionConfig::with_link(link);
        let r = app.run_offloaded(&input, &cfg).expect("run");
        assert_eq!(r.console, local.console);
        let decision = if r.offloads_performed > 0 {
            "OFFLOAD"
        } else {
            "stay local"
        };
        println!(
            "{:>7} Mbps  {:>9.2}  {:>8.2}x  {:>6.0} KB  {}",
            mbps,
            r.total_seconds * 1e3,
            local.total_seconds / r.total_seconds,
            (r.upload.raw_bytes + r.download.raw_bytes) as f64 / 1024.0,
            decision
        );
    }

    // Contrast with a compute-bound program that offloads everywhere.
    let w2 = by_short_name("hmmer").expect("hmmer exists");
    let app2 = w2.compile().expect("compiles");
    let input2 = (w2.eval_input)();
    let local2 = app2.run_local(&input2).expect("local");
    println!("\n== {} (compute-bound contrast) ==", w2.name);
    for mbps in [10u64, 80, 500] {
        let link = Link::custom(format!("{mbps} Mbps"), mbps * 1_000_000, 0.002);
        let r = app2
            .run_offloaded(&input2, &SessionConfig::with_link(link))
            .expect("run");
        println!(
            "{:>7} Mbps  {:>9.2} ms  {:>8.2}x  {}",
            mbps,
            r.total_seconds * 1e3,
            local2.total_seconds / r.total_seconds,
            if r.offloads_performed > 0 {
                "OFFLOAD"
            } else {
                "stay local"
            }
        );
    }
}
