//! A from-scratch LZ77-style codec with a time-cost model.
//!
//! §4: "the runtime also compresses the communicated data before sending it
//! ... since compression requires much more time than decompression, the
//! Native Offloader runtime applies the compression only to the
//! server-to-mobile communication" — so the codec's cost asymmetry is part
//! of the design, not an implementation detail. [`COMPRESS_NS_PER_BYTE`]
//! and [`DECOMPRESS_NS_PER_BYTE`] encode that asymmetry.
//!
//! Wire format, token by token:
//!
//! * `0x00, len:u8, bytes...` — literal run of `len` (1–255) bytes
//! * `0x01, off_lo, off_hi, len:u8` — copy `len` (4–255) bytes from
//!   `offset` (1–65535) bytes back
//!
//! # Match finder
//!
//! [`compress`] uses a fixed-size hash-chain finder: a `head` array maps a
//! 4-byte hash to its most recent position and a circular `prev` array
//! (one slot per window position) chains earlier occurrences. Both live in
//! thread-local scratch reused across calls — `head` entries are
//! epoch-stamped so reuse needs no memset, and chain walks terminate on
//! the first candidate that is not strictly older than the previous one,
//! which makes stale `prev` slots from earlier inputs harmless (every
//! candidate is byte-verified against the actual input before use).

use std::cell::RefCell;

/// Nanoseconds per input byte to compress (server-class core).
pub const COMPRESS_NS_PER_BYTE: f64 = 18.0;
/// Nanoseconds per output byte to decompress (mobile-class core).
pub const DECOMPRESS_NS_PER_BYTE: f64 = 3.5;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 255;
const MAX_OFFSET: usize = 65_535;

/// Match window: positions further back than this are unreachable on the
/// wire, so `prev` only needs one slot per window offset.
const WINDOW: usize = MAX_OFFSET + 1;
const WINDOW_MASK: usize = WINDOW - 1;
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Candidates examined per match attempt; bounds worst-case time on
/// pathological inputs without measurably hurting the ratio on real pages.
const CHAIN_DEPTH: usize = 16;

/// Reusable match-finder state. `head[h]` packs `(epoch << 32) | pos` so a
/// bump of `epoch` invalidates every entry at once; `prev[pos & MASK]`
/// holds the previous position with the same hash.
struct Scratch {
    head: Vec<u64>,
    prev: Vec<u32>,
    epoch: u64,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            head: vec![0u64; HASH_SIZE],
            prev: vec![0u32; WINDOW],
            epoch: 0,
        }
    }

    /// Start a fresh input: one increment invalidates all `head` entries.
    fn begin(&mut self) {
        self.epoch += 1;
        // The head tag packs the epoch into the top 32 bits; at 2^32 the
        // packed tag truncates and every entry would read as permanently
        // stale (no match is ever found again, silently changing the
        // output). Wrap by clearing the table and restarting at epoch 1,
        // which is indistinguishable from a fresh scratch.
        if self.epoch > u64::from(u32::MAX) {
            self.head.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn head_pos(&self, h: usize) -> Option<usize> {
        let e = self.head[h];
        if e >> 32 == self.epoch {
            Some((e & 0xFFFF_FFFF) as usize)
        } else {
            None
        }
    }

    #[inline]
    fn insert(&mut self, h: usize, pos: usize) {
        if let Some(old) = self.head_pos(h) {
            self.prev[pos & WINDOW_MASK] = old as u32;
        } else {
            // Chain terminator: points at itself, which fails the
            // strictly-older check on the next walk step.
            self.prev[pos & WINDOW_MASK] = pos as u32;
        }
        self.head[h] = (self.epoch << 32) | pos as u64;
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `data`.
pub fn compress(data: &[u8]) -> Vec<u8> {
    SCRATCH.with(|s| compress_with(&mut s.borrow_mut(), data))
}

fn compress_with(scratch: &mut Scratch, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    scratch.begin();

    let flush_literals = |out: &mut Vec<u8>, lits: &[u8]| {
        for chunk in lits.chunks(255) {
            out.push(0x00);
            out.push(chunk.len() as u8);
            out.extend_from_slice(chunk);
        }
    };

    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i < data.len() {
        let mut best: Option<(usize, usize)> = None; // (offset, len)
        if i + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            let mut cand = scratch.head_pos(h);
            let mut depth = 0usize;
            while let Some(pos) = cand {
                if pos >= i || i - pos > MAX_OFFSET {
                    break;
                }
                let mut len = 0usize;
                let max = MAX_MATCH.min(data.len() - i);
                while len < max && data[pos + len] == data[i + len] {
                    len += 1;
                }
                if len >= MIN_MATCH && best.is_none_or(|(_, bl)| len > bl) {
                    best = Some((i - pos, len));
                    if len == max {
                        break;
                    }
                }
                depth += 1;
                if depth >= CHAIN_DEPTH {
                    break;
                }
                let next = scratch.prev[pos & WINDOW_MASK] as usize;
                // Chains are strictly decreasing in position; anything
                // else is a terminator or a stale slot from an older
                // input — stop either way.
                if next >= pos {
                    break;
                }
                cand = Some(next);
            }
            scratch.insert(h, i);
        }
        match best {
            Some((offset, len)) => {
                flush_literals(&mut out, &data[lit_start..i]);
                out.push(0x01);
                out.push((offset & 0xFF) as u8);
                out.push((offset >> 8) as u8);
                out.push(len as u8);
                // Index every position the match covers so later matches
                // can start inside it.
                for p in i + 1..i + len {
                    if p + MIN_MATCH <= data.len() {
                        let h = hash4(data, p);
                        scratch.insert(h, p);
                    }
                }
                i += len;
                lit_start = i;
            }
            None => {
                i += 1;
            }
        }
    }
    flush_literals(&mut out, &data[lit_start..]);
    out
}

/// Decompression failure (corrupt stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Offset in the compressed stream where decoding failed.
    pub at: usize,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt LZ stream at byte {}", self.at)
    }
}

impl std::error::Error for DecodeError {}

/// Decompress a stream produced by [`compress`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or malformed input.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0usize;
    while i < data.len() {
        match data[i] {
            0x00 => {
                let len = *data.get(i + 1).ok_or(DecodeError { at: i })? as usize;
                let start = i + 2;
                let end = start + len;
                if end > data.len() || len == 0 {
                    return Err(DecodeError { at: i });
                }
                out.extend_from_slice(&data[start..end]);
                i = end;
            }
            0x01 => {
                if i + 4 > data.len() {
                    return Err(DecodeError { at: i });
                }
                let offset = data[i + 1] as usize | ((data[i + 2] as usize) << 8);
                let len = data[i + 3] as usize;
                if offset == 0 || offset > out.len() || len < MIN_MATCH {
                    return Err(DecodeError { at: i });
                }
                let start = out.len() - offset;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
                i += 4;
            }
            _ => return Err(DecodeError { at: i }),
        }
    }
    Ok(out)
}

/// Seconds to compress `bytes` input bytes (server-side cost).
pub fn compress_seconds(bytes: u64) -> f64 {
    bytes as f64 * COMPRESS_NS_PER_BYTE * 1e-9
}

/// Seconds to decompress to `bytes` output bytes (mobile-side cost).
pub fn decompress_seconds(bytes: u64) -> f64 {
    bytes as f64 * DECOMPRESS_NS_PER_BYTE * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_texty_data() {
        let data =
            b"the quick brown fox jumps over the lazy dog, the quick brown fox again".repeat(20);
        let c = compress(&data);
        assert!(
            c.len() < data.len(),
            "compressible data must shrink: {} vs {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_zero_page() {
        // Pages of zeroes dominate offload traffic; they must compress hard.
        let page = vec![0u8; 4096];
        let c = compress(&page);
        assert!(c.len() < 128, "zero page compressed to {} bytes", c.len());
        assert_eq!(decompress(&c).unwrap(), page);
    }

    #[test]
    fn roundtrip_incompressible_data() {
        // A pseudo-random byte soup: may expand slightly, must roundtrip.
        let mut x: u32 = 0x1234_5678;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() <= data.len() + data.len() / 128 + 16);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        assert_eq!(decompress(&compress(&[])).unwrap(), Vec::<u8>::new());
        assert_eq!(decompress(&compress(&[7])).unwrap(), vec![7]);
        assert_eq!(decompress(&compress(b"abc")).unwrap(), b"abc".to_vec());
    }

    #[test]
    fn corrupt_streams_error() {
        assert!(decompress(&[0x02]).is_err());
        assert!(decompress(&[0x00, 5, 1, 2]).is_err()); // truncated literals
        assert!(decompress(&[0x01, 1, 0, 10]).is_err()); // match before start
        assert!(decompress(&[0x01, 0, 0]).is_err()); // truncated match
    }

    #[test]
    fn cost_asymmetry_matches_the_papers_rationale() {
        // Compression must cost several times more than decompression —
        // that is why §4 only compresses server→mobile.
        assert!(compress_seconds(1_000_000) > 3.0 * decompress_seconds(1_000_000));
    }

    #[test]
    fn overlapping_match_copies() {
        // "aaaaaaa...": matches overlap their own output.
        let data = vec![b'a'; 1000];
        let c = compress(&data);
        assert!(c.len() < 40);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn long_repetitive_input_stays_bounded() {
        // Regression for the seed finder's unbounded position table: a
        // long, highly repetitive input (every 4-gram recurs thousands of
        // times) must compress in bounded time and memory. The hash-chain
        // finder caps work per position at CHAIN_DEPTH candidates, so this
        // 256 KiB input takes a few million byte-compares at worst.
        let data: Vec<u8> = (0..256 * 1024).map(|i| ((i / 7) % 13) as u8).collect();
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 16,
            "repetitive input must compress hard: {} vs {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn scratch_reuse_across_inputs_is_clean() {
        // Back-to-back calls share thread-local scratch; stale state from
        // one input must never corrupt the next (epoch stamping + byte
        // verification). Interleave dissimilar inputs and roundtrip each.
        let a = b"abcdefghijklmnopqrstuvwxyz".repeat(100);
        let b = vec![0xABu8; 5000];
        let mut x: u32 = 99;
        let r: Vec<u8> = (0..3000)
            .map(|_| {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (x >> 24) as u8
            })
            .collect();
        for _ in 0..3 {
            for input in [&a, &b, &r] {
                assert_eq!(&decompress(&compress(input)).unwrap(), input);
            }
        }
    }

    /// A deterministic mixed corpus: text runs, counters, zero gaps.
    fn corpus(seed: u32, len: usize) -> Vec<u8> {
        let mut x = seed;
        let mut data = Vec::with_capacity(len);
        while data.len() < len {
            data.extend_from_slice(b"session frame payload ");
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            data.extend_from_slice(&x.to_le_bytes());
            data.extend_from_slice(&[0u8; 37]);
        }
        data.truncate(len);
        data
    }

    #[test]
    fn compression_is_byte_identical_across_threads() {
        // Every worker thread owns its own SCRATCH; the farm's
        // byte-identity guarantee needs the output to be a pure function
        // of the input, independent of which thread compresses.
        let inputs: Vec<Vec<u8>> = vec![
            corpus(1, 20_000),
            corpus(2, 4096),
            vec![0u8; 8192],
            b"abcabcabc".repeat(500),
        ];
        let baseline: Vec<Vec<u8>> = inputs.iter().map(|d| compress(d)).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| inputs.iter().map(|d| compress(d)).collect::<Vec<Vec<u8>>>()))
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("worker"), baseline);
            }
        });
    }

    #[test]
    fn compression_is_byte_identical_after_scratch_reuse() {
        // A pooled worker compresses many dissimilar payloads back to
        // back on one scratch; every repeat must produce the first
        // output, byte for byte.
        let inputs = [corpus(7, 16_384), corpus(8, 100), vec![0xEEu8; 6000]];
        let first: Vec<Vec<u8>> = inputs.iter().map(|d| compress(d)).collect();
        for _ in 0..5 {
            for (d, want) in inputs.iter().zip(&first) {
                assert_eq!(&compress(d), want, "reused scratch changed the bytes");
            }
        }
    }

    #[test]
    fn epoch_tag_wraparound_is_byte_identical() {
        // At epoch 2^32 the packed head tag truncates; without the wrap
        // handling in `begin` the finder would never match again and the
        // output would silently degrade to pure literals.
        let data = corpus(3, 20_000);
        let want = compress_with(&mut Scratch::new(), &data);
        assert!(want.len() < data.len(), "corpus must actually compress");

        let mut s = Scratch::new();
        let _ = compress_with(&mut s, &data); // populate live entries
        s.epoch = u64::from(u32::MAX); // next begin() must wrap
        let wrapped = compress_with(&mut s, &data);
        assert_eq!(wrapped, want, "wraparound changed the bytes");
        assert_eq!(s.epoch, 1, "epoch restarts after the wrap");
        // The calls after the wrap behave like any other reuse.
        assert_eq!(compress_with(&mut s, &data), want);
        assert_eq!(decompress(&want).unwrap(), data);
    }

    #[test]
    fn matches_beyond_window_are_not_emitted() {
        // Two identical blocks separated by > MAX_OFFSET incompressible
        // bytes: the second block may only match within the window, and
        // the stream must still roundtrip.
        let block = b"0123456789abcdef".repeat(8); // 128 bytes
        let mut x: u32 = 7;
        let mut data = block.clone();
        data.extend((0..MAX_OFFSET + 100).map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            (x >> 24) as u8
        }));
        data.extend_from_slice(&block);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }
}
