//! The trace analyst: critical-path extraction and cross-run diffing.
//!
//! A recorded session trace says *what happened*; this module says *where
//! the time went*. [`critical_path`] walks the power-state intervals the
//! session emitted (the same stream `derive` replays) and attributes
//! every simulated second of makespan to exactly one of six lanes —
//! local compute, server compute, wire upload, wire download, stall, or
//! speculative stream — plus finer per-remote-op and per-page-range
//! tables. [`ProfileSummary`] freezes one (workload, link, mode) cell
//! into a serializable record, and [`diff_summaries`] compares two runs
//! with noise-tolerant thresholds to produce a regression verdict.
//!
//! ## Reconciliation discipline
//!
//! `PowerTimeline::total_seconds()` is a *sequential* running sum: every
//! pushed duration is added to a cursor in arrival order, and
//! `push_traced` emits exactly the positive durations it pushes. So
//! [`CriticalPath::makespan_s`], computed as the same sequential fold
//! over the `Power` events in stream order, reproduces the session's
//! reported makespan **bit for bit** — proving every interval was
//! attributed exactly once. The per-lane sums are partitions of that
//! fold; re-adding them cannot reproduce the identical bits (float
//! addition is not associative), so the coverage invariant is asserted
//! on the fold, and the lane partition on a tight relative tolerance.

use crate::event::{CostLane, EventKind, PowerLane, Record};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Pages per attribution bucket in the page-range table: 16 pages
/// (64 KiB at 4 KiB pages) — fine enough to localize a hot structure,
/// coarse enough that the table stays readable.
pub const PAGES_PER_RANGE: u64 = 16;

/// One critical-path lane: where a simulated second was spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lane {
    /// Mobile CPU computing locally.
    ComputeLocal,
    /// Waiting on the server's CPU (radio up, link quiet).
    ComputeServer,
    /// Mobile transmitting on the link.
    WireUpload,
    /// Mobile receiving from the link.
    WireDownload,
    /// Screen-on idle — time neither side was making progress.
    Stall,
    /// Residual arrival time of speculatively streamed pages (the link
    /// was busy, but overlapped with server compute).
    Stream,
}

impl Lane {
    /// All lanes, in report order.
    pub const ALL: [Lane; 6] = [
        Lane::ComputeLocal,
        Lane::ComputeServer,
        Lane::WireUpload,
        Lane::WireDownload,
        Lane::Stall,
        Lane::Stream,
    ];

    /// Stable lowercase name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Lane::ComputeLocal => "compute_local",
            Lane::ComputeServer => "compute_server",
            Lane::WireUpload => "wire_upload",
            Lane::WireDownload => "wire_download",
            Lane::Stall => "stall",
            Lane::Stream => "stream",
        }
    }

    /// Parse a stable name back to a lane.
    pub fn from_name(name: &str) -> Option<Lane> {
        Lane::ALL.into_iter().find(|l| l.name() == name)
    }
}

/// The critical-path attribution of one session trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Sequential fold of every attributed power interval — bit-identical
    /// to the session's reported `total_seconds`.
    pub makespan_s: f64,
    /// Seconds per lane, indexed by [`Lane::ALL`] order. A partition of
    /// `makespan_s` (sums back within float-reassociation noise).
    pub lanes: [f64; 6],
    /// Seconds of remote-I/O frame time per op name (`printf`, `fread`,
    /// ... plus `batch_flush` for the finalization flush frame).
    pub ops: BTreeMap<&'static str, f64>,
    /// Fault + stream-residual service seconds per
    /// [`PAGES_PER_RANGE`]-page range (keyed by range start page).
    pub page_ranges: BTreeMap<u64, f64>,
}

impl CriticalPath {
    /// Seconds attributed to `lane`.
    pub fn lane_s(&self, lane: Lane) -> f64 {
        self.lanes[Lane::ALL.iter().position(|l| *l == lane).unwrap()]
    }

    /// Sum of the lane partition (re-associated; approximately
    /// `makespan_s`, not bit-identical).
    pub fn lanes_total_s(&self) -> f64 {
        self.lanes.iter().sum()
    }
}

/// Walk a session trace and attribute every `Power` interval to a lane.
///
/// Attribution rules, in stream order:
/// * `Power{compute}` → [`Lane::ComputeLocal`]
/// * `Power{waiting}` → [`Lane::ComputeServer`]
/// * `Power{receive}` → [`Lane::WireDownload`]
/// * `Power{idle}` → [`Lane::Stall`]
/// * `Power{transmit}` → [`Lane::WireUpload`], **except** when the
///   immediately following event is a `StreamHit` whose `residual_s` has
///   the same bits as this interval's duration — the session emits
///   exactly that adjacent pair when a fault lands on an in-flight
///   streamed page, and the wait is overlap residue, not upload
///   ([`Lane::Stream`]).
///
/// The per-op table reads remote-I/O frame durations, attributed to the
/// most recent `RemoteIo` op (or to `batch_flush` after a `BatchFlush`
/// marker). The page-range table sums `DemandFault` service time and
/// `StreamHit` residuals per [`PAGES_PER_RANGE`]-page bucket.
pub fn critical_path(records: &[Record]) -> CriticalPath {
    let mut makespan_s = 0.0f64;
    let mut lanes = [0.0f64; 6];
    let mut ops: BTreeMap<&'static str, f64> = BTreeMap::new();
    let mut page_ranges: BTreeMap<u64, f64> = BTreeMap::new();
    let mut io_ctx: Option<&'static str> = None;

    let lane_idx = |lane: Lane| Lane::ALL.iter().position(|l| *l == lane).unwrap();

    for (i, r) in records.iter().enumerate() {
        match &r.kind {
            EventKind::Power { state, duration_s } => {
                // Same sequential fold as PowerTimeline::total_seconds.
                makespan_s += duration_s;
                let lane = match state {
                    PowerLane::Compute => Lane::ComputeLocal,
                    PowerLane::Waiting => Lane::ComputeServer,
                    PowerLane::Receive => Lane::WireDownload,
                    PowerLane::Idle => Lane::Stall,
                    PowerLane::Transmit => {
                        let next_is_matching_hit = matches!(
                            records.get(i + 1).map(|r2| &r2.kind),
                            Some(EventKind::StreamHit { residual_s, .. })
                                if residual_s.to_bits() == duration_s.to_bits()
                        );
                        if next_is_matching_hit {
                            Lane::Stream
                        } else {
                            Lane::WireUpload
                        }
                    }
                };
                lanes[lane_idx(lane)] += duration_s;
            }
            EventKind::RemoteIo { op, .. } => io_ctx = Some(op.name()),
            EventKind::BatchFlush { .. } => io_ctx = Some("batch_flush"),
            EventKind::Frame {
                lane: CostLane::RemoteIo,
                duration_s,
                ..
            } => {
                *ops.entry(io_ctx.unwrap_or("other")).or_insert(0.0) += duration_s;
            }
            EventKind::DemandFault {
                page, duration_s, ..
            } => {
                *page_ranges
                    .entry(page / PAGES_PER_RANGE * PAGES_PER_RANGE)
                    .or_insert(0.0) += duration_s;
            }
            EventKind::StreamHit {
                page, residual_s, ..
            } => {
                *page_ranges
                    .entry(page / PAGES_PER_RANGE * PAGES_PER_RANGE)
                    .or_insert(0.0) += residual_s;
            }
            _ => {}
        }
    }

    CriticalPath {
        makespan_s,
        lanes,
        ops,
        page_ranges,
    }
}

/// Render a ranked attribution table for one critical path.
pub fn render_critical_path(cp: &CriticalPath) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "critical path ({:.6} s makespan)", cp.makespan_s);
    let mut ranked: Vec<(Lane, f64)> = Lane::ALL.into_iter().map(|l| (l, cp.lane_s(l))).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let total = cp.makespan_s.max(f64::MIN_POSITIVE);
    for (lane, s) in ranked {
        let _ = writeln!(
            out,
            "  {:<16} {:>12.6} s  {:>5.1}%  {}",
            lane.name(),
            s,
            s / total * 100.0,
            bar(s / total, 24)
        );
    }
    if !cp.ops.is_empty() {
        let _ = writeln!(out, "  remote I/O by op:");
        let mut ops: Vec<(&str, f64)> = cp.ops.iter().map(|(k, v)| (*k, *v)).collect();
        ops.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (op, s) in ops {
            let _ = writeln!(out, "    {op:<14} {s:>12.6} s");
        }
    }
    if !cp.page_ranges.is_empty() {
        let mut ranges: Vec<(u64, f64)> = cp.page_ranges.iter().map(|(k, v)| (*k, *v)).collect();
        ranges.sort_by(|a, b| b.1.total_cmp(&a.1));
        let shown = ranges.len().min(8);
        let _ = writeln!(out, "  fault time by page range (top {shown}):");
        for (start, s) in ranges.into_iter().take(shown) {
            let _ = writeln!(
                out,
                "    pages {:>6}..{:<6} {:>12.6} s",
                start,
                start + PAGES_PER_RANGE - 1,
                s
            );
        }
    }
    out
}

fn bar(frac: f64, width: usize) -> String {
    let n = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < n { '#' } else { '.' });
    }
    s
}

/// A frozen, serializable profile of one (workload, link, mode) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSummary {
    /// Workload name (e.g. `chess`).
    pub workload: String,
    /// Link name (e.g. `802.11n`).
    pub link: String,
    /// Run mode (e.g. `offload`, `stream`).
    pub mode: String,
    /// Reported session makespan, seconds.
    pub makespan_s: f64,
    /// Seconds per lane, [`Lane::ALL`] order.
    pub lanes: [f64; 6],
    /// Remote-I/O seconds per op name, ascending by name.
    pub ops: Vec<(String, f64)>,
    /// Named distribution quantiles (e.g. `fault_p99_s`), ascending by
    /// name.
    pub quantiles: Vec<(String, f64)>,
}

impl ProfileSummary {
    /// Build a summary from a critical path plus identity + quantiles.
    pub fn from_critical_path(
        workload: &str,
        link: &str,
        mode: &str,
        cp: &CriticalPath,
        quantiles: Vec<(String, f64)>,
    ) -> Self {
        ProfileSummary {
            workload: workload.to_string(),
            link: link.to_string(),
            mode: mode.to_string(),
            makespan_s: cp.makespan_s,
            lanes: cp.lanes,
            ops: cp.ops.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
            quantiles,
        }
    }

    /// Seconds attributed to `lane`.
    pub fn lane_s(&self, lane: Lane) -> f64 {
        self.lanes[Lane::ALL.iter().position(|l| *l == lane).unwrap()]
    }

    /// The `(workload, link, mode)` identity key.
    pub fn key(&self) -> (String, String, String) {
        (self.workload.clone(), self.link.clone(), self.mode.clone())
    }
}

/// Serialize summaries as the `bench_pr6.v1` JSON document. Floats use
/// Rust's shortest-roundtrip `{}` formatting, so `parse_summaries` gives
/// back bit-identical values and a self-diff is exactly empty.
pub fn summaries_to_json(summaries: &[ProfileSummary]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"bench_pr6.v1\",\n  \"profiles\": [\n");
    for (i, s) in summaries.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"workload\": \"{}\",", s.workload);
        let _ = writeln!(out, "      \"link\": \"{}\",", s.link);
        let _ = writeln!(out, "      \"mode\": \"{}\",", s.mode);
        let _ = writeln!(out, "      \"makespan_s\": {},", s.makespan_s);
        out.push_str("      \"lanes\": {");
        for (j, lane) in Lane::ALL.into_iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", lane.name(), s.lanes[j]);
        }
        out.push_str("},\n      \"ops\": {");
        for (j, (op, v)) in s.ops.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{op}\": {v}");
        }
        out.push_str("},\n      \"quantiles\": {");
        for (j, (q, v)) in s.quantiles.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{q}\": {v}");
        }
        out.push_str("}\n");
        out.push_str(if i + 1 == summaries.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Read a `"key": "value"` string field after `from`.
fn scan_str(text: &str, from: usize, key: &str) -> Option<(String, usize)> {
    let pat = format!("\"{key}\": \"");
    let start = text[from..].find(&pat)? + from + pat.len();
    let end = text[start..].find('"')? + start;
    Some((text[start..end].to_string(), end))
}

/// Read a `"key": <number>` field after `from`.
fn scan_f64(text: &str, from: usize, key: &str) -> Option<(f64, usize)> {
    let pat = format!("\"{key}\": ");
    let start = text[from..].find(&pat)? + from + pat.len();
    let end = start
        + text[start..]
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(text.len() - start);
    text[start..end].parse().ok().map(|v| (v, end))
}

/// Parse the `"name": {"k": v, ...}` object starting after `from`.
fn scan_map(text: &str, from: usize, key: &str) -> Option<(Vec<(String, f64)>, usize)> {
    let pat = format!("\"{key}\": {{");
    let start = text[from..].find(&pat)? + from + pat.len();
    let end = text[start..].find('}')? + start;
    let body = &text[start..end];
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some(q0) = body[pos..].find('"') {
        let k0 = pos + q0 + 1;
        let k1 = body[k0..].find('"')? + k0;
        let name = body[k0..k1].to_string();
        let v0 = body[k1..].find(": ")? + k1 + 2;
        let v1 = v0
            + body[v0..]
                .find(|c: char| {
                    !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+')
                })
                .unwrap_or(body.len() - v0);
        out.push((name, body[v0..v1].parse().ok()?));
        pos = v1;
    }
    Some((out, end))
}

/// Parse a `bench_pr6.v1` document back into summaries. Tolerant of
/// whitespace produced by [`summaries_to_json`]; returns an empty vec on
/// schema mismatch.
pub fn parse_summaries(text: &str) -> Vec<ProfileSummary> {
    let mut out = Vec::new();
    if !text.contains("\"schema\": \"bench_pr6.v1\"") {
        return out;
    }
    let mut pos = 0;
    while let Some((workload, p)) = scan_str(text, pos, "workload") {
        let Some((link, p)) = scan_str(text, p, "link") else {
            break;
        };
        let Some((mode, p)) = scan_str(text, p, "mode") else {
            break;
        };
        let Some((makespan_s, p)) = scan_f64(text, p, "makespan_s") else {
            break;
        };
        let Some((lane_map, p)) = scan_map(text, p, "lanes") else {
            break;
        };
        let Some((ops, p)) = scan_map(text, p, "ops") else {
            break;
        };
        let Some((quantiles, p)) = scan_map(text, p, "quantiles") else {
            break;
        };
        let mut lanes = [0.0f64; 6];
        for (name, v) in &lane_map {
            if let Some(lane) = Lane::from_name(name) {
                lanes[Lane::ALL.iter().position(|l| l == &lane).unwrap()] = *v;
            }
        }
        out.push(ProfileSummary {
            workload,
            link,
            mode,
            makespan_s,
            lanes,
            ops,
            quantiles,
        });
        pos = p;
    }
    out
}

/// Noise thresholds for [`diff_summaries`]: a metric regresses only when
/// `new > base * (1 + rel) + abs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffTolerance {
    /// Relative slack (0.05 = 5%).
    pub rel: f64,
    /// Absolute slack, seconds.
    pub abs: f64,
}

impl Default for DiffTolerance {
    fn default() -> Self {
        DiffTolerance {
            rel: 0.05,
            abs: 1e-6,
        }
    }
}

/// One flagged regression from a cross-run diff.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Workload of the regressed cell.
    pub workload: String,
    /// Link of the regressed cell.
    pub link: String,
    /// Mode of the regressed cell.
    pub mode: String,
    /// Which metric grew (`makespan_s`, `lane:wire_upload`,
    /// `op:printf`, ...).
    pub metric: String,
    /// Baseline seconds.
    pub base_s: f64,
    /// New seconds.
    pub new_s: f64,
}

impl Regression {
    /// Relative growth, e.g. 0.12 for +12%.
    pub fn growth(&self) -> f64 {
        if self.base_s > 0.0 {
            self.new_s / self.base_s - 1.0
        } else {
            f64::INFINITY
        }
    }
}

/// Diff `new` against `base`, cell by cell. Cells present in only one
/// side are skipped (a diff judges shared coverage, not suite shape);
/// within a shared cell the makespan, every lane, and every shared op
/// are compared against `tol`.
pub fn diff_summaries(
    base: &[ProfileSummary],
    new: &[ProfileSummary],
    tol: DiffTolerance,
) -> Vec<Regression> {
    let mut out = Vec::new();
    let exceeded = |b: f64, n: f64| n > b * (1.0 + tol.rel) + tol.abs;
    for nb in new {
        let Some(bb) = base.iter().find(|b| b.key() == nb.key()) else {
            continue;
        };
        let mut push = |metric: &str, b: f64, n: f64| {
            if exceeded(b, n) {
                out.push(Regression {
                    workload: nb.workload.clone(),
                    link: nb.link.clone(),
                    mode: nb.mode.clone(),
                    metric: metric.to_string(),
                    base_s: b,
                    new_s: n,
                });
            }
        };
        push("makespan_s", bb.makespan_s, nb.makespan_s);
        for (i, lane) in Lane::ALL.into_iter().enumerate() {
            push(&format!("lane:{}", lane.name()), bb.lanes[i], nb.lanes[i]);
        }
        for (op, n) in &nb.ops {
            if let Some((_, b)) = bb.ops.iter().find(|(bop, _)| bop == op) {
                push(&format!("op:{op}"), *b, *n);
            }
        }
    }
    out
}

/// Render a human verdict for a diff result.
pub fn render_diff(regressions: &[Regression]) -> String {
    if regressions.is_empty() {
        return "profile diff: no regressions\n".to_string();
    }
    let mut out = format!("profile diff: {} regression(s)\n", regressions.len());
    let mut ranked = regressions.to_vec();
    ranked.sort_by(|a, b| b.growth().total_cmp(&a.growth()));
    for r in &ranked {
        let _ = writeln!(
            out,
            "  {} / {} / {}: {} grew {:+.1}% ({:.6} s -> {:.6} s)",
            r.workload,
            r.link,
            r.mode,
            r.metric,
            r.growth() * 100.0,
            r.base_s,
            r.new_s
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dir, FrameKind, RemoteOp};

    fn power(state: PowerLane, duration_s: f64) -> Record {
        Record {
            ts_s: 0.0,
            kind: EventKind::Power { state, duration_s },
        }
    }

    #[test]
    fn lanes_partition_the_sequential_fold() {
        let records = vec![
            power(PowerLane::Compute, 0.1),
            power(PowerLane::Transmit, 0.2),
            power(PowerLane::Waiting, 0.3),
            power(PowerLane::Receive, 0.4),
            power(PowerLane::Idle, 0.05),
        ];
        let cp = critical_path(&records);
        let expect = records.iter().fold(0.0f64, |acc, r| match r.kind {
            EventKind::Power { duration_s, .. } => acc + duration_s,
            _ => acc,
        });
        assert_eq!(cp.makespan_s.to_bits(), expect.to_bits());
        assert_eq!(cp.lane_s(Lane::ComputeLocal), 0.1);
        assert_eq!(cp.lane_s(Lane::WireUpload), 0.2);
        assert_eq!(cp.lane_s(Lane::ComputeServer), 0.3);
        assert_eq!(cp.lane_s(Lane::WireDownload), 0.4);
        assert_eq!(cp.lane_s(Lane::Stall), 0.05);
        assert_eq!(cp.lane_s(Lane::Stream), 0.0);
        assert!((cp.lanes_total_s() - cp.makespan_s).abs() < 1e-12);
    }

    #[test]
    fn transmit_followed_by_matching_stream_hit_is_stream_lane() {
        let residual = 0.007;
        let records = vec![
            power(PowerLane::Transmit, 0.2),
            power(PowerLane::Transmit, residual),
            Record {
                ts_s: 0.0,
                kind: EventKind::StreamHit {
                    page: 40,
                    residual_s: residual,
                    saved_s: 0.01,
                },
            },
        ];
        let cp = critical_path(&records);
        assert_eq!(cp.lane_s(Lane::Stream), residual);
        assert_eq!(cp.lane_s(Lane::WireUpload), 0.2);
        // The hit's residual also shows up in the page-range table.
        assert_eq!(cp.page_ranges[&32], residual);
    }

    #[test]
    fn remote_io_frames_attribute_to_the_preceding_op() {
        let records = vec![
            Record {
                ts_s: 0.0,
                kind: EventKind::RemoteIo {
                    op: RemoteOp::Printf,
                    bytes: 12,
                },
            },
            Record {
                ts_s: 0.0,
                kind: EventKind::Frame {
                    kind: FrameKind::RemoteIo,
                    dir: Dir::Down,
                    raw_bytes: 12,
                    wire_bytes: 12,
                    duration_s: 0.004,
                    lane: CostLane::RemoteIo,
                },
            },
            Record {
                ts_s: 0.0,
                kind: EventKind::BatchFlush { bytes: 100 },
            },
            Record {
                ts_s: 0.0,
                kind: EventKind::Frame {
                    kind: FrameKind::RemoteIo,
                    dir: Dir::Down,
                    raw_bytes: 100,
                    wire_bytes: 60,
                    duration_s: 0.009,
                    lane: CostLane::RemoteIo,
                },
            },
        ];
        let cp = critical_path(&records);
        assert_eq!(cp.ops["printf"], 0.004);
        assert_eq!(cp.ops["batch_flush"], 0.009);
        let txt = render_critical_path(&cp);
        assert!(txt.contains("printf"));
        assert!(txt.contains("batch_flush"));
    }

    fn sample_summary(makespan: f64, upload: f64) -> ProfileSummary {
        ProfileSummary {
            workload: "chess".into(),
            link: "802.11n".into(),
            mode: "offload".into(),
            makespan_s: makespan,
            lanes: [0.1, 0.2, upload, 0.05, 0.01, 0.003],
            ops: vec![("batch_flush".into(), 0.002), ("printf".into(), 0.009)],
            quantiles: vec![("fault_p99_s".into(), 0.0012)],
        }
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let summaries = vec![sample_summary(0.663, 0.3), {
            let mut s = sample_summary(1.25, 0.7);
            s.workload = "mm-int".into();
            s.link = "802.11ac".into();
            s
        }];
        let json = summaries_to_json(&summaries);
        let back = parse_summaries(&json);
        assert_eq!(back, summaries);
        // Wrong schema parses to nothing.
        assert!(parse_summaries(&json.replace("pr6", "pr9")).is_empty());
    }

    #[test]
    fn self_diff_reports_zero_regressions() {
        let summaries = vec![sample_summary(0.663, 0.3)];
        let json = summaries_to_json(&summaries);
        let back = parse_summaries(&json);
        let regs = diff_summaries(&summaries, &back, DiffTolerance::default());
        assert!(regs.is_empty(), "{regs:?}");
        assert!(render_diff(&regs).contains("no regressions"));
    }

    #[test]
    fn seeded_wire_regression_is_flagged() {
        let base = vec![sample_summary(0.663, 0.3)];
        let mut slower = base.clone();
        slower[0].lanes[2] *= 1.5; // wire_upload grew 50%
        slower[0].makespan_s += 0.15;
        let regs = diff_summaries(&base, &slower, DiffTolerance::default());
        assert!(
            regs.iter().any(|r| r.metric == "lane:wire_upload"),
            "{regs:?}"
        );
        assert!(regs.iter().any(|r| r.metric == "makespan_s"));
        let verdict = render_diff(&regs);
        assert!(verdict.contains("wire_upload"), "{verdict}");
        // Growth under tolerance stays quiet.
        let mut noisy = base.clone();
        noisy[0].lanes[2] *= 1.01;
        assert!(diff_summaries(&base, &noisy, DiffTolerance::default()).is_empty());
    }
}
