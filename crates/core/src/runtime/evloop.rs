//! The event-driven session core: thousands of interleaved offload
//! sessions multiplexed per worker over shared link/server resources.
//!
//! The blocking engine ([`session`](crate::runtime::session)) advances one
//! session at a time: while its offload waits on the server or the radio,
//! the worker thread is parked. The farm (PR 4) scales that shape only by
//! OS threads, and the suite-level schedule was *derived after the fact*
//! by a greedy list scheduler. This module replaces that with event-time
//! multiplexing:
//!
//! * every session is an explicit poll-driven state machine
//!   ([`SessionState`]) advanced by a **deterministic simulated event
//!   queue** — a binary heap of timestamped completion events with stable
//!   tie-breaking by session id;
//! * [`EngineLane`] occupancy is first-class: a lane (a worker's CPU, the
//!   shared uplink/downlink, a server slot) is busy *because an event
//!   holds it*, and contenders wait in FIFO queues;
//! * speculatively streamed pages are not a private window: each in-flight
//!   page becomes its own queue event occupying the uplink
//!   ([`PageBurst`]), overlapped with the owning session's spine;
//! * each worker owns a run queue; a session's mobile-compute segments
//!   execute on its home worker while its link/server segments release the
//!   CPU for other sessions — which is what lets one worker interleave
//!   thousands of concurrent sessions.
//!
//! # Two-phase execution and byte-identity
//!
//! Per-session *accounting* is untouched: the blocking engine remains the
//! timing oracle, and its trace is compiled into a [`SessionScript`] — the
//! session's deterministic sequence of lane occupancies. The event engine
//! then executes scripts against shared lanes. Because the per-session
//! engine still produces every `RunReport` and trace shard, serial, farm,
//! and event-loop runs are byte-identical per session by construction
//! ([`check_evloop_equivalence`] verifies it field by field); what the
//! event core adds is the *shared timeline* — completions, makespan, and
//! lane occupancy — that the list scheduler used to approximate.
//!
//! # Determinism rules
//!
//! 1. Events are ordered by `(time, id)` where time compares as the raw
//!    bits of a non-negative `f64` (bit order = numeric order) and `id` is
//!    the submission index (page jobs sort after all sessions).
//! 2. Lane waiters are served FIFO; a freed lane is granted at the
//!    *releasing* event's dispatch point, so same-timestamp releases grant
//!    in `(time, id)` event order.
//! 3. Admission is in submission order at `t = 0`.
//!
//! No other rule exists, so a permutation of submission *arrival* (the
//! order jobs were appended before ids were assigned) cannot change the
//! outcome — the determinism fuzz test permutes exactly that.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use offload_obs::{Collector, EngineLane, EventKind, QueueLane, Record};

use crate::runtime::farm::{reports_equal, run_farm, FarmJob, FarmResult, FARM_RING_CAPACITY};
use crate::runtime::session::run_offloaded_traced;
use crate::OffloadError;

/// The poll-driven life cycle of one multiplexed session.
///
/// States advance only at event dispatch; between events a session is
/// inert data. `Running`/`PageInFlight`/`BatchFlushing`/`ServerComputing`
/// mean the session *holds* the corresponding lane; `Admitted` and
/// `FaultPending` mean it sits in a FIFO behind one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// In its home worker's run queue, waiting for the CPU lane.
    Admitted,
    /// Holding its home worker's CPU lane (mobile-side compute).
    Running,
    /// Waiting in a link or server FIFO for the lane to free.
    FaultPending,
    /// Holding the uplink: a demand page or request is crossing.
    PageInFlight,
    /// Holding the downlink: batched output / write-back coming home.
    BatchFlushing,
    /// Holding a server slot: the remote partition executes.
    ServerComputing,
    /// Executing its final spine segment (write-back + return).
    Finalizing,
    /// Completed; owns nothing and will never be scheduled again.
    Done,
}

/// One spine segment: the session occupies `lane` for `duration_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// The lane this segment holds.
    pub lane: EngineLane,
    /// Occupancy, simulated seconds (≥ 0).
    pub duration_s: f64,
}

/// One speculatively streamed page, detached from the spine: when the
/// session *enters* spine segment `at_seg`, the page is enqueued on the
/// uplink as its own event and crosses concurrently with the spine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageBurst {
    /// Spine segment index whose start fires the enqueue.
    pub at_seg: u32,
    /// Uplink occupancy of the page frame, simulated seconds.
    pub duration_s: f64,
}

/// A session's compiled lane-occupancy program: the deterministic output
/// of the per-session timing engine, ready for event-time execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionScript {
    /// Serial spine, in order. Adjacent same-lane segments are coalesced.
    pub spine: Vec<Segment>,
    /// Detached streamed pages, sorted by `at_seg` (derivation order).
    pub pages: Vec<PageBurst>,
    /// Sum of spine durations (the session's solo makespan).
    pub total_s: f64,
}

impl SessionScript {
    /// Compile a script from one session's trace records.
    ///
    /// `Power` intervals become the spine (`Compute`/`Idle` → the home
    /// worker's CPU, `Transmit` → uplink, `Receive` → downlink, `Waiting`
    /// → a server slot); `Frame` records on the `Stream` cost lane become
    /// detached [`PageBurst`]s anchored at the spine position where the
    /// blocking engine pushed them.
    pub fn from_records(records: &[Record]) -> Self {
        use offload_obs::{CostLane, PowerLane};
        let mut s = SessionScript::default();
        for rec in records {
            match rec.kind {
                EventKind::Power { state, duration_s } => {
                    let lane = match state {
                        PowerLane::Compute | PowerLane::Idle => EngineLane::WorkerCpu,
                        PowerLane::Transmit => EngineLane::LinkUp,
                        PowerLane::Receive => EngineLane::LinkDown,
                        PowerLane::Waiting => EngineLane::Server,
                    };
                    s.total_s += duration_s;
                    if let Some(last) = s.spine.last_mut() {
                        if last.lane == lane {
                            last.duration_s += duration_s;
                            continue;
                        }
                    }
                    s.spine.push(Segment { lane, duration_s });
                }
                EventKind::Frame {
                    lane: CostLane::Stream,
                    duration_s,
                    ..
                } => {
                    s.pages.push(PageBurst {
                        at_seg: s.spine.len() as u32,
                        duration_s,
                    });
                }
                _ => {}
            }
        }
        s
    }

    /// The degenerate atomic script: one CPU segment for the whole run
    /// (what the farm's thread-per-session shape amounts to).
    pub fn atomic(total_s: f64) -> Self {
        SessionScript {
            spine: vec![Segment {
                lane: EngineLane::WorkerCpu,
                duration_s: total_s,
            }],
            pages: Vec::new(),
            total_s,
        }
    }
}

/// Event-engine parameters.
#[derive(Debug, Clone, Copy)]
pub struct EvloopConfig {
    /// Worker count: CPU lanes and run queues. Clamped to ≥ 1.
    pub workers: usize,
    /// Concurrent server execution slots shared by all sessions.
    /// Clamped to ≥ 1.
    pub server_slots: usize,
}

impl Default for EvloopConfig {
    fn default() -> Self {
        EvloopConfig {
            workers: 1,
            server_slots: 16,
        }
    }
}

/// The shared-timeline outcome of one multiplexed run.
#[derive(Debug, Clone, Default)]
pub struct EvloopSchedule {
    /// Per-session completion time, submission order, simulated seconds.
    pub completions: Vec<f64>,
    /// When the last session (not counting stray page frames) finished.
    pub makespan_s: f64,
    /// When the last event of any kind dispatched (≥ `makespan_s`;
    /// trailing streamed pages can still occupy the link after their
    /// owner finalized).
    pub horizon_s: f64,
    /// Events dispatched, total.
    pub events_dispatched: u64,
    /// Peak simultaneous pending events (heap length high-water mark).
    pub peak_pending: usize,
    /// Busy-seconds per lane kind, [`EngineLane::ALL`] order (all worker
    /// CPUs aggregated; server slots aggregated).
    pub lane_busy_s: [f64; 4],
    /// `true` if any pre-sized container grew during the run — the
    /// steady-state zero-allocation invariant failed. Always checked by
    /// a debug assertion too.
    pub containers_grew: bool,
}

/// A pending completion event: entry `id` finishes its current occupancy
/// at `at_bits`. Ordered by `(time, id)` — the tie-breaking rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Ev {
    at_bits: u64,
    id: u32,
}

#[inline]
fn bits(t: f64) -> u64 {
    debug_assert!(t >= 0.0 && t.is_finite(), "event time {t} out of domain");
    t.to_bits()
}

#[inline]
fn secs(b: u64) -> f64 {
    f64::from_bits(b)
}

/// The pending-event set. Every entry holds a lane slot, so its size is
/// bounded by the total slot count (`workers + server_slots + 2`) — at
/// that size a sorted vec beats a binary heap's branchy sift. Events are
/// packed `(time-bits, id)` keys (one branchless `u128` compare) kept
/// descending, so extraction is an O(1) `pop` from the back and
/// insertion a short binary search plus a tiny shift. Extraction order
/// is exactly the heap's: minimum `(time-bits, id)`, and since at most
/// one event per entry id is ever outstanding the minimum is unique, so
/// ordering is deterministic regardless of insertion order.
struct EvQueue {
    /// Packed keys, sorted descending: `at_bits << 32 | id`.
    evs: Vec<u128>,
}

impl EvQueue {
    fn with_capacity(cap: usize) -> Self {
        EvQueue {
            evs: Vec::with_capacity(cap),
        }
    }

    fn capacity(&self) -> usize {
        self.evs.capacity()
    }

    fn len(&self) -> usize {
        self.evs.len()
    }

    #[inline]
    fn push(&mut self, ev: Ev) {
        let k = (u128::from(ev.at_bits) << 32) | u128::from(ev.id);
        let i = self.evs.partition_point(|&e| e > k);
        self.evs.insert(i, k);
    }

    #[inline]
    fn pop_min(&mut self) -> Option<Ev> {
        self.evs.pop().map(|k| Ev {
            at_bits: (k >> 32) as u64,
            id: k as u32,
        })
    }
}

/// A lane resource: free slots plus a FIFO wait queue. The engine keeps
/// one per worker CPU (unit capacity; its waiters *are* that worker's
/// run queue), then the uplink, the downlink, and the server slot pool —
/// so request/release are a single indexed, match-free path for every
/// lane kind.
struct LaneRes {
    free_slots: usize,
    waiters: VecDeque<u32>,
}

/// Lane *kind* (index into [`EngineLane::ALL`] / `lane_busy_s`) of a
/// lane array index: `0..w` are worker CPUs, then uplink/downlink/server.
#[inline]
fn kind_of(idx: usize, w: usize) -> usize {
    if idx < w {
        0
    } else {
        idx - w + 1
    }
}

/// Lane kind → the state a session is in while *holding* that lane.
const HOLD_STATE: [SessionState; 4] = [
    SessionState::Running,
    SessionState::PageInFlight,
    SessionState::BatchFlushing,
    SessionState::ServerComputing,
];

/// The hot per-session record: everything the dispatch loop touches on
/// every event, packed together so one event costs one cache line of
/// session state instead of six scattered array reads. Page details stay
/// in the engine's cold tables — `pages_len` is here only so the
/// zero-page common case never touches them.
struct Sess<'a> {
    /// The session's spine, flattened out of the script table.
    spine: &'a [Segment],
    /// Current spine segment index.
    seg: u32,
    /// Home worker (`s % workers`), precomputed — a table read beats a
    /// division on the per-event path.
    home: u32,
    /// Next detached page to fire (index into the cold page table).
    page_cursor: u32,
    /// Total detached pages of this session.
    pages_len: u32,
    /// Poll-driven life-cycle state.
    state: SessionState,
}

/// The multiplexer. All containers are sized at admission; dispatching an
/// event allocates nothing.
struct Engine<'a> {
    /// Per session: the hot record (see [`Sess`]).
    sess: Vec<Sess<'a>>,
    /// Per session: detached pages (cold — guarded by `Sess::pages_len`).
    pages_of: Vec<&'a [PageBurst]>,
    n: usize,
    /// Worker count: `lanes[0..w]` are the per-worker CPUs.
    w: usize,
    /// All lanes, uniformly: `w` CPUs, uplink, downlink, server pool.
    lanes: Vec<LaneRes>,
    /// Flattened detached pages: `page_base[s] + k` is the global id of
    /// session `s`'s k-th page; ids start at `n`.
    page_base: Vec<u32>,
    page_dur: Vec<f64>,
    heap: EvQueue,
    sched: EvloopSchedule,
}

impl<'a> Engine<'a> {
    fn home(&self, session: u32) -> u32 {
        self.sess[session as usize].home
    }

    /// Array index of the lane `session`'s segment occupies. Relies on
    /// [`EngineLane`]'s declaration order matching `EngineLane::ALL`.
    #[inline(always)]
    fn lane_idx(&self, lane: EngineLane, session: u32) -> usize {
        let kind = lane as usize;
        if kind == 0 {
            self.sess[session as usize].home as usize
        } else {
            self.w + kind - 1
        }
    }

    fn owner(&self, id: u32) -> u32 {
        if (id as usize) < self.n {
            id
        } else {
            // Binary search the page-base table: owner of page id.
            let p = id - self.n as u32;
            match self.page_base.binary_search(&p) {
                Ok(mut i) => {
                    // Equal bases mean zero-page sessions; take the last.
                    while i + 1 < self.page_base.len() && self.page_base[i + 1] == p {
                        i += 1;
                    }
                    i as u32
                }
                Err(i) => (i - 1) as u32,
            }
        }
    }

    fn push_ev(&mut self, at_bits: u64, id: u32) {
        self.heap.push(Ev { at_bits, id });
        self.sched.peak_pending = self.sched.peak_pending.max(self.heap.len());
    }

    /// Grant lane `idx` to entry `id` at `now`: occupy it for the
    /// entry's current duration, emit the occupancy event, schedule
    /// completion.
    #[inline(always)]
    fn grant<C: Collector>(&mut self, obs: &mut C, idx: usize, id: u32, now: f64) {
        let kind = kind_of(idx, self.w);
        let owner = self.owner(id);
        let d = if (id as usize) < self.n {
            let sess = &mut self.sess[id as usize];
            let at = sess.seg as usize;
            let last = at + 1 == sess.spine.len();
            sess.state = if last {
                SessionState::Finalizing
            } else {
                HOLD_STATE[kind]
            };
            sess.spine[at].duration_s
        } else {
            self.page_dur[(id - self.n as u32) as usize]
        };
        self.sched.lane_busy_s[kind] += d;
        obs.record(
            now,
            EventKind::LaneGrant {
                lane: EngineLane::ALL[kind],
                worker: self.home(owner),
                session: owner,
                duration_s: d,
            },
        );
        self.push_ev(bits(now + d), id);
    }

    /// Ask for lane `idx`. Grants immediately when a slot is free,
    /// otherwise queues FIFO (a CPU lane's waiters are the run queue).
    #[inline(always)]
    fn request<C: Collector>(&mut self, obs: &mut C, idx: usize, id: u32, now: f64) {
        if self.lanes[idx].free_slots > 0 {
            self.lanes[idx].free_slots -= 1;
            self.grant(obs, idx, id, now);
        } else {
            self.lanes[idx].waiters.push_back(id);
            if (id as usize) < self.n {
                self.sess[id as usize].state = if idx < self.w {
                    SessionState::Admitted
                } else {
                    SessionState::FaultPending
                };
            }
            if idx < self.w {
                obs.record(
                    now,
                    EventKind::QueueDepth {
                        queue: QueueLane::RunQueue,
                        depth: self.lanes[idx].waiters.len() as u64,
                    },
                );
            }
        }
    }

    /// Release lane `idx` and hand it to the head waiter, if any.
    #[inline(always)]
    fn release<C: Collector>(&mut self, obs: &mut C, idx: usize, now: f64) {
        if let Some(next) = self.lanes[idx].waiters.pop_front() {
            if idx < self.w {
                obs.record(
                    now,
                    EventKind::QueueDepth {
                        queue: QueueLane::RunQueue,
                        depth: self.lanes[idx].waiters.len() as u64,
                    },
                );
            }
            self.grant(obs, idx, next, now);
        } else {
            self.lanes[idx].free_slots += 1;
        }
    }

    /// Fire the detached pages anchored at the session's current segment
    /// (or earlier — including pages anchored *after* the final segment,
    /// fired when the spine completes).
    fn fire_pages<C: Collector>(&mut self, obs: &mut C, session: u32, now: f64) {
        let s = session as usize;
        let pages = self.pages_of[s];
        let at = self.sess[s].seg;
        let base = self.page_base[s];
        while (self.sess[s].page_cursor as usize) < pages.len()
            && pages[self.sess[s].page_cursor as usize].at_seg <= at
        {
            let pid = self.n as u32 + base + self.sess[s].page_cursor;
            self.sess[s].page_cursor += 1;
            let up = self.w;
            self.request(obs, up, pid, now);
        }
    }
}

/// Execute `script_of` (session → script index into `scripts`) on the
/// shared lanes of `cfg`, emitting occupancy events to `obs`.
///
/// Deterministic by the three rules in the module docs; the whole run
/// dispatches from pre-sized containers (zero steady-state allocations —
/// [`EvloopSchedule::containers_grew`] reports a violation).
///
/// # Panics
///
/// In debug builds, if a pre-sized container grew or a session failed to
/// reach [`SessionState::Done`].
pub fn multiplex<C: Collector>(
    scripts: &[SessionScript],
    script_of: &[u32],
    cfg: &EvloopConfig,
    obs: &mut C,
) -> EvloopSchedule {
    let n = script_of.len();
    let workers = cfg.workers.max(1);
    let mut page_base = Vec::with_capacity(n);
    let mut total_pages: u32 = 0;
    for &sc in script_of {
        page_base.push(total_pages);
        total_pages += scripts[sc as usize].pages.len() as u32;
    }
    let mut page_dur = Vec::with_capacity(total_pages as usize);
    for &sc in script_of {
        page_dur.extend(scripts[sc as usize].pages.iter().map(|p| p.duration_s));
    }
    let cap = n + total_pages as usize;

    let sess: Vec<Sess> = script_of
        .iter()
        .enumerate()
        .map(|(s, &sc)| Sess {
            spine: scripts[sc as usize].spine.as_slice(),
            seg: 0,
            home: (s % workers) as u32,
            page_cursor: 0,
            pages_len: scripts[sc as usize].pages.len() as u32,
            state: SessionState::Admitted,
        })
        .collect();
    let pages_of: Vec<&[PageBurst]> = script_of
        .iter()
        .map(|&sc| scripts[sc as usize].pages.as_slice())
        .collect();
    // `workers` CPU lanes (waiters = run queues), then uplink (sized for
    // queued pages too), downlink, and the server slot pool.
    let mut lanes: Vec<LaneRes> = (0..workers)
        .map(|_| LaneRes {
            free_slots: 1,
            waiters: VecDeque::with_capacity(n.div_ceil(workers) + 1),
        })
        .collect();
    lanes.push(LaneRes {
        free_slots: 1,
        waiters: VecDeque::with_capacity(cap),
    });
    lanes.push(LaneRes {
        free_slots: 1,
        waiters: VecDeque::with_capacity(n),
    });
    lanes.push(LaneRes {
        free_slots: cfg.server_slots.max(1),
        waiters: VecDeque::with_capacity(n),
    });
    let mut eng = Engine {
        sess,
        pages_of,
        n,
        w: workers,
        lanes,
        page_base,
        page_dur,
        // Bounded by total lane slots, not by session count.
        heap: EvQueue::with_capacity(workers + cfg.server_slots.max(1) + 3),
        sched: EvloopSchedule {
            completions: vec![0.0; n],
            ..Default::default()
        },
    };
    let heap_cap = eng.heap.capacity();
    let lane_caps: Vec<usize> = eng.lanes.iter().map(|l| l.waiters.capacity()).collect();

    // Admission: submission order at t = 0 (determinism rule 3).
    for s in 0..n as u32 {
        let spine = eng.sess[s as usize].spine;
        if spine.is_empty() {
            eng.sess[s as usize].state = SessionState::Done;
            continue;
        }
        eng.fire_pages(obs, s, 0.0);
        let idx = eng.lane_idx(spine[0].lane, s);
        eng.request(obs, idx, s, 0.0);
    }

    // Dispatch until quiescent. The counters live in locals so the loop
    // does not re-read them through `eng` after every method call.
    let mut dispatched: u64 = 0;
    let mut horizon = 0.0f64;
    while let Some(ev) = eng.heap.pop_min() {
        let now = secs(ev.at_bits);
        dispatched += 1;
        // Pops are time-ordered, so the horizon is just the last event.
        horizon = now;
        let id = ev.id;
        if (id as usize) >= n {
            // A streamed page finished crossing: free the uplink.
            let up = eng.w;
            eng.release(obs, up, now);
            continue;
        }
        let s = id as usize;
        // Read the hot record once; write `seg` back once.
        let spine = eng.sess[s].spine;
        let at = eng.sess[s].seg as usize;
        let fire = eng.sess[s].page_cursor < eng.sess[s].pages_len;
        let idx = eng.lane_idx(spine[at].lane, id);
        eng.release(obs, idx, now);
        let at = at + 1;
        eng.sess[s].seg = at as u32;
        if fire {
            eng.fire_pages(obs, id, now);
        }
        if at == spine.len() {
            eng.sess[s].state = SessionState::Done;
            eng.sched.completions[s] = now;
            eng.sched.makespan_s = eng.sched.makespan_s.max(now);
            continue;
        }
        let idx = eng.lane_idx(spine[at].lane, id);
        eng.request(obs, idx, id, now);
    }
    eng.sched.events_dispatched = dispatched;
    eng.sched.horizon_s = horizon;

    let grew = eng.heap.capacity() != heap_cap
        || eng
            .lanes
            .iter()
            .zip(&lane_caps)
            .any(|(l, &c)| l.waiters.capacity() != c);
    eng.sched.containers_grew = grew;
    debug_assert!(!grew, "event engine allocated in steady state");
    debug_assert!(
        eng.sess.iter().all(|x| x.state == SessionState::Done),
        "session failed to reach Done"
    );
    eng.sched
}

/// The atomic outcome: completions plus the list-schedule makespan.
#[derive(Debug, Clone, Default)]
pub struct AtomicSchedule {
    /// Per-session completion, submission order.
    pub completions: Vec<f64>,
    /// `max` over worker clocks — bit-identical to the greedy list
    /// scheduler this engine replaced.
    pub makespan_s: f64,
}

/// The event engine's *atomic mode*: every session is a single
/// whole-duration CPU grant, all sessions are admitted at `t = 0` into
/// one global FIFO, and a freed worker (earliest free time, ties to the
/// lowest id) takes the head of the queue.
///
/// This performs the same per-worker `clock += d` additions in the same
/// order as the greedy least-loaded list scheduler it replaces, so the
/// makespan is **bit-identical** to the old
/// `list_schedule_makespan(durations, workers)` — the farm bench gate
/// (`BENCH_pr4.json`) holds across the swap.
pub fn atomic_schedule(durations: &[f64], workers: usize) -> AtomicSchedule {
    let workers = workers.max(1);
    // Worker-free events, ordered by (time bits, worker id).
    let mut free: BinaryHeap<Reverse<(u64, usize)>> =
        (0..workers).map(|w| Reverse((0, w))).collect();
    let mut clock = vec![0.0f64; workers];
    let mut completions = Vec::with_capacity(durations.len());
    for &d in durations {
        let Reverse((_, w)) = free.pop().expect("worker heap underflow");
        clock[w] += d;
        completions.push(clock[w]);
        free.push(Reverse((bits(clock[w]), w)));
    }
    AtomicSchedule {
        completions,
        makespan_s: clock.iter().fold(0.0f64, |m, &l| m.max(l)),
    }
}

/// [`atomic_schedule`] when only the makespan is needed.
pub fn atomic_makespan(durations: &[f64], workers: usize) -> f64 {
    atomic_schedule(durations, workers).makespan_s
}

/// A farm result plus the event-time schedule of the same jobs.
#[derive(Debug)]
pub struct EvloopResult {
    /// Per-session reports and traces — byte-identical to
    /// [`run_farm`](crate::runtime::farm::run_farm) and the serial engine.
    pub farm: FarmResult,
    /// The shared-timeline schedule of the interleaved run.
    pub schedule: EvloopSchedule,
    /// The compiled scripts, one per job (submission order).
    pub scripts: Vec<SessionScript>,
}

/// Run `jobs` through the event-driven core: the per-session engine
/// produces timing (byte-identical reports/traces), then the multiplexer
/// interleaves all sessions over `cfg` lanes.
///
/// # Errors
///
/// Any session error, lowest submission index first (farm semantics).
pub fn run_evloop<C: Collector>(
    jobs: &[FarmJob],
    farm_workers: usize,
    cfg: &EvloopConfig,
    obs: &mut C,
) -> Result<EvloopResult, OffloadError> {
    let farm = run_farm(jobs, farm_workers)?;
    let mut scripts = Vec::with_capacity(jobs.len());
    for idx in 0..jobs.len() {
        let shard = farm
            .trace
            .shard(idx)
            .expect("farm produced a shard per job");
        scripts.push(SessionScript::from_records(&shard.records));
    }
    let script_of: Vec<u32> = (0..jobs.len() as u32).collect();
    let schedule = multiplex(&scripts, &script_of, cfg, obs);
    Ok(EvloopResult {
        farm,
        schedule,
        scripts,
    })
}

/// The `reproduce evloop --check` gate: run `jobs` through the event
/// core and through the serial engine, and require byte-identical
/// reports and traces (the evloop must not perturb per-session results),
/// plus a completion for every session.
///
/// # Errors
///
/// The first divergence, by job index and field.
pub fn check_evloop_equivalence(jobs: &[FarmJob], cfg: &EvloopConfig) -> Result<(), String> {
    let mut noop = offload_obs::NoopCollector;
    let ev = run_evloop(jobs, cfg.workers, cfg, &mut noop)
        .map_err(|e| format!("evloop run failed: {e}"))?;
    if ev.schedule.completions.len() != jobs.len() {
        return Err("schedule is missing completions".into());
    }
    if ev.schedule.containers_grew {
        return Err("event engine allocated in steady state".into());
    }
    for (idx, job) in jobs.iter().enumerate() {
        let mut obs = offload_obs::TraceCollector::with_capacity(FARM_RING_CAPACITY);
        let serial = run_offloaded_traced(job.app, &job.input, &job.cfg, &mut obs)
            .map_err(|e| format!("serial job {idx} failed: {e}"))?;
        reports_equal(&serial, &ev.farm.reports[idx])
            .map_err(|e| format!("job {idx} report diverged: {e}"))?;
        let shard = ev
            .farm
            .trace
            .shard(idx)
            .ok_or_else(|| format!("job {idx} has no trace shard"))?;
        if shard.records != obs.records() {
            return Err(format!("job {idx} trace diverged"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_obs::NoopCollector;

    fn cpu(d: f64) -> Segment {
        Segment {
            lane: EngineLane::WorkerCpu,
            duration_s: d,
        }
    }

    fn seg(lane: EngineLane, d: f64) -> Segment {
        Segment {
            lane,
            duration_s: d,
        }
    }

    #[test]
    fn atomic_matches_greedy_list_scheduler_bit_for_bit() {
        // The exact greedy the bench used, inlined as the oracle.
        fn greedy(durations: &[f64], workers: usize) -> f64 {
            let mut load = vec![0.0f64; workers.max(1)];
            for &d in durations {
                let mut best = 0;
                for (i, &l) in load.iter().enumerate() {
                    if l < load[best] {
                        best = i;
                    }
                }
                load[best] += d;
            }
            load.iter().fold(0.0f64, |m, &l| m.max(l))
        }
        // Fixed-seed splitmix64 durations, including exact ties.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        for n in [0usize, 1, 2, 7, 64, 257] {
            let mut durations: Vec<f64> = (0..n).map(|_| next() * 3.0).collect();
            // Force tie-heavy content: duplicate and quantize a slice.
            for d in durations.iter_mut().skip(n / 2) {
                *d = (*d * 4.0).round() / 4.0;
            }
            for workers in [1usize, 2, 3, 4, 8] {
                let a = atomic_makespan(&durations, workers);
                let b = greedy(&durations, workers);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "n={n} workers={workers}: {a} != {b}"
                );
            }
        }
    }

    #[test]
    fn single_session_multiplex_matches_solo_time() {
        let scripts = vec![SessionScript {
            spine: vec![
                cpu(1.0),
                seg(EngineLane::LinkUp, 0.5),
                seg(EngineLane::Server, 2.0),
                seg(EngineLane::LinkDown, 0.25),
                cpu(0.25),
            ],
            pages: Vec::new(),
            total_s: 4.0,
        }];
        let sched = multiplex(&scripts, &[0], &EvloopConfig::default(), &mut NoopCollector);
        assert_eq!(sched.completions.len(), 1);
        assert!((sched.completions[0] - 4.0).abs() < 1e-12);
        assert_eq!(sched.makespan_s.to_bits(), sched.completions[0].to_bits());
        assert!(!sched.containers_grew);
    }

    #[test]
    fn two_sessions_interleave_over_the_server_wait() {
        // Session spine: 1s CPU, 2s server, 1s CPU. With one worker the
        // blocking shape needs 8s for two sessions; interleaving hides
        // the second session's CPU under the first one's server wait.
        let scripts = vec![SessionScript {
            spine: vec![cpu(1.0), seg(EngineLane::Server, 2.0), cpu(1.0)],
            pages: Vec::new(),
            total_s: 4.0,
        }];
        let sched = multiplex(
            &scripts,
            &[0, 0],
            &EvloopConfig {
                workers: 1,
                server_slots: 16,
            },
            &mut NoopCollector,
        );
        // t=0: s0 CPU; t=1: s0 server, s1 CPU; t=2: s1 server;
        // t=3: s0 CPU (done 4); t=4: s1 CPU (done 5).
        assert!((sched.completions[0] - 4.0).abs() < 1e-12);
        assert!((sched.completions[1] - 5.0).abs() < 1e-12);
        assert!(sched.makespan_s < 8.0 - 1e-9);
    }

    #[test]
    fn shared_uplink_serializes_contending_sessions() {
        let scripts = vec![SessionScript {
            spine: vec![seg(EngineLane::LinkUp, 1.0)],
            pages: Vec::new(),
            total_s: 1.0,
        }];
        let sched = multiplex(
            &scripts,
            &[0, 0, 0],
            &EvloopConfig {
                workers: 4,
                server_slots: 16,
            },
            &mut NoopCollector,
        );
        // Capacity-1 uplink: grants in submission order, back to back.
        assert!((sched.completions[0] - 1.0).abs() < 1e-12);
        assert!((sched.completions[1] - 2.0).abs() < 1e-12);
        assert!((sched.completions[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn detached_pages_occupy_the_uplink_past_finalization() {
        let scripts = vec![SessionScript {
            spine: vec![cpu(0.5)],
            pages: vec![PageBurst {
                at_seg: 0,
                duration_s: 2.0,
            }],
            total_s: 0.5,
        }];
        let sched = multiplex(&scripts, &[0], &EvloopConfig::default(), &mut NoopCollector);
        assert!((sched.completions[0] - 0.5).abs() < 1e-12);
        assert!((sched.makespan_s - 0.5).abs() < 1e-12);
        // The streamed page holds the link until t=2 — the horizon sees it.
        assert!((sched.horizon_s - 2.0).abs() < 1e-12);
        assert!((sched.lane_busy_s[EngineLane::LinkUp as usize] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_segments_and_empty_scripts_terminate() {
        let scripts = vec![
            SessionScript::default(),
            SessionScript {
                spine: vec![cpu(0.0), seg(EngineLane::Server, 0.0)],
                pages: Vec::new(),
                total_s: 0.0,
            },
        ];
        let sched = multiplex(
            &scripts,
            &[0, 1, 0],
            &EvloopConfig::default(),
            &mut NoopCollector,
        );
        assert_eq!(sched.completions.len(), 3);
        assert!(sched.completions.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let scripts = vec![
            SessionScript {
                spine: vec![
                    cpu(0.25),
                    seg(EngineLane::LinkUp, 0.5),
                    seg(EngineLane::Server, 1.0),
                    cpu(0.125),
                ],
                pages: vec![PageBurst {
                    at_seg: 1,
                    duration_s: 0.75,
                }],
                total_s: 1.875,
            },
            SessionScript {
                spine: vec![cpu(1.0), seg(EngineLane::LinkDown, 0.5)],
                pages: Vec::new(),
                total_s: 1.5,
            },
        ];
        let ids: Vec<u32> = (0..64).map(|i| i % 2).collect();
        let cfg = EvloopConfig {
            workers: 4,
            server_slots: 2,
        };
        let a = multiplex(&scripts, &ids, &cfg, &mut NoopCollector);
        let b = multiplex(&scripts, &ids, &cfg, &mut NoopCollector);
        assert_eq!(a.completions.len(), b.completions.len());
        for (x, y) in a.completions.iter().zip(&b.completions) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
        assert_eq!(a.events_dispatched, b.events_dispatched);
    }
}
