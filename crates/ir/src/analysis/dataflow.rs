//! Interprocedural monotone dataflow framework, and the analyses the
//! offload certificates are built from.
//!
//! The framework solves per-function summaries **bottom-up over the
//! strongly connected components of the call graph**: a callee's summary
//! is final before any caller reads it, and mutually recursive functions
//! iterate inside their SCC to a fixpoint — with a *widening* escape
//! hatch (jump to the lattice top) if an SCC refuses to converge within a
//! round budget, so termination never depends on the lattice's height.
//!
//! Three clients ship with the framework:
//!
//! * **mod/ref summaries** ([`mod_ref_summaries`]) — which abstract
//!   locations from [`PointsTo`] each function may read or write,
//!   transitively through direct calls, builtins and bounded indirect
//!   calls ([`CallTargets::Bounded`]);
//! * **escape analysis** ([`escape_analysis`]) — which stack slots
//!   outlive their frame (address stored, returned, leaked to unknown
//!   code, or passed across functions);
//! * **page-footprint lowering** ([`lower_footprint`]) — mapping abstract
//!   locations through the loader's layout rules onto unified-virtual-
//!   address page numbers, the form the runtime certificate consumes.
//!
//! The region lints `OFF030`/`OFF031` ride the same summaries (see
//! [`run_region_lints`]).

use std::collections::{BTreeSet, HashMap};

use crate::analysis::callgraph::CallGraph;
use crate::analysis::pointsto::{AbsLoc, CallSite, CallTargets, PointsTo, PtsSet};
use crate::diag::{Code, Diagnostic};
use crate::inst::{Builtin, Callee, Inst};
use crate::layout::DataLayout;
use crate::module::{FuncId, Module, ValueId};

// ---------------------------------------------------------------------------
// SCC order
// ---------------------------------------------------------------------------

/// The strongly connected components of a function-level dependency
/// graph, in bottom-up (callee-first) order.
#[derive(Debug, Clone)]
pub struct SccOrder {
    sccs: Vec<Vec<FuncId>>,
    recursive: Vec<bool>,
}

impl SccOrder {
    /// Tarjan's algorithm (iterative) over `edges`. SCCs come out in
    /// reverse topological order of the condensation: every component is
    /// emitted after all components it can reach — i.e. callees first.
    pub fn compute(module: &Module, edges: &dyn Fn(FuncId) -> Vec<FuncId>) -> Self {
        let n = module.function_count();
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut sccs: Vec<Vec<FuncId>> = Vec::new();

        // Explicit DFS frames: (node, its successor list, next successor).
        struct Frame {
            v: u32,
            succs: Vec<u32>,
            next: usize,
        }
        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            let mut frames = vec![Frame {
                v: root,
                succs: edges(FuncId(root)).into_iter().map(|f| f.0).collect(),
                next: 0,
            }];
            index[root as usize] = next_index;
            lowlink[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;

            while let Some(frame) = frames.last_mut() {
                let v = frame.v;
                if frame.next < frame.succs.len() {
                    let w = frame.succs[frame.next];
                    frame.next += 1;
                    if (w as usize) >= n {
                        continue;
                    }
                    if index[w as usize] == UNVISITED {
                        index[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        frames.push(Frame {
                            v: w,
                            succs: edges(FuncId(w)).into_iter().map(|f| f.0).collect(),
                            next: 0,
                        });
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                    }
                } else {
                    if lowlink[v as usize] == index[v as usize] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w as usize] = false;
                            scc.push(FuncId(w));
                            if w == v {
                                break;
                            }
                        }
                        scc.sort();
                        sccs.push(scc);
                    }
                    frames.pop();
                    if let Some(parent) = frames.last() {
                        let p = parent.v as usize;
                        lowlink[p] = lowlink[p].min(lowlink[v as usize]);
                    }
                }
            }
        }

        let recursive = sccs
            .iter()
            .map(|scc| scc.len() > 1 || scc.iter().any(|&f| edges(f).contains(&f)))
            .collect();
        SccOrder { sccs, recursive }
    }

    /// The components, callee-first.
    pub fn sccs(&self) -> &[Vec<FuncId>] {
        &self.sccs
    }

    /// `true` if component `i` contains a cycle (mutual or self recursion).
    pub fn is_recursive(&self, i: usize) -> bool {
        self.recursive[i]
    }
}

// ---------------------------------------------------------------------------
// Generic bottom-up solver
// ---------------------------------------------------------------------------

/// A join-semilattice summary the solver can grow and widen.
pub trait Summary: Clone + Default + PartialEq {
    /// Merge `other` into `self`; returns `true` if `self` grew.
    fn join(&mut self, other: &Self) -> bool;
    /// Jump to the lattice top (the sound "anything" element).
    fn widen(&mut self);
}

/// Solve per-function summaries bottom-up over `order`.
///
/// `transfer` recomputes one function's summary from the instruction
/// stream, reading callee summaries out of the map (final for lower
/// components, in-progress for same-SCC members). Recursive components
/// iterate until stable or until `max_rounds_per_scc` rounds, at which
/// point every member is **widened** to top — so the solver terminates on
/// any lattice. Returns the summaries and the total round count.
pub fn solve<S: Summary>(
    order: &SccOrder,
    transfer: &mut dyn FnMut(FuncId, &HashMap<FuncId, S>) -> S,
    max_rounds_per_scc: u32,
) -> (HashMap<FuncId, S>, u32) {
    let mut summaries: HashMap<FuncId, S> = HashMap::new();
    let mut total_rounds = 0u32;
    for (i, scc) in order.sccs().iter().enumerate() {
        for &f in scc {
            summaries.entry(f).or_default();
        }
        let budget = if order.is_recursive(i) {
            max_rounds_per_scc.max(1)
        } else {
            1
        };
        let mut converged = false;
        for _ in 0..budget {
            total_rounds += 1;
            let mut grew = false;
            for &f in scc {
                let new = transfer(f, &summaries);
                grew |= summaries.get_mut(&f).expect("seeded").join(&new);
            }
            if !grew {
                converged = true;
                break;
            }
        }
        if !converged && order.is_recursive(i) {
            for &f in scc {
                summaries.get_mut(&f).expect("seeded").widen();
            }
        }
    }
    (summaries, total_rounds)
}

// ---------------------------------------------------------------------------
// Mod/ref summaries
// ---------------------------------------------------------------------------

/// May-read / may-write summary of one function, transitively through
/// everything it calls. `unknown` on either side means the function may
/// touch memory the analysis cannot name (unknown externals, syscalls,
/// unbounded indirect calls, inline asm).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModRef {
    /// Locations the function may read.
    pub reads: PtsSet,
    /// Locations the function may write.
    pub writes: PtsSet,
}

impl Summary for ModRef {
    fn join(&mut self, other: &Self) -> bool {
        let a = self.reads.merge(&other.reads);
        let b = self.writes.merge(&other.writes);
        a || b
    }

    fn widen(&mut self) {
        self.reads.merge(&PtsSet::top());
        self.writes.merge(&PtsSet::top());
    }
}

impl ModRef {
    /// Both sides resolved to named locations only.
    pub fn is_precise(&self) -> bool {
        !self.reads.unknown && !self.writes.unknown
    }
}

/// The result of the interprocedural mod/ref analysis.
#[derive(Debug, Clone)]
pub struct ModRefResult {
    summaries: HashMap<FuncId, ModRef>,
    rounds: u32,
}

impl ModRefResult {
    /// The summary of `f` (empty for functions the module doesn't define).
    pub fn summary(&self, f: FuncId) -> ModRef {
        self.summaries.get(&f).cloned().unwrap_or_default()
    }

    /// Every `(function, summary)` pair.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &ModRef)> {
        self.summaries.iter().map(|(f, s)| (*f, s))
    }

    /// Total solver rounds across all SCCs.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }
}

/// Round budget per SCC before widening. Mod/ref grows over a finite
/// location universe, so real programs converge far below this; the cap
/// is the termination guarantee, not a tuning knob.
const MODREF_SCC_ROUNDS: u32 = 64;

/// Compute mod/ref summaries for every function in `module`.
///
/// Indirect calls join the summaries of their [`CallTargets::Bounded`]
/// resolution; unbounded sites widen both sides to `unknown`.
pub fn mod_ref_summaries(module: &Module, pt: &PointsTo) -> ModRefResult {
    let cg = CallGraph::build(module);
    // SCC edges: direct callees plus bounded indirect targets, so a cycle
    // closed through a function pointer still iterates as one component.
    let mut indirect_edges: HashMap<FuncId, BTreeSet<FuncId>> = HashMap::new();
    for (site, targets) in pt.indirect_sites() {
        if let CallTargets::Bounded(ts) = targets {
            indirect_edges.entry(site.func).or_default().extend(ts);
        }
    }
    let edges = |f: FuncId| -> Vec<FuncId> {
        let mut out: Vec<FuncId> = cg.callees(f).collect();
        if let Some(extra) = indirect_edges.get(&f) {
            out.extend(extra.iter().copied());
        }
        out
    };
    let order = SccOrder::compute(module, &edges);

    let mut transfer = |f: FuncId, summaries: &HashMap<FuncId, ModRef>| -> ModRef {
        let func = module.function(f);
        let mut mr = ModRef::default();
        if func.is_declaration() {
            // Unknown external code: anything may be read or written.
            mr.widen();
            return mr;
        }
        for (bid, block) in func.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                transfer_inst(
                    module,
                    pt,
                    summaries,
                    f,
                    CallSite {
                        func: f,
                        block: bid,
                        inst: i as u32,
                    },
                    inst,
                    &mut mr,
                );
            }
        }
        mr
    };
    let (summaries, rounds) = solve(&order, &mut transfer, MODREF_SCC_ROUNDS);
    ModRefResult { summaries, rounds }
}

fn transfer_inst(
    module: &Module,
    pt: &PointsTo,
    summaries: &HashMap<FuncId, ModRef>,
    f: FuncId,
    site: CallSite,
    inst: &Inst,
    mr: &mut ModRef,
) {
    let pts = |v: ValueId| pt.value_set(f, v);
    match inst {
        Inst::Load { addr, .. } => {
            mr.reads.merge(&pts(*addr));
        }
        Inst::Store { addr, .. } => {
            mr.writes.merge(&pts(*addr));
        }
        Inst::Call { callee, args, .. } => match callee {
            Callee::Direct(t) => {
                if module.function(*t).is_declaration() {
                    mr.widen();
                } else {
                    mr.join(&summaries.get(t).cloned().unwrap_or_default());
                }
            }
            Callee::Builtin(b) => builtin_mod_ref(pt, f, *b, args, mr),
            Callee::Indirect(_) => match pt.indirect_targets(site) {
                Some(CallTargets::Bounded(ts)) => {
                    for t in ts {
                        if module.function(*t).is_declaration() {
                            mr.widen();
                        } else {
                            mr.join(&summaries.get(t).cloned().unwrap_or_default());
                        }
                    }
                }
                Some(CallTargets::Unbounded) | None => mr.widen(),
            },
        },
        Inst::Syscall { .. } | Inst::InlineAsm { .. } => mr.widen(),
        _ => {}
    }
}

/// Memory effects of a builtin call, in terms of its arguments'
/// points-to sets. Explicit rules cover the hot, well-understood
/// builtins; everything else conservatively reads *and* writes whatever
/// its arguments may reach (sound for scalar-only builtins too — their
/// argument sets are empty).
fn builtin_mod_ref(pt: &PointsTo, f: FuncId, b: Builtin, args: &[ValueId], mr: &mut ModRef) {
    let pts = |v: ValueId| pt.value_set(f, v);
    match b {
        // Allocator entry points and scalar builtins touch no named
        // memory (allocator metadata lives outside the simulated space).
        Builtin::Malloc
        | Builtin::UMalloc
        | Builtin::Free
        | Builtin::UFree
        | Builtin::Putchar
        | Builtin::Getchar
        | Builtin::Sqrt
        | Builtin::Fabs
        | Builtin::Exp
        | Builtin::Log
        | Builtin::Sin
        | Builtin::Cos
        | Builtin::Pow
        | Builtin::Floor
        | Builtin::Clock
        | Builtin::Exit
        | Builtin::IsProfitable
        | Builtin::FnMapToLocal => {}
        // memcpy/strcpy(dst, src): read through src, write through dst.
        Builtin::Memcpy | Builtin::Strcpy if args.len() >= 2 => {
            mr.writes.merge(&pts(args[0]));
            mr.reads.merge(&pts(args[1]));
        }
        Builtin::Memset => {
            if let Some(&dst) = args.first() {
                mr.writes.merge(&pts(dst));
            }
        }
        // Pure readers: string scans and formatted output (the format
        // string and any pointer arguments are only dereferenced for
        // reading).
        Builtin::Strlen | Builtin::Strcmp | Builtin::Printf | Builtin::RPrintf => {
            for &a in args {
                mr.reads.merge(&pts(a));
            }
        }
        // Everything else (scanf, file I/O, offload plumbing, and any
        // future builtin): its pointer arguments may be read and written.
        _ => {
            for &a in args {
                let s = pts(a);
                mr.reads.merge(&s);
                mr.writes.merge(&s);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Escape analysis
// ---------------------------------------------------------------------------

/// Which stack slots outlive their frame.
#[derive(Debug, Clone, Default)]
pub struct EscapeInfo {
    escaping: BTreeSet<AbsLoc>,
}

impl EscapeInfo {
    /// `true` if `loc` outlives its defining frame (or was handed to
    /// unknown code). Globals and heap sites always escape: they outlive
    /// every offload region by construction.
    pub fn escapes(&self, loc: AbsLoc) -> bool {
        match loc {
            AbsLoc::Stack(..) => self.escaping.contains(&loc),
            AbsLoc::Global(_) | AbsLoc::Heap(..) | AbsLoc::Func(_) => true,
        }
    }

    /// The escaping stack slots.
    pub fn iter(&self) -> impl Iterator<Item = AbsLoc> + '_ {
        self.escaping.iter().copied()
    }
}

/// A stack slot escapes when its address is observable after the frame
/// returns or outside the frame: stored into any memory cell, returned,
/// leaked through untracked stores, handed to unknown code, or flowed
/// into another function's values (passed as an argument).
pub fn escape_analysis(module: &Module, pt: &PointsTo) -> EscapeInfo {
    let mut escaping: BTreeSet<AbsLoc> = BTreeSet::new();
    let stack_only = |set: &PtsSet, out: &mut BTreeSet<AbsLoc>| {
        for &l in set.locs() {
            if matches!(l, AbsLoc::Stack(..)) {
                out.insert(l);
            }
        }
    };
    // Stored anywhere the analysis tracks (a cell reachable from a
    // global, the heap, or another slot).
    for (_, set) in pt.contents_iter() {
        stack_only(set, &mut escaping);
    }
    // Stored through a pointer the analysis lost track of.
    stack_only(pt.leaked(), &mut escaping);
    // Handed to unknown code.
    for l in pt.escaped_locs() {
        if matches!(l, AbsLoc::Stack(..)) {
            escaping.insert(l);
        }
    }
    // Returned from the defining function, or visible in another
    // function's registers (passed as an argument).
    for ((g, _), set) in pt.value_sets_iter() {
        for &l in set.locs() {
            if let AbsLoc::Stack(owner, _) = l {
                if owner != g {
                    escaping.insert(l);
                }
            }
        }
    }
    for (f, _) in module.iter_functions() {
        stack_only(&pt.ret_set(f), &mut escaping);
    }
    EscapeInfo { escaping }
}

// ---------------------------------------------------------------------------
// Page-footprint lowering
// ---------------------------------------------------------------------------

/// The address-space geometry abstract locations are lowered through.
/// The ir crate knows nothing about the machine crate's UVA map, so the
/// caller supplies the constants (`native_offloader` passes the loader's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FootprintSpace {
    /// Page size in bytes.
    pub page_size: u64,
    /// Base byte address of the unified globals segment.
    pub globals_base: u64,
    /// Minimum alignment the loader gives every global.
    pub global_align_floor: u64,
    /// Page-number range `[start, end)` covering every stack slot.
    pub stack_pages: (u64, u64),
    /// Page-number range `[start, end)` covering every heap site.
    pub heap_pages: (u64, u64),
}

impl FootprintSpace {
    /// `(address, size)` of every global under `layout`, replicating the
    /// loader's bump allocation over the globals segment: each global is
    /// aligned to `max(align_of, global_align_floor)` and placed at the
    /// next free cursor.
    pub fn global_extents(&self, module: &Module, layout: &DataLayout) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(module.global_count());
        let mut cursor = self.globals_base;
        for (_, g) in module.iter_globals() {
            let align = layout.align_of(&g.ty, module).max(self.global_align_floor);
            cursor = cursor.div_ceil(align) * align;
            let size = layout.size_of(&g.ty, module);
            out.push((cursor, size));
            cursor += size;
        }
        out
    }

    /// One past the last page the globals segment occupies under `layout`.
    pub fn globals_end_page(&self, module: &Module, layout: &DataLayout) -> u64 {
        self.global_extents(module, layout)
            .iter()
            .map(|(addr, size)| (addr + size.max(&1) - 1) / self.page_size + 1)
            .max()
            .unwrap_or(self.globals_base / self.page_size)
    }
}

/// A set of UVA pages: precise page numbers (globals resolve exactly)
/// plus coarse ranges (stack and heap sites resolve to their segment),
/// plus the `unknown` top.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PageFootprint {
    pages: Vec<u64>,
    ranges: Vec<(u64, u64)>,
    /// `true` if the footprint may include pages not listed.
    pub unknown: bool,
}

impl PageFootprint {
    /// The precisely resolved page numbers, sorted.
    pub fn pages(&self) -> &[u64] {
        &self.pages
    }

    /// The coarse `[start, end)` page ranges.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// `true` if `page` may be in the footprint.
    pub fn contains(&self, page: u64) -> bool {
        self.unknown
            || self.pages.binary_search(&page).is_ok()
            || self.ranges.iter().any(|&(s, e)| page >= s && page < e)
    }

    /// `true` if the footprint is an exact page list: no top, no coarse
    /// segment ranges.
    pub fn is_exact(&self) -> bool {
        !self.unknown && self.ranges.is_empty()
    }

    fn add_page(&mut self, page: u64) {
        if let Err(i) = self.pages.binary_search(&page) {
            self.pages.insert(i, page);
        }
    }

    fn add_range(&mut self, range: (u64, u64)) {
        if !self.ranges.contains(&range) {
            self.ranges.push(range);
        }
    }
}

/// Lower a set of abstract locations onto UVA pages. Globals resolve to
/// their exact laid-out pages; stack and heap sites resolve coarsely to
/// their whole segment; function addresses occupy no data pages; an
/// `unknown` set lowers to the unknown footprint.
pub fn lower_footprint(
    space: &FootprintSpace,
    module: &Module,
    layout: &DataLayout,
    set: &PtsSet,
) -> PageFootprint {
    let mut fp = PageFootprint::default();
    if set.unknown {
        fp.unknown = true;
        return fp;
    }
    let extents = space.global_extents(module, layout);
    for &loc in set.locs() {
        match loc {
            AbsLoc::Global(g) => {
                let (addr, size) = extents[g.0 as usize];
                let first = addr / space.page_size;
                let last = (addr + size.max(1) - 1) / space.page_size;
                for p in first..=last {
                    fp.add_page(p);
                }
            }
            AbsLoc::Stack(..) => fp.add_range(space.stack_pages),
            AbsLoc::Heap(..) => fp.add_range(space.heap_pages),
            AbsLoc::Func(_) => {}
        }
    }
    fp
}

/// The certified page footprint of one offload region: what it may read
/// and what it may write.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionFootprint {
    /// Pages the region may read.
    pub read: PageFootprint,
    /// Pages the region may write.
    pub write: PageFootprint,
}

/// Lower a region's mod/ref summary to its page footprint.
pub fn region_footprint(
    space: &FootprintSpace,
    module: &Module,
    layout: &DataLayout,
    mr: &ModRef,
) -> RegionFootprint {
    RegionFootprint {
        read: lower_footprint(space, module, layout, &mr.reads),
        write: lower_footprint(space, module, layout, &mr.writes),
    }
}

/// The globals-segment pages the region provably never writes: every
/// page the global image occupies minus the may-write footprint. Empty
/// when the write side is unknown — nothing is proven then.
pub fn proven_readonly_pages(
    space: &FootprintSpace,
    module: &Module,
    layout: &DataLayout,
    write: &PageFootprint,
) -> Vec<u64> {
    if write.unknown {
        return Vec::new();
    }
    let first = space.globals_base / space.page_size;
    let end = space.globals_end_page(module, layout);
    (first..end).filter(|&p| !write.contains(p)).collect()
}

// ---------------------------------------------------------------------------
// Region lints (OFF030 / OFF031)
// ---------------------------------------------------------------------------

/// Lint the offload regions rooted at `roots` against the mod/ref and
/// escape products:
///
/// * `OFF030` — a store in the region writes through a stack slot whose
///   address escapes its frame: the certificate must cover the write
///   page-coarse, costing precision;
/// * `OFF031` — an indirect call in the region has an unbounded target
///   set: the region's may-write summary is `unknown` and every
///   certificate-driven optimization is disabled.
pub fn run_region_lints(
    module: &Module,
    pt: &PointsTo,
    escapes: &EscapeInfo,
    roots: &[FuncId],
) -> Vec<Diagnostic> {
    let cg = CallGraph::build(module);
    let region: BTreeSet<FuncId> = cg.reachable_from(roots).into_iter().collect();
    let mut diags = Vec::new();
    for (fid, func) in module.iter_functions() {
        if !region.contains(&fid) || func.is_declaration() {
            continue;
        }
        for (bid, block) in func.iter_blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                match inst {
                    Inst::Store { addr, .. } => {
                        let set = pt.value_set(fid, *addr);
                        let hit = set
                            .locs()
                            .iter()
                            .find(|l| matches!(l, AbsLoc::Stack(..)) && escapes.escapes(**l));
                        if let Some(AbsLoc::Stack(owner, slot)) = hit {
                            diags.push(
                                Diagnostic::new(
                                    Code::EscapingLocalWrite,
                                    format!(
                                        "offload region writes stack slot {slot} of {}, \
                                         whose address escapes its frame",
                                        module.function(*owner).name
                                    ),
                                )
                                .in_func(fid)
                                .at(bid, i as u32)
                                .note(
                                    "an escaping slot outlives the region; its page is \
                                     certified coarsely as the whole stack segment",
                                ),
                            );
                        }
                    }
                    Inst::Call {
                        callee: Callee::Indirect(_),
                        ..
                    } => {
                        let site = CallSite {
                            func: fid,
                            block: bid,
                            inst: i as u32,
                        };
                        if matches!(
                            pt.indirect_targets(site),
                            Some(CallTargets::Unbounded) | None
                        ) {
                            diags.push(
                                Diagnostic::new(
                                    Code::UnboundedIndirectWrite,
                                    "indirect call with unbounded targets degrades the \
                                     region's write summary to unknown"
                                        .to_string(),
                                )
                                .in_func(fid)
                                .at(bid, i as u32)
                                .note(
                                    "no page can be proven read-only past this call; \
                                     the runtime falls back to uncertified execution",
                                ),
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::layout::TargetAbi;
    use crate::module::{ConstValue, GlobalInit};
    use crate::types::Type;

    fn space() -> FootprintSpace {
        FootprintSpace {
            page_size: 4096,
            globals_base: 0x0001_0000,
            global_align_floor: 16,
            stack_pages: (0x6000, 0x7000),
            heap_pages: (0x1_0000, 0x5_0000),
        }
    }

    /// main -> writer -> reader; writer stores a global, reader loads one.
    fn modref_module() -> (Module, [FuncId; 3], [crate::module::GlobalId; 2]) {
        let mut m = Module::new("t");
        let ga = m.define_global("a", Type::I32, GlobalInit::Zeroed);
        let gb = m.define_global("b", Type::I32, GlobalInit::Zeroed);
        let reader = m.declare_function("reader", vec![], Type::I32);
        let writer = m.declare_function("writer", vec![], Type::Void);
        let main = m.declare_function("main", vec![], Type::I32);
        {
            let mut b = FunctionBuilder::new(&mut m, reader);
            let p = b.const_value(ConstValue::GlobalAddr(gb));
            let v = b.load(Type::I32, p);
            b.ret(Some(v));
            b.finish();
        }
        {
            let mut b = FunctionBuilder::new(&mut m, writer);
            let p = b.const_value(ConstValue::GlobalAddr(ga));
            let v = b.const_i32(7);
            b.store(Type::I32, p, v);
            b.ret(None);
            b.finish();
        }
        {
            let mut b = FunctionBuilder::new(&mut m, main);
            b.call(writer, vec![]);
            let r = b.call(reader, vec![]).unwrap();
            b.ret(Some(r));
            b.finish();
        }
        (m, [main, writer, reader], [ga, gb])
    }

    #[test]
    fn scc_order_is_bottom_up() {
        let (m, [main, writer, reader], _) = modref_module();
        let cg = CallGraph::build(&m);
        let edges = |f: FuncId| cg.callees(f).collect::<Vec<_>>();
        let order = SccOrder::compute(&m, &edges);
        let pos = |f: FuncId| {
            order
                .sccs()
                .iter()
                .position(|scc| scc.contains(&f))
                .unwrap()
        };
        assert!(pos(writer) < pos(main), "callee before caller");
        assert!(pos(reader) < pos(main));
        assert!(!order.is_recursive(pos(main)));
    }

    #[test]
    fn mutual_recursion_forms_one_scc_and_converges() {
        let mut m = Module::new("t");
        let ga = m.define_global("a", Type::I32, GlobalInit::Zeroed);
        let f = m.declare_function("f", vec![Type::I32], Type::Void);
        let g = m.declare_function("g", vec![Type::I32], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let p = b.param(0);
            b.call(g, vec![p]);
            b.ret(None);
            b.finish();
        }
        {
            let mut b = FunctionBuilder::new(&mut m, g);
            let p = b.param(0);
            let addr = b.const_value(ConstValue::GlobalAddr(ga));
            b.store(Type::I32, addr, p);
            b.call(f, vec![p]);
            b.ret(None);
            b.finish();
        }
        let cg = CallGraph::build(&m);
        let edges = |x: FuncId| cg.callees(x).collect::<Vec<_>>();
        let order = SccOrder::compute(&m, &edges);
        let scc = order
            .sccs()
            .iter()
            .find(|scc| scc.contains(&f))
            .expect("scc of f");
        assert!(scc.contains(&g), "mutual recursion is one component");

        let pt = PointsTo::analyze(&m);
        let mr = mod_ref_summaries(&m, &pt);
        let sf = mr.summary(f);
        assert!(sf.writes.contains(AbsLoc::Global(ga)), "{sf:?}");
        assert!(sf.is_precise(), "recursion converged without widening");
    }

    #[test]
    fn widening_caps_nonconverging_scc() {
        // A synthetic summary that grows every round: the solver must cut
        // it off at the budget and widen to top.
        #[derive(Debug, Clone, Default, PartialEq)]
        struct Counter {
            n: u32,
            top: bool,
        }
        impl Summary for Counter {
            fn join(&mut self, other: &Self) -> bool {
                let before = (self.n, self.top);
                self.n = self.n.max(other.n);
                self.top |= other.top;
                (self.n, self.top) != before
            }
            fn widen(&mut self) {
                self.top = true;
            }
        }
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            b.call(f, vec![]);
            b.ret(None);
            b.finish();
        }
        let cg = CallGraph::build(&m);
        let edges = |x: FuncId| cg.callees(x).collect::<Vec<_>>();
        let order = SccOrder::compute(&m, &edges);
        assert!(order.is_recursive(0), "self call is a recursive SCC");
        let mut transfer = |x: FuncId, s: &HashMap<FuncId, Counter>| Counter {
            n: s.get(&x).map_or(0, |c| c.n) + 1,
            top: false,
        };
        let (summaries, rounds) = solve(&order, &mut transfer, 5);
        assert!(summaries[&f].top, "non-converging SCC must widen");
        assert!(rounds <= 5);
    }

    #[test]
    fn mod_ref_distinguishes_reads_from_writes() {
        let (m, [main, writer, reader], [ga, gb]) = modref_module();
        let pt = PointsTo::analyze(&m);
        let mr = mod_ref_summaries(&m, &pt);

        let sw = mr.summary(writer);
        assert!(sw.writes.contains(AbsLoc::Global(ga)));
        assert!(!sw.reads.contains(AbsLoc::Global(gb)));

        let sr = mr.summary(reader);
        assert!(sr.reads.contains(AbsLoc::Global(gb)));
        assert!(sr.writes.locs().is_empty() && !sr.writes.unknown);

        // main inherits both transitively.
        let sm = mr.summary(main);
        assert!(sm.writes.contains(AbsLoc::Global(ga)));
        assert!(sm.reads.contains(AbsLoc::Global(gb)));
        assert!(sm.is_precise());
    }

    #[test]
    fn unknown_external_call_widens_summary() {
        let mut m = Module::new("t");
        let ext = m.declare_function("mystery", vec![], Type::Void);
        let f = m.declare_function("f", vec![], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            b.call(ext, vec![]);
            b.ret(None);
            b.finish();
        }
        let pt = PointsTo::analyze(&m);
        let mr = mod_ref_summaries(&m, &pt);
        let s = mr.summary(f);
        assert!(s.reads.unknown && s.writes.unknown);
        assert!(!s.is_precise());
    }

    #[test]
    fn builtin_memcpy_reads_src_writes_dst() {
        let mut m = Module::new("t");
        let f = m.declare_function("f", vec![], Type::Void);
        let (src, dst);
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            src = b.alloca(Type::I8, 16);
            dst = b.alloca(Type::I8, 16);
            let n = b.const_i64(16);
            b.call_builtin(Builtin::Memcpy, Type::I8.ptr_to(), vec![dst, src, n]);
            b.ret(None);
            b.finish();
        }
        let pt = PointsTo::analyze(&m);
        let mr = mod_ref_summaries(&m, &pt);
        let s = mr.summary(f);
        assert!(s.writes.contains(AbsLoc::Stack(f, dst)));
        assert!(s.reads.contains(AbsLoc::Stack(f, src)));
        assert!(!s.writes.contains(AbsLoc::Stack(f, src)));
    }

    #[test]
    fn escape_analysis_finds_stored_and_passed_slots() {
        let mut m = Module::new("t");
        let gp = m.define_global("p", Type::I32.ptr_to(), GlobalInit::Zeroed);
        let callee = m.declare_function("callee", vec![Type::I32.ptr_to()], Type::Void);
        let f = m.declare_function("f", vec![], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, callee);
            b.ret(None);
            b.finish();
        }
        let (stored, passed, private);
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            stored = b.alloca(Type::I32, 1);
            passed = b.alloca(Type::I32, 1);
            private = b.alloca(Type::I32, 1);
            // stored's address is written into a global cell.
            let cell = b.const_value(ConstValue::GlobalAddr(gp));
            b.store(Type::I32.ptr_to(), cell, stored);
            // passed's address crosses into callee.
            b.call(callee, vec![passed]);
            // private never leaves the frame.
            let v = b.const_i32(1);
            b.store(Type::I32, private, v);
            b.ret(None);
            b.finish();
        }
        let pt = PointsTo::analyze(&m);
        let esc = escape_analysis(&m, &pt);
        assert!(esc.escapes(AbsLoc::Stack(f, stored)));
        assert!(esc.escapes(AbsLoc::Stack(f, passed)));
        assert!(!esc.escapes(AbsLoc::Stack(f, private)));
        assert!(esc.escapes(AbsLoc::Global(gp)), "globals always escape");
    }

    #[test]
    fn footprint_lowers_globals_precisely_and_stack_coarsely() {
        let (m, [_, writer, _], [ga, _]) = modref_module();
        let pt = PointsTo::analyze(&m);
        let mr = mod_ref_summaries(&m, &pt);
        let layout = TargetAbi::MobileArm32.data_layout();
        let sp = space();
        let rf = region_footprint(&sp, &m, &layout, &mr.summary(writer));
        // Both globals land on the first globals page.
        let gpage = sp.globals_base / sp.page_size;
        assert_eq!(rf.write.pages(), &[gpage]);
        assert!(rf.write.is_exact());
        assert!(rf.write.contains(gpage));
        assert!(!rf.write.contains(gpage + 1));
        let _ = ga;

        // A stack write lowers to the whole stack segment.
        let mut stack_set = PtsSet::empty();
        stack_set.insert(AbsLoc::Stack(writer, ValueId(0)));
        let fp = lower_footprint(&sp, &m, &layout, &stack_set);
        assert!(fp.pages().is_empty());
        assert_eq!(fp.ranges(), &[sp.stack_pages]);
        assert!(fp.contains(sp.stack_pages.0) && !fp.contains(sp.stack_pages.1));
        assert!(!fp.is_exact());
    }

    #[test]
    fn global_extents_respect_align_floor() {
        let mut m = Module::new("t");
        m.define_global("c", Type::I8, GlobalInit::Zeroed);
        m.define_global("d", Type::I8, GlobalInit::Zeroed);
        let sp = space();
        let layout = TargetAbi::MobileArm32.data_layout();
        let ext = sp.global_extents(&m, &layout);
        assert_eq!(ext[0].0, sp.globals_base);
        assert_eq!(ext[1].0, sp.globals_base + 16, "floor alignment of 16");
    }

    #[test]
    fn proven_readonly_excludes_written_pages() {
        let (m, [main, _, _], _) = modref_module();
        let pt = PointsTo::analyze(&m);
        let mr = mod_ref_summaries(&m, &pt);
        let layout = TargetAbi::MobileArm32.data_layout();
        let sp = space();
        let rf = region_footprint(&sp, &m, &layout, &mr.summary(main));
        let ro = proven_readonly_pages(&sp, &m, &layout, &rf.write);
        // One globals page exists and main writes it: nothing is proven.
        assert!(ro.is_empty());

        // A pure reader proves the whole segment read-only.
        let empty = PageFootprint::default();
        let ro2 = proven_readonly_pages(&sp, &m, &layout, &empty);
        assert_eq!(ro2, vec![sp.globals_base / sp.page_size]);

        // Unknown writes prove nothing.
        let top = lower_footprint(&sp, &m, &layout, &PtsSet::top());
        assert!(top.unknown);
        assert!(proven_readonly_pages(&sp, &m, &layout, &top).is_empty());
    }

    #[test]
    fn region_lints_flag_escaping_write_and_unbounded_call() {
        let mut m = Module::new("t");
        let gp = m.define_global("p", Type::I32.ptr_to(), GlobalInit::Zeroed);
        let ext = m.declare_function("ext", vec![], Type::I64);
        let f = m.declare_function("f", vec![], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let slot = b.alloca(Type::I32, 1);
            // Escape the slot, then write through it.
            let cell = b.const_value(ConstValue::GlobalAddr(gp));
            b.store(Type::I32.ptr_to(), cell, slot);
            let v = b.const_i32(1);
            b.store(Type::I32, slot, v);
            // Unbounded indirect call: the pointer comes from unknown
            // external code, so its provenance is top.
            let fp_ty = Type::Func(Box::new(crate::types::FuncSig {
                params: vec![],
                ret: Type::Void,
            }))
            .ptr_to();
            let p = b.call(ext, vec![]).unwrap();
            let fp = b.cast(crate::inst::CastKind::IntToPtr, fp_ty, p);
            b.call_indirect(fp, Type::Void, vec![]);
            b.ret(None);
            b.finish();
        }
        let pt = PointsTo::analyze(&m);
        let esc = escape_analysis(&m, &pt);
        let diags = run_region_lints(&m, &pt, &esc, &[f]);
        let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::EscapingLocalWrite), "{diags:?}");
        assert!(codes.contains(&Code::UnboundedIndirectWrite), "{diags:?}");

        // A root that doesn't reach f raises neither.
        let other = m.declare_function("other", vec![], Type::Void);
        {
            let mut b = FunctionBuilder::new(&mut m, other);
            b.ret(None);
            b.finish();
        }
        let pt2 = PointsTo::analyze(&m);
        let esc2 = escape_analysis(&m, &pt2);
        let none = run_region_lints(&m, &pt2, &esc2, &[other]);
        assert!(none.is_empty(), "{none:?}");
    }
}
