//! Host-side microbenchmarks of the simulation substrate itself: IR
//! interpretation throughput, the LZ codec, paged-memory access, and the
//! MiniC front-end. These measure *wall-clock* performance of the
//! simulator (unlike the figure benches, which report simulated time).

use offload_bench::micro;
use offload_machine::host::LocalHost;
use offload_machine::loader;
use offload_machine::mem::{BackingPolicy, Memory};
use offload_machine::target::TargetSpec;
use offload_machine::vm::{StackBank, Vm};
use offload_net::lz;

const HOT_LOOP: &str = "
    int main() {
        int i; long acc = 0;
        for (i = 0; i < 200000; i++) acc += (i * 7) % 31;
        return (int)(acc % 97);
    }";

fn bench_interpreter() {
    let module = offload_minic::compile(HOT_LOOP, "hot").expect("compiles");
    let spec = TargetSpec::xps_8700();
    // ~1.4M instructions per run.
    let stats = micro::wall("substrate/interpreter/hot_loop", 5, || {
        let image = loader::load(&module, &spec.data_layout()).expect("loads");
        let mut host = LocalHost::new();
        let mut vm = Vm::new(&module, &spec, image, StackBank::Mobile);
        vm.run_entry(&mut host).expect("runs")
    });
    println!(
        "substrate/interpreter/hot_loop               {:.1} M inst/s",
        1_400_000.0 / stats.mean_s / 1e6
    );
}

fn bench_codec() {
    let compressible: Vec<u8> = (0..262_144u32).map(|i| ((i / 13) % 40) as u8).collect();
    let mut x = 0x2545_F491u32;
    let noise: Vec<u8> = (0..262_144)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            (x >> 24) as u8
        })
        .collect();
    micro::wall_bytes("substrate/lz/compress_compressible", 5, 262_144, || {
        lz::compress(&compressible)
    });
    micro::wall_bytes("substrate/lz/compress_noise", 5, 262_144, || {
        lz::compress(&noise)
    });
    let packed = lz::compress(&compressible);
    micro::wall_bytes("substrate/lz/decompress", 5, 262_144, || {
        lz::decompress(&packed).expect("roundtrips")
    });
}

fn bench_memory() {
    micro::wall_bytes("substrate/memory/write_read_1mb", 5, 1 << 20, || {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        let chunk = [0xA5u8; 4096];
        for page in 0..256u64 {
            m.write(page * 4096, &chunk).expect("writes");
        }
        let mut buf = [0u8; 4096];
        for page in 0..256u64 {
            m.read(page * 4096, &mut buf).expect("reads");
        }
        m.dirty_count()
    });
}

fn bench_frontend() {
    let source = offload_workloads::by_short_name("sjeng")
        .expect("exists")
        .source;
    micro::wall("substrate/minic/compile_sjeng_miniature", 5, || {
        offload_minic::compile(source, "sjeng").expect("compiles")
    });
}

fn main() {
    bench_interpreter();
    bench_codec();
    bench_memory();
    bench_frontend();
}
