//! Loop outlining: turning a hot natural loop into a callable function.
//!
//! The paper offloads *loops* as well as functions (`for_i` in the chess
//! example; `try_place_while.cond`, `main_for.cond` and friends in
//! Table 4). An offload target must be invocable remotely, so a selected
//! loop is outlined: its body blocks move into a fresh function, live-in
//! registers become parameters, and the original loop header is replaced
//! by a call. Because the front-end lowers all locals to entry-block
//! allocas, cross-iteration state flows through memory and the outlined
//! body needs no live-out plumbing — a loop qualifies iff it has no `ret`
//! inside, a single exit target, and no register defined inside and used
//! outside.

use std::collections::{BTreeMap, BTreeSet};

use offload_ir::analysis::loops::Loop;
use offload_ir::{Block, BlockId, FuncId, Inst, Module, Type, ValueId};

/// Why a loop could not be outlined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutlineReject {
    /// The body contains a `ret`.
    ReturnsInside,
    /// More than one distinct exit target.
    MultipleExits,
    /// No exit at all (infinite loop).
    NoExit,
    /// A register defined inside is used outside.
    LiveOut(ValueId),
}

/// Outline `l` (a loop of `func_id`) into a new function named
/// `{func}_loop{tag}`. On success the module is rewritten in place and the
/// new function's id is returned.
///
/// # Errors
///
/// Returns an [`OutlineReject`] describing why the loop is ineligible;
/// the module is untouched in that case.
pub fn outline_loop(
    module: &mut Module,
    func_id: FuncId,
    l: &Loop,
    tag: usize,
) -> Result<FuncId, OutlineReject> {
    let func = module.function(func_id);

    // -- eligibility ----------------------------------------------------
    // Exit targets get an index; the outlined function returns the index
    // of the exit it took and the rewritten parent branches on it — this
    // is what lets loops containing `break` (and even early `return`,
    // whose ret-block is an exit target) outline cleanly.
    let mut exit_targets: Vec<BlockId> = Vec::new();
    for bb in &l.body {
        let block = &func.blocks[bb.0 as usize];
        if block.insts.iter().any(|i| matches!(i, Inst::Ret { .. })) {
            return Err(OutlineReject::ReturnsInside);
        }
        for succ in func.successors(*bb) {
            if !l.body.contains(&succ) && !exit_targets.contains(&succ) {
                exit_targets.push(succ);
            }
        }
    }
    if exit_targets.is_empty() {
        return Err(OutlineReject::NoExit);
    }
    if exit_targets.len() > 8 {
        return Err(OutlineReject::MultipleExits);
    }

    // Registers defined inside the body.
    let mut defined_inside: BTreeSet<ValueId> = BTreeSet::new();
    for bb in &l.body {
        for inst in &func.blocks[bb.0 as usize].insts {
            if let Some(d) = inst.dst() {
                defined_inside.insert(d);
            }
        }
    }
    // Any use outside the body of a register defined inside?
    for (bb, block) in func.iter_blocks() {
        if l.body.contains(&bb) {
            continue;
        }
        for inst in &block.insts {
            let mut uses = Vec::new();
            inst.uses(&mut uses);
            if let Some(v) = uses.iter().find(|v| defined_inside.contains(v)) {
                return Err(OutlineReject::LiveOut(*v));
            }
        }
    }
    // Live-ins: used inside, defined outside.
    let mut live_ins: Vec<ValueId> = Vec::new();
    let mut seen: BTreeSet<ValueId> = BTreeSet::new();
    for bb in &l.body {
        for inst in &func.blocks[bb.0 as usize].insts {
            let mut uses = Vec::new();
            inst.uses(&mut uses);
            for v in uses {
                if !defined_inside.contains(&v) && seen.insert(v) {
                    live_ins.push(v);
                }
            }
        }
    }
    let live_in_types: Vec<Type> = live_ins
        .iter()
        .map(|v| func.value_type(*v).clone())
        .collect();

    // -- build the outlined function --------------------------------------
    let parent_name = func.name.clone();
    let body_blocks: Vec<BlockId> = {
        // Header first (it becomes the entry of the new function).
        let mut v: Vec<BlockId> = vec![l.header];
        v.extend(l.body.iter().copied().filter(|b| *b != l.header));
        v
    };
    let block_map: BTreeMap<BlockId, BlockId> = body_blocks
        .iter()
        .enumerate()
        .map(|(i, bb)| (*bb, BlockId(i as u32)))
        .collect();
    // One return block per exit target, yielding the exit's index.
    let ret_block_base = body_blocks.len() as u32;

    let new_id = module.declare_function(
        format!("{parent_name}_loop{tag}"),
        live_in_types.clone(),
        Type::I32,
    );

    // Register remap: live-ins -> params, inside defs -> fresh ids.
    let mut value_map: BTreeMap<ValueId, ValueId> = BTreeMap::new();
    for (i, v) in live_ins.iter().enumerate() {
        value_map.insert(*v, ValueId(i as u32));
    }
    {
        let src_func = module.function(func_id).clone();
        let mut new_value_types = live_in_types;
        for bb in &body_blocks {
            for inst in &src_func.blocks[bb.0 as usize].insts {
                if let Some(d) = inst.dst() {
                    new_value_types.push(src_func.value_type(d).clone());
                    value_map.insert(d, ValueId(new_value_types.len() as u32 - 1));
                }
            }
        }
        let exit_index = |b: BlockId| exit_targets.iter().position(|t| *t == b).map(|i| i as u32);
        let remap_v = |v: ValueId| *value_map.get(&v).expect("mapped register");
        let remap_b = |b: BlockId| match exit_index(b) {
            Some(i) => BlockId(ret_block_base + i),
            None => *block_map.get(&b).expect("mapped block"),
        };
        let mut new_blocks: Vec<Block> = Vec::with_capacity(body_blocks.len() + exit_targets.len());
        for bb in &body_blocks {
            let insts = src_func.blocks[bb.0 as usize]
                .insts
                .iter()
                .map(|inst| remap_inst(inst, &remap_v, &remap_b))
                .collect();
            new_blocks.push(Block { insts });
        }
        for (i, _) in exit_targets.iter().enumerate() {
            let c = ValueId(new_value_types.len() as u32);
            new_value_types.push(Type::I32);
            new_blocks.push(Block {
                insts: vec![
                    Inst::Const {
                        dst: c,
                        value: offload_ir::ConstValue::I32(i as i32),
                    },
                    Inst::Ret { value: Some(c) },
                ],
            });
        }
        let nf = module.function_mut(new_id);
        nf.blocks = new_blocks;
        nf.value_types = new_value_types;
    }

    // -- rewrite the parent -------------------------------------------------
    // The header block becomes: sel = call outlined(live_ins...); then a
    // branch chain on `sel` to the exit targets. Back edges vanish; other
    // body blocks become unreachable stubs.
    {
        let func = module.function_mut(func_id);
        let sel = ValueId(func.value_types.len() as u32);
        func.value_types.push(Type::I32);
        let mut insts = vec![Inst::Call {
            dst: Some(sel),
            callee: offload_ir::Callee::Direct(new_id),
            args: live_ins.clone(),
        }];
        if exit_targets.len() == 1 {
            insts.push(Inst::Br {
                target: exit_targets[0],
            });
        } else {
            // Branch chain: header holds the first test; extra chain blocks
            // are appended at the end of the function.
            let mut chain_blocks: Vec<BlockId> = Vec::new();
            for _ in 0..exit_targets.len() - 2 {
                chain_blocks.push(BlockId(
                    func.blocks.len() as u32 + chain_blocks.len() as u32,
                ));
            }
            for (i, target) in exit_targets.iter().enumerate().take(exit_targets.len() - 1) {
                let c = ValueId(func.value_types.len() as u32);
                func.value_types.push(Type::I32);
                let hit = ValueId(func.value_types.len() as u32);
                func.value_types.push(Type::I32);
                let else_bb = if i + 1 < exit_targets.len() - 1 {
                    chain_blocks[i]
                } else {
                    *exit_targets.last().expect("non-empty")
                };
                let test = vec![
                    Inst::Const {
                        dst: c,
                        value: offload_ir::ConstValue::I32(i as i32),
                    },
                    Inst::Cmp {
                        dst: hit,
                        op: offload_ir::CmpOp::Eq,
                        ty: Type::I32,
                        lhs: sel,
                        rhs: c,
                    },
                    Inst::CondBr {
                        cond: hit,
                        then_bb: *target,
                        else_bb,
                    },
                ];
                if i == 0 {
                    insts.extend(test);
                } else {
                    func.blocks.push(Block { insts: test });
                }
            }
        }
        func.blocks[l.header.0 as usize].insts = insts;
        for bb in &l.body {
            if *bb != l.header {
                func.blocks[bb.0 as usize].insts = vec![Inst::Br { target: l.header }];
            }
        }
    }
    Ok(new_id)
}

fn remap_inst(
    inst: &Inst,
    rv: &impl Fn(ValueId) -> ValueId,
    rb: &impl Fn(BlockId) -> BlockId,
) -> Inst {
    use Inst::*;
    match inst {
        Const { dst, value } => Const {
            dst: rv(*dst),
            value: value.clone(),
        },
        Alloca { dst, ty, count } => Alloca {
            dst: rv(*dst),
            ty: ty.clone(),
            count: *count,
        },
        Load { dst, ty, addr } => Load {
            dst: rv(*dst),
            ty: ty.clone(),
            addr: rv(*addr),
        },
        Store { ty, addr, value } => Store {
            ty: ty.clone(),
            addr: rv(*addr),
            value: rv(*value),
        },
        FieldAddr {
            dst,
            base,
            sid,
            field,
        } => FieldAddr {
            dst: rv(*dst),
            base: rv(*base),
            sid: *sid,
            field: *field,
        },
        IndexAddr {
            dst,
            base,
            elem,
            index,
        } => IndexAddr {
            dst: rv(*dst),
            base: rv(*base),
            elem: elem.clone(),
            index: rv(*index),
        },
        Bin {
            dst,
            op,
            ty,
            lhs,
            rhs,
        } => Bin {
            dst: rv(*dst),
            op: *op,
            ty: ty.clone(),
            lhs: rv(*lhs),
            rhs: rv(*rhs),
        },
        Un {
            dst,
            op,
            ty,
            operand,
        } => Un {
            dst: rv(*dst),
            op: *op,
            ty: ty.clone(),
            operand: rv(*operand),
        },
        Cmp {
            dst,
            op,
            ty,
            lhs,
            rhs,
        } => Cmp {
            dst: rv(*dst),
            op: *op,
            ty: ty.clone(),
            lhs: rv(*lhs),
            rhs: rv(*rhs),
        },
        Cast { dst, kind, to, src } => Cast {
            dst: rv(*dst),
            kind: *kind,
            to: to.clone(),
            src: rv(*src),
        },
        Call { dst, callee, args } => Call {
            dst: dst.map(rv),
            callee: match callee {
                offload_ir::Callee::Indirect(v) => offload_ir::Callee::Indirect(rv(*v)),
                other => other.clone(),
            },
            args: args.iter().map(|a| rv(*a)).collect(),
        },
        Ret { value } => Ret {
            value: value.map(rv),
        },
        Br { target } => Br {
            target: rb(*target),
        },
        CondBr {
            cond,
            then_bb,
            else_bb,
        } => CondBr {
            cond: rv(*cond),
            then_bb: rb(*then_bb),
            else_bb: rb(*else_bb),
        },
        InlineAsm { text } => InlineAsm { text: text.clone() },
        Syscall { dst, number, args } => Syscall {
            dst: rv(*dst),
            number: *number,
            args: args.iter().map(|a| rv(*a)).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_ir::analysis::LoopForest;
    use offload_ir::verify::verify_module;
    use offload_machine::host::LocalHost;
    use offload_machine::loader;
    use offload_machine::target::TargetSpec;
    use offload_machine::vm::{StackBank, Vm};

    fn run_module(module: &Module, stdin: &str) -> String {
        verify_module(module).unwrap();
        let spec = TargetSpec::galaxy_s5();
        let image = loader::load(module, &spec.data_layout()).unwrap();
        let mut host = LocalHost::new();
        host.set_stdin(stdin);
        let mut vm = Vm::new(module, &spec, image, StackBank::Mobile);
        vm.set_fuel(500_000_000);
        vm.run_entry(&mut host).unwrap();
        host.console_utf8()
    }

    const SUMMING: &str = "
        int main() {
            int i; long acc = 0;
            for (i = 0; i < 1000; i++) acc += i * 3;
            printf(\"%d\\n\", (int)(acc % 10007));
            return 0;
        }";

    fn outline_first_loop(src: &str) -> (Module, FuncId) {
        let mut m = offload_minic::compile(src, "t").unwrap();
        let main = m.entry.unwrap();
        let forest = LoopForest::compute(m.function(main));
        let outer = forest
            .loops
            .iter()
            .find(|l| l.depth == 1)
            .expect("has a loop")
            .clone();
        let f = outline_loop(&mut m, main, &outer, 0).unwrap();
        (m, f)
    }

    #[test]
    fn outlined_program_is_equivalent() {
        let baseline = run_module(&offload_minic::compile(SUMMING, "t").unwrap(), "");
        let (m, f) = outline_first_loop(SUMMING);
        assert_eq!(m.function(f).name, "main_loop0");
        assert_eq!(run_module(&m, ""), baseline);
    }

    #[test]
    fn nested_loops_outline_as_a_unit() {
        let src = "
            int main() {
                int i; int j; long acc = 0;
                for (i = 0; i < 40; i++)
                    for (j = 0; j < 40; j++)
                        acc += i ^ j;
                printf(\"%d\\n\", (int)(acc % 9973));
                return 0;
            }";
        let baseline = run_module(&offload_minic::compile(src, "t").unwrap(), "");
        let (m, _) = outline_first_loop(src);
        assert_eq!(run_module(&m, ""), baseline);
    }

    #[test]
    fn loop_with_break_outlines() {
        let src = "
            int main() {
                int i; long acc = 0;
                for (i = 0; i < 100000; i++) { acc += i; if (acc > 5000) break; }
                printf(\"%d %d\\n\", i, (int)acc);
                return 0;
            }";
        let baseline = run_module(&offload_minic::compile(src, "t").unwrap(), "");
        let (m, _) = outline_first_loop(src);
        assert_eq!(run_module(&m, ""), baseline);
    }

    #[test]
    fn loop_reading_memory_state_outlines() {
        // Cross-iteration state through allocas and heap: the common case.
        let src = "
            int main() {
                int *data = (int*)malloc(sizeof(int) * 256);
                int i;
                for (i = 0; i < 256; i++) data[i] = i * i;
                long sum = 0;
                for (i = 0; i < 256; i++) sum += data[i];
                printf(\"%d\\n\", (int)(sum % 65521));
                return 0;
            }";
        let mut m = offload_minic::compile(src, "t").unwrap();
        let baseline = run_module(&offload_minic::compile(src, "t").unwrap(), "");
        let main = m.entry.unwrap();
        let forest = LoopForest::compute(m.function(main));
        // Outline BOTH top-level loops.
        let mut loops: Vec<Loop> = forest
            .loops
            .iter()
            .filter(|l| l.depth == 1)
            .cloned()
            .collect();
        loops.sort_by_key(|l| l.header);
        assert_eq!(loops.len(), 2);
        for (i, l) in loops.iter().enumerate() {
            outline_loop(&mut m, main, l, i).unwrap();
        }
        assert_eq!(run_module(&m, ""), baseline);
    }

    #[test]
    fn loop_with_early_return_outlines_via_exit_selector() {
        // `return i` inside the loop branches to a ret-block *outside* the
        // loop body; it becomes one of the outlined function's exit
        // targets, selected by the returned index.
        let src = "
            int find(int n) {
                int i;
                for (i = 0; i < n; i++) if (i * i > 50) return i;
                return -1;
            }
            int main() { printf(\"%d %d\\n\", find(100), find(3)); return 0; }";
        let baseline = run_module(&offload_minic::compile(src, "t").unwrap(), "");
        let mut m = offload_minic::compile(src, "t").unwrap();
        let find = m.function_by_name("find").unwrap();
        let forest = LoopForest::compute(m.function(find));
        let f = outline_loop(&mut m, find, &forest.loops[0].clone(), 0).unwrap();
        assert_eq!(m.function(f).ret, offload_ir::Type::I32, "exit selector");
        assert_eq!(run_module(&m, ""), baseline);
    }

    #[test]
    fn loop_without_static_exit_is_rejected() {
        let src = "int main() { for (;;) { } return 0; }";
        let mut m = offload_minic::compile(src, "t").unwrap();
        let main = m.entry.unwrap();
        let forest = LoopForest::compute(m.function(main));
        let err = outline_loop(&mut m, main, &forest.loops[0].clone(), 0).unwrap_err();
        assert_eq!(err, OutlineReject::NoExit);
    }

    #[test]
    fn statically_exiting_while_true_outlines() {
        // `while (1)` has a static exit edge even though it never fires at
        // run time; outlining it is legal.
        let src = "int main() { int i = 0; while (1) { i++; if (i > 5) break; } printf(\"%d\\n\", i); return 0; }";
        let baseline = run_module(&offload_minic::compile(src, "t").unwrap(), "");
        let (m, _) = outline_first_loop(src);
        assert_eq!(run_module(&m, ""), baseline);
    }
}
