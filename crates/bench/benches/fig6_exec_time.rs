//! Fig. 6 bench: local vs offloaded execution time (simulated seconds via
//! `iter_custom`) for representative workloads from each Fig. 6 class —
//! near-ideal (hmmer), interactive multi-invocation (sjeng), and
//! communication-bound (gzip).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use native_offloader::SessionConfig;
use offload_workloads::by_short_name;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_exec_time");
    group.sample_size(10);

    for short in ["hmmer", "sjeng", "gzip"] {
        let w = by_short_name(short).expect("workload exists");
        let app = w.compile().expect("compiles");
        let input = (w.eval_input)();

        group.bench_with_input(BenchmarkId::new("local", short), &(), |b, ()| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += app.run_local(&input).expect("local").total_seconds;
                }
                Duration::from_secs_f64(total)
            });
        });
        for (net, cfg) in [
            ("slow", SessionConfig::slow_network()),
            ("fast", SessionConfig::fast_network()),
            ("ideal", SessionConfig::ideal_network()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(net, short),
                &cfg,
                |b, cfg| {
                    b.iter_custom(|iters| {
                        let mut total = 0.0;
                        for _ in 0..iters {
                            total += app.run_offloaded(&input, cfg).expect("offloaded").total_seconds;
                        }
                        Duration::from_secs_f64(total)
                    });
                },
            );
        }

        let local = app.run_local(&input).expect("local");
        let fast = app.run_offloaded(&input, &SessionConfig::fast_network()).expect("fast");
        let slow = app.run_offloaded(&input, &SessionConfig::slow_network()).expect("slow");
        println!(
            "[fig6a] {short}: local {:.1} ms, slow {:.3} (off {}), fast {:.3} (off {})",
            local.total_seconds * 1e3,
            slow.normalized_time(&local),
            slow.offloads_performed,
            fast.normalized_time(&local),
            fast.offloads_performed,
        );
        println!(
            "[fig6b] {short}: battery slow {:.3}, fast {:.3} (normalized)",
            slow.normalized_energy(&local),
            fast.normalized_energy(&local),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Simulated-time measurements are deterministic (zero variance), which
    // breaks Criterion's plot generation; plots stay off.
    config = Criterion::default().without_plots();
    targets = bench_fig6
}
criterion_main!(benches);
