//! Fig. 6 bench: local vs offloaded execution time (simulated seconds)
//! for representative workloads from each Fig. 6 class — near-ideal
//! (hmmer), interactive multi-invocation (sjeng), and
//! communication-bound (gzip).

use native_offloader::SessionConfig;
use offload_bench::micro;
use offload_workloads::by_short_name;

fn main() {
    for short in ["hmmer", "sjeng", "gzip"] {
        let w = by_short_name(short).expect("workload exists");
        let app = w.compile().expect("compiles");
        let input = (w.eval_input)();

        micro::simulated(&format!("fig6_exec_time/local/{short}"), 3, || {
            app.run_local(&input).expect("local").total_seconds
        });
        for (net, cfg) in [
            ("slow", SessionConfig::slow_network()),
            ("fast", SessionConfig::fast_network()),
            ("ideal", SessionConfig::ideal_network()),
        ] {
            micro::simulated(&format!("fig6_exec_time/{net}/{short}"), 3, || {
                app.run_offloaded(&input, &cfg)
                    .expect("offloaded")
                    .total_seconds
            });
        }

        let local = app.run_local(&input).expect("local");
        let fast = app
            .run_offloaded(&input, &SessionConfig::fast_network())
            .expect("fast");
        let slow = app
            .run_offloaded(&input, &SessionConfig::slow_network())
            .expect("slow");
        println!(
            "[fig6a] {short}: local {:.1} ms, slow {:.3} (off {}), fast {:.3} (off {})",
            local.total_seconds * 1e3,
            slow.normalized_time(&local),
            slow.offloads_performed,
            fast.normalized_time(&local),
            fast.offloads_performed,
        );
        println!(
            "[fig6b] {short}: battery slow {:.3}, fast {:.3} (normalized)",
            slow.normalized_energy(&local),
            fast.normalized_energy(&local),
        );
    }
}
