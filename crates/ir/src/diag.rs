//! Diagnostics: stable codes, severities, notes and a rustc-style renderer.
//!
//! Every verdict the offload compiler reaches — "this function is machine
//! specific", "this cast breaks the unified virtual address space" — is
//! expressible as a [`Diagnostic`] with a stable [`Code`], so tools (and
//! CI) can match on `OFF012` instead of message text. The codes cover the
//! paper's §3.1 filter taxonomy (inline asm, syscalls, unknown externals,
//! interactive I/O), the function-pointer resolution the filter needs to be
//! sound (`OFF006`/`OFF007`), the §3.2 UVA pointer-portability hazards
//! (`OFF010`–`OFF012`), and general code-quality lints (`OFF020`–`OFF022`).
//!
//! Rendering mimics rustc:
//!
//! ```text
//! error[OFF010]: pointer narrowed by ptrtoint to i32
//!   --> chess::hash bb2[5]
//!   = note: server addresses are 64-bit; the low 32 bits do not identify a page
//! ```

use std::fmt;

use crate::module::{BlockId, FuncId};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Explanatory: context for a verdict, reason-chain links.
    Info,
    /// Suspicious construct; does not by itself disqualify offload.
    Warning,
    /// A hazard that makes the construct unsafe to offload (or the IR
    /// outright wrong). CI fails shipped workloads on these.
    Error,
}

impl Severity {
    /// Stable lowercase name (`error` / `warning` / `info`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

/// Stable diagnostic codes. The numeric value is part of the public
/// contract: tests and CI match on `OFF%03d` strings, so variants must
/// never be renumbered — only appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `OFF001`: inline assembly — machine specific by definition (§3.1).
    InlineAsm = 1,
    /// `OFF002`: raw system call (§3.1).
    Syscall = 2,
    /// `OFF003`: call to an unknown external library function (§3.1).
    UnknownExternal = 3,
    /// `OFF004`: interactive I/O (`scanf`, `getchar`) or other
    /// non-remotable builtin (§3.1, §3.4).
    InteractiveIo = 4,
    /// `OFF005`: direct call to a machine-specific function — taint
    /// propagated up the call graph (§3.1).
    TaintedCallee = 5,
    /// `OFF006`: indirect call whose target set the points-to analysis
    /// could not bound; conservatively machine specific.
    IndirectUnbounded = 6,
    /// `OFF007`: indirect call whose bounded target set contains a
    /// machine-specific function.
    IndirectTainted = 7,
    /// `OFF010`: `ptrtoint` into an integer narrower than the widest
    /// target address size — the round-trip loses address bits on the
    /// 64-bit server (§3.2 UVA hazard).
    PtrToIntNarrow = 10,
    /// `OFF011`: `inttoptr` from an integer with no pointer provenance —
    /// the numeric value is device specific, so the fabricated pointer is
    /// meaningless on the other device (§3.2).
    IntToPtrNoProvenance = 11,
    /// `OFF012`: a pointer-derived integer escapes into opaque arithmetic
    /// (multiplication, masking, narrowing) that UVA translation cannot
    /// see through (§3.2).
    PtrProvenanceEscape = 12,
    /// `OFF020`: a stack slot is written but never read.
    DeadStore = 20,
    /// `OFF021`: a block is unreachable from the function entry.
    UnreachableBlock = 21,
    /// `OFF022`: a non-void function has a path that falls off the end
    /// without returning a value.
    MissingReturn = 22,
    /// `OFF030`: an offload region writes through a stack slot whose
    /// address escapes its frame — the write lands on state that outlives
    /// the region, so the footprint certificate must cover it page-coarse.
    EscapingLocalWrite = 30,
    /// `OFF031`: an offload region performs an indirect call whose target
    /// set is unbounded — its may-write summary degrades to "anything",
    /// disabling every certificate-driven runtime optimization.
    UnboundedIndirectWrite = 31,
    /// `OFF032`: the statically certified page footprint of a region
    /// exceeds the memory the profiler observed it touching — the static
    /// summary is much coarser than the dynamic behavior.
    FootprintExceedsMemory = 32,
    /// `OFF033`: a page one region proves read-only is in the may-write
    /// set of a sibling region — baseline-snapshot skipping stays sound
    /// (certificates are per-region) but the cross-region write defeats
    /// any whole-program read-only assumption.
    ReadonlyPageDirtied = 33,
}

impl Code {
    /// The numeric part of the `OFFxxx` code.
    pub fn number(self) -> u16 {
        self as u16
    }

    /// The default severity this code is reported at.
    pub fn default_severity(self) -> Severity {
        use Code::*;
        match self {
            // Machine-specific findings are verdict *explanations*: the
            // program is still valid, it just cannot offload that region.
            InlineAsm | Syscall | UnknownExternal | InteractiveIo | TaintedCallee
            | IndirectTainted => Severity::Info,
            IndirectUnbounded => Severity::Warning,
            // UVA hazards: a narrowed pointer is flatly broken on the
            // server; the other two are suspicious but often benign.
            PtrToIntNarrow => Severity::Error,
            IntToPtrNoProvenance | PtrProvenanceEscape => Severity::Warning,
            DeadStore | UnreachableBlock | MissingReturn => Severity::Warning,
            // Certificate-precision findings: the program is still correct
            // (the dynamic oracle enforces soundness); these flag lost
            // optimization opportunity or cross-region hazards.
            EscapingLocalWrite
            | UnboundedIndirectWrite
            | FootprintExceedsMemory
            | ReadonlyPageDirtied => Severity::Warning,
        }
    }

    /// One-line description of what the code means.
    pub fn title(self) -> &'static str {
        use Code::*;
        match self {
            InlineAsm => "inline assembly is machine specific",
            Syscall => "raw system calls are machine specific",
            UnknownExternal => "call to unknown external function",
            InteractiveIo => "interactive I/O cannot execute remotely",
            TaintedCallee => "calls a machine-specific function",
            IndirectUnbounded => "indirect call with unbounded target set",
            IndirectTainted => "indirect call may reach a machine-specific function",
            PtrToIntNarrow => "pointer narrowed below server address size",
            IntToPtrNoProvenance => "pointer fabricated from non-provenance integer",
            PtrProvenanceEscape => "pointer-derived value escapes into opaque arithmetic",
            DeadStore => "stack slot is written but never read",
            UnreachableBlock => "unreachable block",
            MissingReturn => "non-void function may fall off the end",
            EscapingLocalWrite => "offload region writes an escaping stack slot",
            UnboundedIndirectWrite => "unbounded indirect call defeats the write summary",
            FootprintExceedsMemory => "certified footprint exceeds profiled memory",
            ReadonlyPageDirtied => "read-only page is written by a sibling region",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OFF{:03}", self.number())
    }
}

/// An instruction position: block + index within the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Site {
    /// The block.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: u32,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.block, self.inst)
    }
}

/// One diagnostic: a coded finding at an (optional) location, with notes.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (usually [`Code::default_severity`]).
    pub severity: Severity,
    /// The function the finding is in, if any.
    pub func: Option<FuncId>,
    /// The instruction, if the finding points at one.
    pub site: Option<Site>,
    /// Primary message.
    pub message: String,
    /// Attached notes (reason-chain links, remediation hints).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic at this code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            func: None,
            site: None,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attach the enclosing function.
    #[must_use]
    pub fn in_func(mut self, func: FuncId) -> Self {
        self.func = Some(func);
        self
    }

    /// Attach the instruction site.
    #[must_use]
    pub fn at(mut self, block: BlockId, inst: u32) -> Self {
        self.site = Some(Site { block, inst });
        self
    }

    /// Attach a note.
    #[must_use]
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Override the severity.
    #[must_use]
    pub fn severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Render rustc-style. `lookup` resolves a function id to a display
    /// name (pass the module name too if you want `module::func` paths).
    pub fn render(&self, lookup: &dyn Fn(FuncId) -> String) -> String {
        let mut out = format!(
            "{}[{}]: {}\n",
            self.severity.name(),
            self.code,
            self.message
        );
        if let Some(f) = self.func {
            out.push_str("  --> ");
            out.push_str(&lookup(f));
            if let Some(site) = self.site {
                out.push_str(&format!(" {site}"));
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  = note: {note}\n"));
        }
        out
    }
}

/// An ordered collection of diagnostics with severity tallies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiagnosticBag {
    diags: Vec<Diagnostic>,
}

impl DiagnosticBag {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Append every diagnostic from `other`.
    pub fn extend(&mut self, other: impl IntoIterator<Item = Diagnostic>) {
        self.diags.extend(other);
    }

    /// The diagnostics in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Total diagnostics held.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// `true` if no diagnostics were recorded.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Count of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// `true` if any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Render every diagnostic, one after another.
    pub fn render(&self, lookup: &dyn Fn(FuncId) -> String) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render(lookup));
        }
        out
    }

    /// Consume the bag, yielding the diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.diags
    }
}

impl IntoIterator for DiagnosticBag {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

impl FromIterator<Diagnostic> for DiagnosticBag {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Self {
        DiagnosticBag {
            diags: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(Code::InlineAsm.to_string(), "OFF001");
        assert_eq!(Code::IndirectTainted.to_string(), "OFF007");
        assert_eq!(Code::PtrToIntNarrow.to_string(), "OFF010");
        assert_eq!(Code::MissingReturn.to_string(), "OFF022");
        assert_eq!(Code::EscapingLocalWrite.to_string(), "OFF030");
        assert_eq!(Code::ReadonlyPageDirtied.to_string(), "OFF033");
    }

    #[test]
    fn default_severities() {
        assert_eq!(Code::PtrToIntNarrow.default_severity(), Severity::Error);
        assert_eq!(Code::DeadStore.default_severity(), Severity::Warning);
        assert_eq!(Code::TaintedCallee.default_severity(), Severity::Info);
    }

    #[test]
    fn renders_rustc_style() {
        let d = Diagnostic::new(Code::PtrToIntNarrow, "pointer narrowed to i32")
            .in_func(FuncId(2))
            .at(BlockId(1), 4)
            .note("server addresses are 64-bit");
        let txt = d.render(&|f| format!("app::fn{}", f.0));
        assert!(txt.starts_with("error[OFF010]: pointer narrowed to i32\n"));
        assert!(txt.contains("  --> app::fn2 bb1[4]\n"));
        assert!(txt.contains("  = note: server addresses are 64-bit\n"));
    }

    #[test]
    fn bag_counts_by_severity() {
        let mut bag = DiagnosticBag::new();
        bag.push(Diagnostic::new(Code::PtrToIntNarrow, "a"));
        bag.push(Diagnostic::new(Code::DeadStore, "b"));
        bag.push(Diagnostic::new(Code::TaintedCallee, "c"));
        assert_eq!(bag.len(), 3);
        assert_eq!(bag.count(Severity::Error), 1);
        assert_eq!(bag.count(Severity::Warning), 1);
        assert_eq!(bag.count(Severity::Info), 1);
        assert!(bag.has_errors());
    }

    #[test]
    fn severity_ordering_puts_error_on_top() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
