//! Simulated devices for the Native Offloader reproduction.
//!
//! The paper evaluates on a Samsung Galaxy S5 (ARM, 32-bit) and a Dell XPS
//! 8700 (x86-64) — hardware this repo replaces with *simulated* devices that
//! preserve everything the offload system actually interacts with:
//!
//! * a [`TargetSpec`](target::TargetSpec) naming the ISA, pointer width,
//!   endianness, clock and per-instruction cost model (so the mobile/server
//!   performance ratio `R` of §3.1's Equation 1 is a measured property),
//! * byte-addressable [paged memory](mem::Memory) with present/dirty
//!   tracking — the substrate for the unified virtual address space and its
//!   copy-on-demand / dirty-write-back protocol (§4),
//! * an IR [interpreter](vm::Vm) with host hooks for page faults, I/O and
//!   the offload-runtime builtins, plus cycle accounting,
//! * a [power model](power) reproducing the Monsoon-monitor states of §5.2
//!   (idle / waiting / rx / tx / compute),
//! * a [profile collector](profile::ProfileCollector) feeding the paper's
//!   hot function/loop profiler (§3.1, Table 3).
//!
//! # Example: run a program on the simulated phone
//!
//! ```
//! use offload_machine::{host::LocalHost, loader, target::TargetSpec, vm::Vm};
//!
//! let module = offload_minic::compile(
//!     "int main() { printf(\"%d\\n\", 6 * 7); return 0; }",
//!     "demo",
//! ).unwrap();
//! let spec = TargetSpec::galaxy_s5();
//! let image = loader::load(&module, &spec.data_layout()).unwrap();
//! let mut host = LocalHost::new();
//! let mut vm = Vm::new(&module, &spec, image, offload_machine::vm::StackBank::Mobile);
//! vm.run_entry(&mut host).unwrap();
//! assert_eq!(host.console_utf8(), "42\n");
//! ```

pub mod heap;
pub mod host;
pub mod io;
pub mod loader;
pub mod mem;
pub mod power;
pub mod profile;
pub mod target;
pub mod vm;

/// Byte size of a virtual-memory page (4 KiB, as on both of the paper's
/// platforms).
pub const PAGE_SIZE: u64 = 4096;

/// Default memory map of the unified virtual address space. Every address
/// fits in 32 bits — the mobile pointer width, the unified standard (§3.2).
pub mod uva_map {
    /// Base of the function-address stub region for the mobile back-end.
    pub const MOBILE_FN_BASE: u64 = 0x0000_2000;
    /// Base of the function-address stub region for the server back-end —
    /// deliberately different, so un-translated function pointers fault
    /// (the reason §3.4 needs the function map tables).
    pub const SERVER_FN_BASE: u64 = 0x00F0_0000;
    /// Bytes reserved per function stub.
    pub const FN_STRIDE: u64 = 16;
    /// Base of the globals segment.
    pub const GLOBALS_BASE: u64 = 0x0001_0000;
    /// Base of the device-local (non-unified) heap on the mobile device.
    pub const MOBILE_LOCAL_HEAP: u64 = 0x0800_0000;
    /// Base of the device-local heap on the server. Distinct from the
    /// mobile's: an object `malloc`ed locally is *not* shared — which is
    /// why the memory unifier rewrites every allocation to `u_malloc`.
    pub const SERVER_LOCAL_HEAP: u64 = 0x0900_0000;
    /// Base of the unified heap (`u_malloc` arena).
    pub const UNIFIED_HEAP: u64 = 0x1000_0000;
    /// End of the unified heap.
    pub const UNIFIED_HEAP_END: u64 = 0x5000_0000;
    /// Server stack top (grows down) after stack reallocation (§3.3).
    pub const SERVER_STACK_TOP: u64 = 0x6000_0000;
    /// Mobile stack top (grows down).
    pub const MOBILE_STACK_TOP: u64 = 0x7000_0000;
    /// Stack size per device.
    pub const STACK_SIZE: u64 = 0x0100_0000;
}
