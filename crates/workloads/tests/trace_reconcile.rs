//! Suite-wide trace reconciliation: for all 17 miniatures, the Fig. 7
//! breakdown and every `RunReport` counter derived from the observability
//! event stream are **byte-identical** to the values the session
//! accounted while running — on both networks, with the offload forced
//! (dynamic estimation off) exactly like the paper's Fig. 7 runs.

use native_offloader::runtime::derive::check_reconciliation;
use native_offloader::SessionConfig;
use offload_obs::TraceCollector;

fn forced(mut cfg: SessionConfig) -> SessionConfig {
    cfg.dynamic_estimation = false;
    cfg
}

#[test]
fn fig7_breakdowns_derive_byte_identical_from_traces() {
    for w in offload_workloads::all() {
        let app = w.compile().expect("compiles");
        let input = (w.eval_input)();
        for (net, cfg) in [
            ("slow", forced(SessionConfig::slow_network())),
            ("fast", forced(SessionConfig::fast_network())),
        ] {
            let mut obs = TraceCollector::with_capacity(1 << 20);
            let rep = app
                .run_offloaded_traced(&input, &cfg, &mut obs)
                .expect("runs");
            assert_eq!(
                obs.dropped(),
                0,
                "{}/{net}: ring must hold the whole run",
                w.name
            );
            check_reconciliation(&obs.records(), &rep, &cfg)
                .unwrap_or_else(|e| panic!("{}/{net}: {e}", w.name));
        }
    }
}
