//! The static performance estimator — Equation 1 of the paper.
//!
//! ```text
//! Tg = (Tm − Ts) − Tc
//!    = Tm · (1 − 1/R) − 2 · (M / BW) · Ninvo
//! ```
//!
//! where `Tm` is the measured mobile execution time of the candidate, `R`
//! the mobile/server performance ratio, `M` the candidate's memory
//! footprint, `BW` the assumed bandwidth and `Ninvo` its invocation count.
//! Shared data crosses the network twice (to the server and back), hence
//! the factor 2. A candidate is profitable iff `Tg > 0`.

/// Inputs to one Equation-1 evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateInput {
    /// Measured mobile execution time, seconds (total over the run).
    pub tm_s: f64,
    /// Invocation count.
    pub invocations: u64,
    /// Memory footprint, bytes.
    pub mem_bytes: u64,
    /// Mobile/server performance ratio `R`.
    pub ratio: f64,
    /// Bandwidth, bits per second.
    pub bandwidth_bps: u64,
}

/// The three derived quantities of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// `Tideal = Tm · (1 − 1/R)`, seconds.
    pub t_ideal_s: f64,
    /// `Tc = 2 · (M/BW) · N`, seconds.
    pub t_comm_s: f64,
    /// `Tg = Tideal − Tc`, seconds.
    pub t_gain_s: f64,
}

impl Estimate {
    /// `true` iff offloading is expected to pay off.
    pub fn profitable(&self) -> bool {
        self.t_gain_s > 0.0
    }
}

/// Evaluate Equation 1.
pub fn equation1(input: EstimateInput) -> Estimate {
    let t_ideal_s = input.tm_s * (1.0 - 1.0 / input.ratio);
    let bytes_per_sec = input.bandwidth_bps as f64 / 8.0;
    let t_comm_s = 2.0 * (input.mem_bytes as f64 / bytes_per_sec) * input.invocations as f64;
    Estimate {
        t_ideal_s,
        t_comm_s,
        t_gain_s: t_ideal_s - t_comm_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3's worked example: R = 5, BW = 80 Mbps.
    fn table3(tm_s: f64, invocations: u64, mem_mb: u64) -> Estimate {
        equation1(EstimateInput {
            tm_s,
            invocations,
            mem_bytes: mem_mb * 1_000_000,
            ratio: 5.0,
            bandwidth_bps: 80_000_000,
        })
    }

    #[test]
    fn reproduces_table3_rows() {
        // runGame: 27.0 s, 1 invocation, 20 MB → Tideal 21.6, Tc 4.0, Tg 17.6
        let e = table3(27.0, 1, 20);
        assert!((e.t_ideal_s - 21.6).abs() < 1e-9, "{e:?}");
        assert!((e.t_comm_s - 4.0).abs() < 1e-9, "{e:?}");
        assert!((e.t_gain_s - 17.6).abs() < 1e-9, "{e:?}");
        assert!(e.profitable());

        // getAITurn / for_i: 26.0 s, 3 invocations, 12 MB → 20.8 / 7.2 / 13.6
        let e = table3(26.0, 3, 12);
        assert!((e.t_ideal_s - 20.8).abs() < 1e-9);
        assert!((e.t_comm_s - 7.2).abs() < 1e-9);
        assert!((e.t_gain_s - 13.6).abs() < 1e-9);
        assert!(e.profitable());

        // for_j: 25.0 s, 36 invocations, 12 MB → 20.0 / 86.4 / −66.4
        let e = table3(25.0, 36, 12);
        assert!((e.t_ideal_s - 20.0).abs() < 1e-9);
        assert!((e.t_comm_s - 86.4).abs() < 1e-9);
        assert!((e.t_gain_s + 66.4).abs() < 1e-9);
        assert!(!e.profitable(), "for_j must be rejected, as in the paper");

        // getPlayerTurn: 1.5 s, 3 invocations, 10 MB → 1.2 / 6.0 / −4.8
        let e = table3(1.5, 3, 10);
        assert!((e.t_ideal_s - 1.2).abs() < 1e-9);
        assert!((e.t_comm_s - 6.0).abs() < 1e-9);
        assert!((e.t_gain_s + 4.8).abs() < 1e-9);
        assert!(!e.profitable());
    }

    #[test]
    fn faster_network_flips_marginal_candidates() {
        let slow = equation1(EstimateInput {
            tm_s: 2.0,
            invocations: 1,
            mem_bytes: 20_000_000,
            ratio: 5.0,
            bandwidth_bps: 80_000_000,
        });
        let fast = equation1(EstimateInput {
            bandwidth_bps: 500_000_000,
            ..EstimateInput {
                tm_s: 2.0,
                invocations: 1,
                mem_bytes: 20_000_000,
                ratio: 5.0,
                bandwidth_bps: 80_000_000,
            }
        });
        assert!(!slow.profitable());
        assert!(fast.profitable());
    }

    #[test]
    fn more_invocations_hurt_linearly() {
        let base = EstimateInput {
            tm_s: 10.0,
            invocations: 1,
            mem_bytes: 1_000_000,
            ratio: 5.0,
            bandwidth_bps: 80_000_000,
        };
        let one = equation1(base);
        let twelve = equation1(EstimateInput {
            invocations: 12,
            ..base
        });
        assert!((twelve.t_comm_s - one.t_comm_s * 12.0).abs() < 1e-9);
        assert_eq!(one.t_ideal_s, twelve.t_ideal_s);
    }

    #[test]
    fn huge_ratio_approaches_full_tm() {
        let e = equation1(EstimateInput {
            tm_s: 10.0,
            invocations: 1,
            mem_bytes: 0,
            ratio: 1e9,
            bandwidth_bps: 80_000_000,
        });
        assert!((e.t_gain_s - 10.0).abs() < 1e-6);
    }
}
