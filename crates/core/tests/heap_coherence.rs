//! Integration: unified-heap coherence across repeated offloads. The
//! `u_malloc` arena is shared state (§3.2): an object allocated *on the
//! server* during one offload must stay valid — and freeable — on the
//! mobile device afterwards, and vice versa.

use native_offloader::{Offloader, SessionConfig, WorkloadInput};

/// The offloaded task allocates a result buffer with `malloc` (unified to
/// `u_malloc` by the compiler), fills it, and returns the pointer; the
/// mobile side reads it, reuses it across calls, and frees it at the end.
const SRC: &str = r#"
int *build(int n) {
    int *buf = (int*)malloc(sizeof(int) * 2048);
    int i; int r;
    for (r = 0; r < 200; r++)
        for (i = 0; i < 2048; i++)
            buf[i] = (i * n + r) % 977;
    return buf;
}

int main() {
    int n; int rounds; int m;
    scanf("%d %d", &n, &rounds);
    long acc = 0;
    for (m = 0; m < rounds; m++) {
        int *buf = build(n + m);
        int i;
        for (i = 0; i < 2048; i++) acc += buf[i];
        free((char*)buf);
        int pace;
        scanf("%d", &pace);
    }
    printf("acc %d\n", (int)(acc % 1000000007));
    return 0;
}
"#;

#[test]
fn server_allocations_survive_and_free_on_mobile() {
    let app = Offloader::new()
        .compile_source(
            SRC,
            "heapcoherence",
            &WorkloadInput::from_stdin("3 2\n0\n0\n"),
        )
        .unwrap();
    assert!(
        app.plan.task_by_name("build").is_some(),
        "{:#?}",
        app.plan.estimates
    );
    let input = WorkloadInput::from_stdin("5 3\n0\n0\n0\n");
    let local = app.run_local(&input).unwrap();
    let off = app
        .run_offloaded(&input, &SessionConfig::fast_network())
        .unwrap();
    assert_eq!(local.console, off.console);
    assert_eq!(off.offloads_performed, 3, "every build() must offload");
    // The server-side allocations' pages came home as dirty pages.
    assert!(off.dirty_pages_written_back > 0);
}

#[test]
fn repeated_offloads_do_not_leak_the_unified_arena() {
    // Alloc/free balance holds across many offloads; a leak in the shared
    // allocator would eventually exhaust the arena and error.
    let app = Offloader::new()
        .compile_source(
            SRC,
            "heapcoherence",
            &WorkloadInput::from_stdin("3 2\n0\n0\n"),
        )
        .unwrap();
    let stdin = format!("7 8\n{}", "0\n".repeat(8));
    let input = WorkloadInput::from_stdin(stdin);
    let local = app.run_local(&input).unwrap();
    let off = app
        .run_offloaded(&input, &SessionConfig::fast_network())
        .unwrap();
    assert_eq!(local.console, off.console);
    assert_eq!(off.offloads_performed, 8);
}
