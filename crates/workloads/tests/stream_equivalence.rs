//! Speculative page streaming is a *timing* optimization: program
//! results must be byte-identical to the synchronous demand path under
//! every predictor mode. Every miniature runs with streaming off (the
//! baseline), then under `static`, `stride` and `history` prediction in
//! a fault-heavy configuration; console output, exit codes and every
//! protocol counter the predictors must not perturb have to match
//! exactly. Only the timing, wire traffic and stream counters may move.
//!
//! Page-level identity is additionally asserted *inside* the session on
//! every run: a stream hit installs the page read from the frozen mobile
//! memory — the same bytes the synchronous fetch would have shipped —
//! and finalization `debug_assert`s the write-back image page by page.

use std::sync::Arc;

use native_offloader::{PageHistory, SessionConfig, StreamMode};
use offload_obs::TraceCollector;

/// Fault-heavy session: the offload is forced and initialization
/// prefetch is off, so copy-on-demand (and therefore the streaming
/// predictor) carries the whole working set.
fn fault_heavy(mode: StreamMode, history: Option<Arc<PageHistory>>) -> SessionConfig {
    let mut cfg = SessionConfig::fast_network();
    cfg.dynamic_estimation = false;
    cfg.prefetch = false;
    cfg.stream_mode = mode;
    cfg.page_history = history;
    cfg
}

#[test]
fn stream_modes_are_result_identical_across_the_suite() {
    let mut history_hits = 0u64;
    let mut history_streamed = 0u64;
    for w in offload_workloads::all() {
        let app = w.compile().expect("compiles");
        let input = (w.eval_input)();
        let base = app
            .run_offloaded(&input, &fault_heavy(StreamMode::Off, None))
            .expect("synchronous run");
        // Window-1 baseline: with fault-ahead off, every demanded page
        // faults individually, so its fetch count is the size of the
        // maximal fault set — an upper bound for any predictor below.
        let mut w1_cfg = fault_heavy(StreamMode::Off, None);
        w1_cfg.fault_ahead = 1;
        let window1 = app.run_offloaded(&input, &w1_cfg).expect("window-1 run");
        assert_eq!(
            window1.console, base.console,
            "{}: window-1 diverged",
            w.name
        );

        // Train the history predictor on a synchronous traced run of the
        // same workload — the "prior session" of the Markov table.
        let mut obs = TraceCollector::with_capacity(1 << 20);
        let _ = app
            .run_offloaded_traced(&input, &fault_heavy(StreamMode::Off, None), &mut obs)
            .expect("training run");
        assert_eq!(obs.dropped(), 0, "{}: ring must hold the whole run", w.name);
        let history = Arc::new(PageHistory::from_records(&obs.records()));

        for mode in [StreamMode::Static, StreamMode::Stride, StreamMode::History] {
            let run = app
                .run_offloaded(&input, &fault_heavy(mode, Some(history.clone())))
                .expect("streamed run");
            let tag = format!("{} (mode={})", w.name, mode.name());
            assert_eq!(run.console, base.console, "{tag}: console diverged");
            assert_eq!(run.exit_code, base.exit_code, "{tag}: exit diverged");
            assert_eq!(
                run.offload_attempts, base.offload_attempts,
                "{tag}: attempt count diverged"
            );
            assert_eq!(
                run.offloads_performed, base.offloads_performed,
                "{tag}: offload count diverged"
            );
            assert_eq!(
                run.offloads_refused, base.offloads_refused,
                "{tag}: refusal count diverged"
            );
            assert_eq!(
                run.prefetched_pages, base.prefetched_pages,
                "{tag}: prefetch count diverged"
            );
            assert_eq!(
                run.dirty_pages_written_back, base.dirty_pages_written_back,
                "{tag}: dirty page count diverged"
            );
            assert_eq!(
                run.remote_io_calls, base.remote_io_calls,
                "{tag}: remote I/O count diverged"
            );
            // Stream bookkeeping must balance: every streamed page either
            // absorbed a fault or was drained as waste.
            assert_eq!(
                run.stream_hits + run.stream_wasted_pages,
                run.pages_streamed,
                "{tag}: stream ledger does not balance"
            );
            // Streaming may fragment fault-ahead batches (hit-installed
            // pages split synchronous windows, and the adaptive
            // controller can narrow them), so the raw fetch count may
            // exceed the batched baseline. But every fault is served
            // exactly once — as a hit or a fetch — and each demanded
            // page faults at most once, so hits + fetches can never
            // exceed the window-1 fetch count (the maximal fault set).
            // More would mean a page crossed the demand path twice.
            assert!(
                run.demand_page_fetches + run.stream_hits <= window1.demand_page_fetches,
                "{tag}: {} fetches + {} hits vs {} window-1 faults",
                run.demand_page_fetches,
                run.stream_hits,
                window1.demand_page_fetches
            );
            if mode == StreamMode::History {
                history_hits += run.stream_hits;
                history_streamed += run.pages_streamed;
            }
        }
    }
    // Across the whole suite the trained predictor must actually land
    // hits — otherwise "equivalence" is vacuous (nothing was streamed).
    assert!(history_streamed > 0, "history mode never streamed a page");
    assert!(history_hits > 0, "history mode never landed a hit");
}

#[test]
fn off_mode_is_bit_identical_and_stream_free() {
    // `StreamMode::Off` must take the synchronous path untouched: zero
    // stream counters, and (determinism) two runs agree bit for bit.
    for w in offload_workloads::all().into_iter().take(4) {
        let app = w.compile().expect("compiles");
        let input = (w.eval_input)();
        let a = app
            .run_offloaded(&input, &fault_heavy(StreamMode::Off, None))
            .expect("first run");
        let b = app
            .run_offloaded(&input, &fault_heavy(StreamMode::Off, None))
            .expect("second run");
        assert_eq!(a.pages_streamed, 0, "{}: off mode streamed", w.name);
        assert_eq!(a.stream_hits, 0, "{}", w.name);
        assert_eq!(a.stream_wasted_pages, 0, "{}", w.name);
        assert_eq!(a.stall_s_saved.to_bits(), 0f64.to_bits(), "{}", w.name);
        assert_eq!(a.console, b.console, "{}", w.name);
        assert_eq!(
            a.total_seconds.to_bits(),
            b.total_seconds.to_bits(),
            "{}: off-mode timing must be deterministic",
            w.name
        );
        assert_eq!(
            a.energy_mj.to_bits(),
            b.energy_mj.to_bits(),
            "{}: off-mode energy must be deterministic",
            w.name
        );
    }
}

#[test]
fn chess_history_streaming_smoke() {
    // The acceptance smoke: the deep workload, history prediction, and
    // the overlap must genuinely shorten the run while results stay
    // identical. (In debug builds the traced runs also re-derive the
    // whole report from the event stream and assert bit-identity.)
    let input = offload_workloads::chess::input(9, 2);
    let app = native_offloader::Offloader::new()
        .compile_source(offload_workloads::chess::SOURCE, "chess", &input)
        .expect("chess compiles");
    let base = app
        .run_offloaded(&input, &fault_heavy(StreamMode::Off, None))
        .expect("synchronous chess");

    let mut obs = TraceCollector::with_capacity(1 << 20);
    let _ = app
        .run_offloaded_traced(&input, &fault_heavy(StreamMode::Off, None), &mut obs)
        .expect("training run");
    let history = Arc::new(PageHistory::from_records(&obs.records()));

    let mut sobs = TraceCollector::with_capacity(1 << 20);
    let run = app
        .run_offloaded_traced(
            &input,
            &fault_heavy(StreamMode::History, Some(history)),
            &mut sobs,
        )
        .expect("streamed chess");
    assert_eq!(run.console, base.console, "chess results diverged");
    assert_eq!(run.exit_code, base.exit_code);
    assert!(run.pages_streamed > 0, "chess must stream pages");
    assert!(run.stream_hits > 0, "chess must land stream hits");
    assert!(
        run.total_seconds < base.total_seconds,
        "overlap must shorten chess: {} vs {}",
        run.total_seconds,
        base.total_seconds
    );
    assert!(run.stall_s_saved > 0.0, "saved stall must be accounted");
    // The hit-rate metric the collector derives must match the report.
    let hit_rate = run.stream_hit_rate();
    assert!((0.0..=1.0).contains(&hit_rate), "hit rate {hit_rate}");
}
