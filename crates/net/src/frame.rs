//! The offload wire protocol: typed messages encoded into checksummed
//! frames.
//!
//! The runtime doesn't hand-wave message sizes: every protocol message is
//! actually encoded (header, payload, CRC-32) and the *encoded length* is
//! what crosses the simulated link. Decoding is exercised by tests and by
//! the receiving side of the session, so a framing bug corrupts programs
//! rather than hiding in a constant.
//!
//! Frame layout:
//!
//! ```text
//! magic  u16  = 0x4F4C ("OL")
//! kind   u8
//! seq    u32  (little endian)
//! len    u32  payload length
//! payload ...
//! crc    u32  CRC-32 of kind..payload
//! ```

/// Frame header + trailer bytes added to every payload.
pub const FRAME_OVERHEAD: u64 = 2 + 1 + 4 + 4 + 4;

const MAGIC: u16 = 0x4F4C;

/// Protocol message bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// §4 initialization: task id, the mobile stack pointer, the
    /// marshalled arguments (bit patterns + float flags), and the mobile
    /// page-table summary (present page numbers, delta-encoded).
    OffloadRequest {
        /// Task id.
        task_id: u32,
        /// Mobile stack pointer at the call.
        stack_pointer: u64,
        /// Marshalled arguments: `(bits, is_float)`.
        args: Vec<(u64, bool)>,
        /// Present pages on the mobile device.
        present_pages: Vec<u64>,
    },
    /// One or more pages (prefetch, demand fetch, or dirty write-back).
    Pages {
        /// First page number of each run.
        page_numbers: Vec<u64>,
        /// Concatenated page bytes (possibly compressed by the caller —
        /// the frame carries whatever it is given).
        bytes: Vec<u8>,
    },
    /// §4 finalization: the return value and termination signal.
    Return {
        /// Task id.
        task_id: u32,
        /// Return bits.
        value: u64,
        /// `true` if the bits are an `f64`.
        is_float: bool,
        /// Number of dirty pages that preceded this message.
        dirty_pages: u32,
    },
    /// A remote I/O request or response payload.
    RemoteIo {
        /// Operation tag (`'p'` printf, `'o'` open, `'r'` read, ...).
        op: u8,
        /// Payload bytes.
        data: Vec<u8>,
    },
    /// A page-fetch request (server→mobile control message).
    PageRequest {
        /// First faulting page.
        page: u64,
        /// Fault-ahead window size.
        count: u32,
    },
    /// Sub-page dirty write-back: a [`crate::delta`] blob of per-page
    /// changed-byte runs (possibly compressed by the caller — like
    /// [`Message::Pages`], the frame carries whatever it is given).
    DeltaPages {
        /// Encoded delta records (see [`crate::delta::encode`]).
        bytes: Vec<u8>,
    },
    /// One speculatively streamed page, pushed mobile→server without a
    /// preceding [`Message::PageRequest`] round trip. Sent fire-and-forget
    /// while the server VM runs; the page number rides along so the
    /// receiver can install it on arrival.
    StreamPage {
        /// Page number.
        page: u64,
        /// Page bytes (possibly delta-vs-zero encoded by the caller).
        bytes: Vec<u8>,
    },
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::OffloadRequest { .. } => 1,
            Message::Pages { .. } => 2,
            Message::Return { .. } => 3,
            Message::RemoteIo { .. } => 4,
            Message::PageRequest { .. } => 5,
            Message::DeltaPages { .. } => 6,
            Message::StreamPage { .. } => 7,
        }
    }
}

/// Encoding/decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame error: {}", self.message)
    }
}

impl std::error::Error for FrameError {}

fn err(m: impl Into<String>) -> FrameError {
    FrameError { message: m.into() }
}

/// CRC-32 (IEEE 802.3 polynomial, bitwise implementation).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for byte in data {
        crc ^= *byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

pub(crate) struct Writer(pub(crate) Vec<u8>);

impl Writer {
    pub(crate) fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// LEB128-style varint (the page-table summary compresses well).
    pub(crate) fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.0.push(byte);
                return;
            }
            self.0.push(byte | 0x80);
        }
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.0.extend_from_slice(b);
    }
}

pub(crate) struct Reader<'a>(pub(crate) &'a [u8], pub(crate) usize);

impl Reader<'_> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&[u8], FrameError> {
        if self.1 + n > self.0.len() {
            return Err(err("truncated payload"));
        }
        let s = &self.0[self.1..self.1 + n];
        self.1 += n;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }
    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    pub(crate) fn varint(&mut self) -> Result<u64, FrameError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let b = self.u8()?;
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(err("varint overflow"));
            }
        }
    }
    fn bytes(&mut self) -> Result<Vec<u8>, FrameError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

fn encode_payload(msg: &Message) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    match msg {
        Message::OffloadRequest {
            task_id,
            stack_pointer,
            args,
            present_pages,
        } => {
            w.u32(*task_id);
            w.u64(*stack_pointer);
            w.u32(args.len() as u32);
            for (bits, is_float) in args {
                w.u64(*bits);
                w.u8(u8::from(*is_float));
            }
            // Delta-encoded sorted page numbers: the page-table summary.
            w.u32(present_pages.len() as u32);
            let mut prev = 0u64;
            for p in present_pages {
                w.varint(p.wrapping_sub(prev));
                prev = *p;
            }
        }
        Message::Pages {
            page_numbers,
            bytes,
        } => {
            w.u32(page_numbers.len() as u32);
            let mut prev = 0u64;
            for p in page_numbers {
                w.varint(p.wrapping_sub(prev));
                prev = *p;
            }
            w.bytes(bytes);
        }
        Message::Return {
            task_id,
            value,
            is_float,
            dirty_pages,
        } => {
            w.u32(*task_id);
            w.u64(*value);
            w.u8(u8::from(*is_float));
            w.u32(*dirty_pages);
        }
        Message::RemoteIo { op, data } => {
            w.u8(*op);
            w.bytes(data);
        }
        Message::PageRequest { page, count } => {
            w.u64(*page);
            w.u32(*count);
        }
        Message::DeltaPages { bytes } => {
            w.bytes(bytes);
        }
        Message::StreamPage { page, bytes } => {
            w.u64(*page);
            w.bytes(bytes);
        }
    }
    w.0
}

/// Encode a message into a checksummed frame.
pub fn encode(msg: &Message, seq: u32) -> Vec<u8> {
    let payload = encode_payload(msg);
    let mut w = Writer(Vec::with_capacity(payload.len() + FRAME_OVERHEAD as usize));
    w.u16(MAGIC);
    w.u8(msg.kind());
    w.u32(seq);
    w.u32(payload.len() as u32);
    w.0.extend_from_slice(&payload);
    let crc = crc32(&w.0[2..]);
    w.u32(crc);
    w.0
}

/// Decode one frame back into `(message, seq)`.
///
/// # Errors
///
/// Returns [`FrameError`] on bad magic, CRC mismatch, truncation, or an
/// unknown message kind.
pub fn decode(frame: &[u8]) -> Result<(Message, u32), FrameError> {
    let mut r = Reader(frame, 0);
    if r.u16()? != MAGIC {
        return Err(err("bad magic"));
    }
    let kind = r.u8()?;
    let seq = r.u32()?;
    let len = r.u32()? as usize;
    let payload = r.take(len)?.to_vec();
    let crc = r.u32()?;
    if crc32(&frame[2..frame.len() - 4]) != crc {
        return Err(err("crc mismatch"));
    }
    let mut p = Reader(&payload, 0);
    let msg = match kind {
        1 => {
            let task_id = p.u32()?;
            let stack_pointer = p.u64()?;
            let nargs = p.u32()? as usize;
            let mut args = Vec::with_capacity(nargs);
            for _ in 0..nargs {
                let bits = p.u64()?;
                let is_float = p.u8()? != 0;
                args.push((bits, is_float));
            }
            let npages = p.u32()? as usize;
            let mut present_pages = Vec::with_capacity(npages);
            let mut prev = 0u64;
            for _ in 0..npages {
                prev = prev.wrapping_add(p.varint()?);
                present_pages.push(prev);
            }
            Message::OffloadRequest {
                task_id,
                stack_pointer,
                args,
                present_pages,
            }
        }
        2 => {
            let n = p.u32()? as usize;
            let mut page_numbers = Vec::with_capacity(n);
            let mut prev = 0u64;
            for _ in 0..n {
                prev = prev.wrapping_add(p.varint()?);
                page_numbers.push(prev);
            }
            let bytes = p.bytes()?;
            Message::Pages {
                page_numbers,
                bytes,
            }
        }
        3 => Message::Return {
            task_id: p.u32()?,
            value: p.u64()?,
            is_float: p.u8()? != 0,
            dirty_pages: p.u32()?,
        },
        4 => Message::RemoteIo {
            op: p.u8()?,
            data: p.bytes()?,
        },
        5 => Message::PageRequest {
            page: p.u64()?,
            count: p.u32()?,
        },
        6 => Message::DeltaPages { bytes: p.bytes()? },
        7 => Message::StreamPage {
            page: p.u64()?,
            bytes: p.bytes()?,
        },
        other => return Err(err(format!("unknown message kind {other}"))),
    };
    Ok((msg, seq))
}

/// The encoded size of a message without materializing the frame twice
/// (convenience for the runtime's transfer accounting).
pub fn encoded_len(msg: &Message) -> u64 {
    encode_payload(msg).len() as u64 + FRAME_OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = encode(&msg, 7);
        assert_eq!(frame.len() as u64, encoded_len(&msg));
        let (back, seq) = decode(&frame).unwrap();
        assert_eq!(back, msg);
        assert_eq!(seq, 7);
    }

    #[test]
    fn roundtrip_all_kinds() {
        roundtrip(Message::OffloadRequest {
            task_id: 3,
            stack_pointer: 0x6FFF_FF80,
            args: vec![(42, false), (f64::to_bits(1.5), true)],
            present_pages: vec![16, 17, 18, 4096, 70000],
        });
        roundtrip(Message::Pages {
            page_numbers: vec![5, 6, 9],
            bytes: vec![0xAB; 3 * 4096],
        });
        roundtrip(Message::Return {
            task_id: 1,
            value: 99,
            is_float: false,
            dirty_pages: 12,
        });
        roundtrip(Message::RemoteIo {
            op: b'p',
            data: b"score 3.14\n".to_vec(),
        });
        roundtrip(Message::PageRequest {
            page: 0x10_000,
            count: 8,
        });
        roundtrip(Message::DeltaPages {
            bytes: vec![0x5A; 300],
        });
        roundtrip(Message::StreamPage {
            page: 0x20_000,
            bytes: vec![0xC3; 4096],
        });
    }

    #[test]
    fn delta_pages_truncation_is_detected() {
        let frame = encode(
            &Message::DeltaPages {
                bytes: vec![1, 2, 3, 4, 5],
            },
            9,
        );
        for cut in 0..frame.len() {
            assert!(decode(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut frame = encode(&Message::PageRequest { page: 9, count: 1 }, 0);
        let mid = frame.len() / 2;
        frame[mid] ^= 0x40;
        assert!(decode(&frame).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let frame = encode(
            &Message::Return {
                task_id: 1,
                value: 2,
                is_float: false,
                dirty_pages: 0,
            },
            0,
        );
        for cut in 0..frame.len() {
            assert!(decode(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn page_table_summary_is_compact() {
        // 1000 mostly-consecutive pages: the delta-varint summary must be
        // ~1 byte per page, not 8.
        let pages: Vec<u64> = (100..1100).collect();
        let msg = Message::OffloadRequest {
            task_id: 1,
            stack_pointer: 0,
            args: vec![],
            present_pages: pages,
        };
        assert!(encoded_len(&msg) < 1_200, "{} bytes", encoded_len(&msg));
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode(&Message::PageRequest { page: 1, count: 1 }, 0);
        frame[0] = 0;
        assert_eq!(decode(&frame).unwrap_err().message, "bad magic");
    }
}
