//! A small metrics registry: named counters and fixed-bucket histograms.
//!
//! The registry is updated by the [`TraceCollector`](crate::TraceCollector)
//! as events arrive, and a [`MetricsSnapshot`] rides on `RunReport` so the
//! evaluation harness can read distributions (fault latency, batch sizes,
//! compression ratios) instead of just totals.

use std::collections::BTreeMap;

/// How many raw observations a [`Histogram`] retains verbatim. While the
/// count stays at or below this cap, [`Histogram::quantile`] is *exact*
/// (sorted-sample interpolation); past it, quantiles fall back to bucket
/// interpolation. Small enough that the per-histogram overhead is one
/// cache line's worth of floats, large enough to cover the short
/// distributions (per-offload flushes, write-backs) exactly.
pub const EXACT_SAMPLE_CAP: usize = 64;

/// A histogram over fixed bucket upper bounds (the last bucket is
/// `+inf`). Observations also keep sum/min/max for summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, ascending.
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` bucket counts (last bucket is overflow).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observed value (`f64::NEG_INFINITY` when empty).
    pub max: f64,
    /// The first [`EXACT_SAMPLE_CAP`] raw observations, in arrival order
    /// — the exact-quantile path for small samples.
    pub samples: Vec<f64>,
}

impl Histogram {
    /// A histogram over the given ascending finite bucket bounds.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            samples: Vec::new(),
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.samples.len() < EXACT_SAMPLE_CAP {
            self.samples.push(value);
        }
    }

    /// Mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile of the observed distribution, `q` in `[0, 1]`
    /// (clamped). `None` when empty.
    ///
    /// While every observation is still retained (`count <=`
    /// [`EXACT_SAMPLE_CAP`]) this is **exact**: linear interpolation on
    /// the sorted samples, so `q = 0` is the minimum, `q = 1` the
    /// maximum and `q = 0.5` the textbook median. Past the cap it
    /// interpolates within the bucket holding the target rank, clamped
    /// to the observed `[min, max]` (the bucketed estimate can never
    /// leave the observed range).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if self.samples.len() as u64 == self.count {
            let mut sorted = self.samples.clone();
            sorted.sort_by(f64::total_cmp);
            let pos = q * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            return Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac);
        }
        // Bucketed path: find the bucket containing the target rank,
        // interpolate linearly inside its bounds.
        let rank = q * (self.count.saturating_sub(1)) as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let last_in_bucket = (seen + c - 1) as f64;
            if rank <= last_in_bucket {
                let lo = if i == 0 { self.min } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                let (lo, hi) = (lo.max(self.min), hi.min(self.max));
                let within = if c <= 1 {
                    0.0
                } else {
                    (rank - seen as f64) / (c - 1) as f64
                };
                return Some((lo + (hi - lo) * within).clamp(self.min, self.max));
            }
            seen += c;
        }
        Some(self.max)
    }
}

/// Exponential bucket bounds: `first, first*factor, ...` (`n` bounds).
pub fn exp_buckets(first: f64, factor: f64, n: usize) -> Vec<f64> {
    assert!(first > 0.0 && factor > 1.0 && n > 0);
    let mut v = Vec::with_capacity(n);
    let mut b = first;
    for _ in 0..n {
        v.push(b);
        b *= factor;
    }
    v
}

/// The live registry: insertion is keyed by `&'static str` names so the
/// hot path never allocates a key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (creating it at zero).
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Record `value` into histogram `name`, creating it with `bounds` on
    /// first use.
    pub fn observe(&mut self, name: &'static str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Freeze into an owned snapshot (string keys, safe to ship around).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        }
    }
}

/// An owned, frozen view of a [`MetricsRegistry`] — what `RunReport`
/// carries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → frozen histogram.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// `true` when nothing was recorded (the no-op collector path).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![1, 1, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.mean() - 138.875).abs() < 1e-9);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 500.0);
    }

    #[test]
    fn boundary_value_lands_in_lower_bucket() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0);
        assert_eq!(h.counts, vec![1, 0, 0]);
    }

    #[test]
    fn registry_counts_and_snapshots() {
        let mut r = MetricsRegistry::new();
        r.count("faults", 2);
        r.count("faults", 3);
        r.observe("latency", &[0.001, 0.01], 0.005);
        assert_eq!(r.counter("faults"), 5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("faults"), 5);
        assert_eq!(snap.histogram("latency").unwrap().count, 1);
        assert!(!snap.is_empty());
        assert!(MetricsSnapshot::default().is_empty());
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn exact_quantiles_at_boundaries() {
        let mut h = Histogram::new(&[10.0, 100.0]);
        for v in [4.0, 1.0, 3.0, 2.0] {
            h.observe(v);
        }
        // count <= EXACT_SAMPLE_CAP, so these are exact.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        assert_eq!(h.quantile(0.5), Some(2.5));
        // Out-of-range q clamps rather than panics.
        assert_eq!(h.quantile(-1.0), Some(1.0));
        assert_eq!(h.quantile(2.0), Some(4.0));
    }

    #[test]
    fn exact_quantile_single_sample() {
        let mut h = Histogram::new(&[10.0]);
        h.observe(7.0);
        assert_eq!(h.quantile(0.0), Some(7.0));
        assert_eq!(h.quantile(0.5), Some(7.0));
        assert_eq!(h.quantile(1.0), Some(7.0));
    }

    #[test]
    fn bucketed_quantile_stays_in_observed_range() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        // Push past the exact-sample cap so the bucketed path runs.
        for i in 0..(EXACT_SAMPLE_CAP as u64 + 36) {
            h.observe(0.5 + (i % 8) as f64);
        }
        assert!(h.count > h.samples.len() as u64);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!(
                v >= h.min && v <= h.max,
                "q={q} gave {v} outside [{}, {}]",
                h.min,
                h.max
            );
        }
        // Monotone in q.
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        assert_eq!(h.quantile(0.0), Some(h.min));
        assert_eq!(h.quantile(1.0), Some(h.max));
    }

    #[test]
    fn exp_buckets_grow() {
        let b = exp_buckets(1e-6, 10.0, 4);
        assert_eq!(b.len(), 4);
        assert!((b[3] - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn quantile_at_exactly_the_exact_sample_cap_is_exact() {
        // 64 observations: the last count that still rides the exact
        // sorted-sample path. Values arrive shuffled to prove sorting.
        let mut h = Histogram::new(&[8.0, 32.0, 128.0]);
        for i in 0..EXACT_SAMPLE_CAP as u64 {
            h.observe(((i * 37) % 64 + 1) as f64); // permutation of 1..=64
        }
        assert_eq!(h.count, EXACT_SAMPLE_CAP as u64);
        assert_eq!(h.samples.len(), EXACT_SAMPLE_CAP);
        // Exact: q=0 min, q=1 max, median interpolates 32/33 exactly.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(64.0));
        assert_eq!(h.quantile(0.5), Some(32.5));
        // p25 on 64 sorted integers 1..=64: pos 15.75 → 16 + 0.75.
        assert!((h.quantile(0.25).unwrap() - 16.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_at_cap_plus_one_crosses_to_bucket_interpolation() {
        // 65 observations: one past the cap, so `samples` (64) no longer
        // covers `count` and the bucketed estimator takes over.
        let mut h = Histogram::new(&[8.0, 32.0, 128.0]);
        for i in 0..=EXACT_SAMPLE_CAP as u64 {
            h.observe(((i * 37) % 65 + 1) as f64); // permutation of 1..=65
        }
        assert_eq!(h.count, EXACT_SAMPLE_CAP as u64 + 1);
        assert_eq!(h.samples.len(), EXACT_SAMPLE_CAP);
        // The estimate is no longer the exact median (33.0) but must stay
        // inside the observed range, honor the endpoints, and be monotone
        // across the crossover.
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 >= h.min && p50 <= h.max);
        assert_eq!(h.quantile(0.0), Some(h.min));
        assert_eq!(h.quantile(1.0), Some(h.max));
        let p25 = h.quantile(0.25).unwrap();
        let p75 = h.quantile(0.75).unwrap();
        assert!(p25 <= p50 && p50 <= p75);
        // Rank 32 (the median) is the first observation of the (32, 128]
        // bucket — 32 values sit at or below bound 32.0 — so in-bucket
        // interpolation at fraction 0 returns the bucket's lower edge.
        assert_eq!(p50.to_bits(), 32.0f64.to_bits());
    }
}
