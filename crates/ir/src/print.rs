//! Textual printing of modules — the debugging surface for the offload
//! passes (diffing the module before/after a rewrite shows exactly what a
//! pass did, like `opt -S` for LLVM).

use std::fmt::{self, Write as _};

use crate::inst::{Callee, Inst};
use crate::module::{ConstValue, Function, GlobalInit, Module};

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; module {}", self.name)?;
        for id in self.struct_ids() {
            let def = self.struct_def(id);
            write!(f, "{id} = struct {} {{ ", def.name)?;
            for (i, field) in def.fields.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{field}")?;
            }
            writeln!(f, " }}")?;
        }
        for (id, g) in self.iter_globals() {
            let marker = if g.unified { " unified" } else { "" };
            write!(f, "{id} = global{marker} {} {} = ", g.ty, g.name)?;
            match &g.init {
                GlobalInit::Zeroed => writeln!(f, "zeroed")?,
                GlobalInit::Scalars(vals) => {
                    write!(f, "[")?;
                    for (i, v) in vals.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", DisplayConst(v))?;
                    }
                    writeln!(f, "]")?;
                }
                GlobalInit::Bytes(bytes) => writeln!(f, "{} bytes", bytes.len())?,
            }
        }
        for (id, func) in self.iter_functions() {
            write!(
                f,
                "\n{}",
                DisplayFunc {
                    id_str: id.to_string(),
                    func
                }
            )?;
        }
        Ok(())
    }
}

struct DisplayConst<'a>(&'a ConstValue);

impl fmt::Display for DisplayConst<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            ConstValue::I8(v) => write!(f, "i8 {v}"),
            ConstValue::I16(v) => write!(f, "i16 {v}"),
            ConstValue::I32(v) => write!(f, "i32 {v}"),
            ConstValue::I64(v) => write!(f, "i64 {v}"),
            ConstValue::F64(v) => write!(f, "f64 {v}"),
            ConstValue::Null(t) => write!(f, "{t}* null"),
            ConstValue::GlobalAddr(g) => write!(f, "&{g}"),
            ConstValue::FuncAddr(fid) => write!(f, "&{fid}"),
        }
    }
}

struct DisplayFunc<'a> {
    id_str: String,
    func: &'a Function,
}

impl fmt::Display for DisplayFunc<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let func = self.func;
        if func.is_declaration() {
            write!(f, "declare {} {} {}(", self.id_str, func.ret, func.name)?;
        } else {
            write!(f, "define {} {} {}(", self.id_str, func.ret, func.name)?;
        }
        for (i, p) in func.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "%v{i}: {p}")?;
        }
        if func.is_declaration() {
            return writeln!(f, ")");
        }
        writeln!(f, ") {{")?;
        for (bb, block) in func.iter_blocks() {
            writeln!(f, "{bb}:")?;
            for inst in &block.insts {
                writeln!(f, "  {}", DisplayInst(inst))?;
            }
        }
        writeln!(f, "}}")
    }
}

struct DisplayInst<'a>(&'a Inst);

impl fmt::Display for DisplayInst<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Inst::Const { dst, value } => write!(f, "{dst} = const {}", DisplayConst(value)),
            Inst::Alloca { dst, ty, count } => write!(f, "{dst} = alloca {ty} x {count}"),
            Inst::Load { dst, ty, addr } => write!(f, "{dst} = load {ty}, {addr}"),
            Inst::Store { ty, addr, value } => write!(f, "store {ty} {value}, {addr}"),
            Inst::FieldAddr {
                dst,
                base,
                sid,
                field,
            } => {
                write!(f, "{dst} = fieldaddr {sid}.{field}, {base}")
            }
            Inst::IndexAddr {
                dst,
                base,
                elem,
                index,
            } => {
                write!(f, "{dst} = indexaddr {elem}, {base}[{index}]")
            }
            Inst::Bin {
                dst,
                op,
                ty,
                lhs,
                rhs,
            } => {
                write!(f, "{dst} = {op:?} {ty} {lhs}, {rhs}")
            }
            Inst::Un {
                dst,
                op,
                ty,
                operand,
            } => write!(f, "{dst} = {op:?} {ty} {operand}"),
            Inst::Cmp {
                dst,
                op,
                ty,
                lhs,
                rhs,
            } => {
                write!(f, "{dst} = cmp {op:?} {ty} {lhs}, {rhs}")
            }
            Inst::Cast { dst, kind, to, src } => write!(f, "{dst} = {kind:?} {src} to {to}"),
            Inst::Call { dst, callee, args } => {
                let mut s = String::new();
                if let Some(d) = dst {
                    write!(s, "{d} = ")?;
                }
                match callee {
                    Callee::Direct(id) => write!(s, "call {id}(")?,
                    Callee::Indirect(v) => write!(s, "call_indirect {v}(")?,
                    Callee::Builtin(b) => write!(s, "call builtin {b}(")?,
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(s, ", ")?;
                    }
                    write!(s, "{a}")?;
                }
                write!(f, "{s})")
            }
            Inst::Ret { value: Some(v) } => write!(f, "ret {v}"),
            Inst::Ret { value: None } => write!(f, "ret void"),
            Inst::Br { target } => write!(f, "br {target}"),
            Inst::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                write!(f, "condbr {cond}, {then_bb}, {else_bb}")
            }
            Inst::InlineAsm { text } => write!(f, "asm \"{text}\""),
            Inst::Syscall { dst, number, args } => {
                write!(f, "{dst} = syscall {number} ({} args)", args.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::module::{GlobalInit, Module};
    use crate::types::{StructDef, Type};

    #[test]
    fn prints_structs_globals_functions() {
        let mut m = Module::new("demo");
        m.define_struct(StructDef {
            name: "Move".into(),
            fields: vec![Type::I8, Type::F64],
        });
        m.define_global("board", Type::I32.array_of(4), GlobalInit::Zeroed);
        let f = m.declare_function("twice", vec![Type::I32], Type::I32);
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let two = b.const_i32(2);
        let r = b.bin(BinOp::Mul, Type::I32, p, two);
        b.ret(Some(r));
        b.finish();
        m.declare_function("external", vec![], Type::Void);

        let text = m.to_string();
        assert!(text.contains("; module demo"), "{text}");
        assert!(text.contains("struct Move"), "{text}");
        assert!(text.contains("global [4 x i32] board"), "{text}");
        assert!(text.contains("define @f0 i32 twice(%v0: i32)"), "{text}");
        assert!(text.contains("Mul i32"), "{text}");
        assert!(text.contains("declare @f1 void external"), "{text}");
    }

    #[test]
    fn unified_globals_are_marked() {
        let mut m = Module::new("demo");
        let g = m.define_global("x", Type::I32, GlobalInit::Zeroed);
        m.global_mut(g).unified = true;
        assert!(m.to_string().contains("global unified i32 x"));
    }
}
