//! Fuzz tests for the LZ codec and the link model. The codec carries
//! every dirty page home (§4); a corrupting codec corrupts program state
//! invisibly, so roundtripping is tested against adversarial inputs.
//!
//! The inputs are drawn from a fixed-seed splitmix64 stream (no external
//! crates, no OS entropy), so every run — any machine, any day — fuzzes
//! the exact same cases and failures reproduce by rerunning the test.

use offload_net::{lz, Link};

/// Minimal splitmix64 — the canonical copy lives in
/// `offload_workloads::rng`, which this leaf crate cannot depend on.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

/// compress → decompress is the identity for arbitrary bytes.
#[test]
fn roundtrip_arbitrary() {
    let mut rng = Rng(0xC0DE_C0DE);
    for _ in 0..48 {
        let len = rng.below(20_000) as usize;
        let data = rng.bytes(len);
        let packed = lz::compress(&data);
        assert_eq!(lz::decompress(&packed).unwrap(), data);
    }
}

/// ...including highly repetitive inputs with long overlapping matches
/// (the zero-page / struct-array shape of real traffic).
#[test]
fn roundtrip_repetitive() {
    let mut rng = Rng(0xFACE_FEED);
    for _ in 0..48 {
        let byte = rng.next() as u8;
        let run = 1 + rng.below(30_000) as usize;
        let mut data = vec![byte; run];
        let tail = rng.below(64) as usize;
        data.extend(rng.bytes(tail));
        let packed = lz::compress(&data);
        assert_eq!(lz::decompress(&packed).unwrap(), data);
    }
}

/// ...and for page-structured data: repeated blocks compress to roughly
/// one block.
#[test]
fn repeated_pages_compress_hard() {
    let mut rng = Rng(0x0009_A9E5);
    for _ in 0..32 {
        let page_len = 64 + rng.below(192) as usize;
        let page = rng.bytes(page_len);
        let reps = 4 + rng.below(12) as usize;
        let data: Vec<u8> = std::iter::repeat_n(page.clone(), reps).flatten().collect();
        let packed = lz::compress(&data);
        assert!(
            packed.len() < page.len() * 2 + 64,
            "{} bytes compressed to {}",
            data.len(),
            packed.len()
        );
        assert_eq!(lz::decompress(&packed).unwrap(), data);
    }
}

/// Truncating a valid stream never panics — it errors or yields a
/// prefix-decodable result, but must not crash the runtime.
#[test]
fn truncation_never_panics() {
    let mut rng = Rng(0x7121C);
    for _ in 0..64 {
        let len = 1 + rng.below(4_000) as usize;
        let data = rng.bytes(len);
        let packed = lz::compress(&data);
        let cut = (rng.below(4_000) as usize).min(packed.len());
        let _ = lz::decompress(&packed[..cut]); // Ok or Err, never panic
    }
}

/// Transfer time is monotone in payload size and bounded below by the
/// link latency.
#[test]
fn transfer_time_is_monotone() {
    let mut rng = Rng(0x11A7E);
    let link = Link::wifi_802_11n();
    for _ in 0..256 {
        let a = rng.below(10_000_000);
        let b = rng.below(10_000_000);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(link.transfer_time(lo) <= link.transfer_time(hi));
        assert!(link.transfer_time(lo) >= link.latency_s);
    }
}

/// A faster link never loses: 802.11ac ≤ 802.11n for every size.
#[test]
fn faster_link_dominates() {
    let mut rng = Rng(0xD011A5);
    for _ in 0..256 {
        let bytes = rng.below(50_000_000);
        assert!(
            Link::wifi_802_11ac().transfer_time(bytes) <= Link::wifi_802_11n().transfer_time(bytes)
        );
    }
}
