//! Byte-addressable paged memory with present/dirty tracking.
//!
//! Each simulated device owns one [`Memory`]. Pages are created on first
//! write for addresses the device is allowed to back locally; accesses to
//! *absent* pages surface as [`MemError::PageFault`], which the offload
//! runtime turns into copy-on-demand transfers (§4). Writes set per-page
//! dirty bits, which the finalization step harvests to send only modified
//! pages home.
//!
//! # Hot-path layout
//!
//! Page frames live in a slot arena (`Vec<Page>` plus a free list); the
//! page table is a `BTreeMap<page, slot>` consulted only on a TLB miss. A
//! one-entry software TLB caches the last translation used by `read` and
//! `write`, so the tight interpreter loops (`Vm::mem_read`/`mem_write`,
//! which overwhelmingly hit the same page repeatedly) skip the tree walk
//! entirely. Evicted frames are recycled through the free list, so
//! install/evict churn during offload sessions does not allocate.
//!
//! # Baseline tracking (sub-page delta write-back)
//!
//! With [`Memory::set_track_baselines`] enabled, the first write that
//! dirties a page snapshots the page's pre-write bytes. Finalization can
//! then diff each dirty page against [`Memory::baseline_bytes`] and ship
//! only the changed byte-runs (§4: minimizing server→mobile traffic)
//! instead of whole 4 KiB pages.

use std::collections::{BTreeMap, BTreeSet};

use crate::PAGE_SIZE;

/// A page of zeroes with a stable address: the shared source for every
/// demand-zero install and delta-vs-zero baseline on the fault path
/// (hoisted out of the per-fault `vec![0u8; PAGE_SIZE]` allocations).
pub static ZERO_PAGE: [u8; PAGE_SIZE as usize] = [0u8; PAGE_SIZE as usize];

/// Page number of an address.
pub fn page_of(addr: u64) -> u64 {
    addr / PAGE_SIZE
}

/// First address of a page.
pub fn page_base(page: u64) -> u64 {
    page * PAGE_SIZE
}

/// A memory-access failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The page is not present on this device; the runtime may service it
    /// (copy-on-demand) and retry.
    PageFault {
        /// Faulting page number.
        page: u64,
    },
    /// The address is outside this device's mapped policy (wild pointer).
    AccessViolation {
        /// Faulting address.
        addr: u64,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::PageFault { page } => write!(f, "page fault at page {page:#x}"),
            MemError::AccessViolation { addr } => write!(f, "access violation at {addr:#x}"),
        }
    }
}

impl std::error::Error for MemError {}

#[derive(Debug, Clone)]
struct Page {
    data: Box<[u8]>,
    dirty: bool,
    /// Pre-write snapshot, captured when the page first goes dirty while
    /// baseline tracking is on. Dropped by `clear_dirty`/`install_page`.
    baseline: Option<Box<[u8]>>,
}

impl Page {
    fn zeroed() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE as usize].into_boxed_slice(),
            dirty: false,
            baseline: None,
        }
    }
}

/// How a device may back pages it has never seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackingPolicy {
    /// Create zeroed pages on demand for any address (the mobile device:
    /// it owns the canonical memory).
    DemandZero,
    /// Fault on any absent page (the server during offload execution: an
    /// absent page means the data lives on the mobile device and must be
    /// copied on demand).
    FaultOnAbsent,
}

/// Sentinel slot index for an empty TLB entry.
const TLB_EMPTY: u32 = u32::MAX;

/// One device's physical memory plus its page table.
#[derive(Debug, Clone)]
pub struct Memory {
    /// Page frames; slots are recycled through `free` and never move, so
    /// a `(page, slot)` TLB entry stays valid until that page is evicted.
    slots: Vec<Page>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// Page table: page number → slot index.
    table: BTreeMap<u64, u32>,
    /// Software TLB: the last page translated by `read`/`write`.
    tlb_page: u64,
    tlb_slot: u32,
    policy: BackingPolicy,
    /// Pages written since the last [`Memory::clear_dirty`].
    dirty_count: usize,
    /// Snapshot pre-write bytes when a page first goes dirty.
    track_baselines: bool,
    /// When set, only pages in this set get a baseline snapshot; writes to
    /// pages outside it skip the 4 KiB clone (counted in
    /// `baselines_skipped`). Sound only when the caller proves every page
    /// whose delta will be diffed is in the set.
    baseline_filter: Option<BTreeSet<u64>>,
    /// Baseline clones avoided by `baseline_filter` since it was last set.
    baselines_skipped: u64,
    /// Frames allocated from the heap over this memory's whole lifetime
    /// (recycled frames do not count). The farm's pooled-reuse gate
    /// watches this: a steady-state session on a recycled memory must
    /// not grow it.
    frame_allocs: u64,
    /// When on, TLB-miss page translations are appended to `access_log`
    /// (capped) — the raw feed of the stride predictor. Off by default.
    log_accesses: bool,
    /// Remaining appends before the cap: `0` when logging is off *or*
    /// the buffer is full, so the TLB-miss path pays exactly one
    /// zero-test (no bool + length compare) when streaming is off.
    log_budget: u32,
    /// Page numbers in first-translation order since the last
    /// [`Memory::take_access_log`].
    access_log: Vec<u64>,
}

/// Upper bound on buffered access-log entries between drains. The stride
/// detector only needs recent history; an unbounded log would grow with
/// the working set.
const ACCESS_LOG_CAP: usize = 256;

impl Memory {
    /// An empty memory with the given backing policy.
    pub fn new(policy: BackingPolicy) -> Self {
        Memory {
            slots: Vec::new(),
            free: Vec::new(),
            table: BTreeMap::new(),
            tlb_page: 0,
            tlb_slot: TLB_EMPTY,
            policy,
            dirty_count: 0,
            track_baselines: false,
            baseline_filter: None,
            baselines_skipped: 0,
            frame_allocs: 0,
            log_accesses: false,
            log_budget: 0,
            access_log: Vec::new(),
        }
    }

    /// Turn the page-access log on or off. Turning it off (or on) clears
    /// any buffered entries, so a reader starts from a clean slate.
    pub fn set_access_log(&mut self, on: bool) {
        self.log_accesses = on;
        self.log_budget = if on { ACCESS_LOG_CAP as u32 } else { 0 };
        self.access_log.clear();
    }

    /// Drain the buffered access log (page numbers in TLB-miss order).
    /// Re-arms the cap: the next [`ACCESS_LOG_CAP`] misses buffer again.
    pub fn take_access_log(&mut self) -> Vec<u64> {
        self.log_budget = if self.log_accesses {
            ACCESS_LOG_CAP as u32
        } else {
            0
        };
        std::mem::take(&mut self.access_log)
    }

    /// The device's backing policy.
    pub fn policy(&self) -> BackingPolicy {
        self.policy
    }

    /// Change the backing policy (the server flips to
    /// [`BackingPolicy::FaultOnAbsent`] when an offload session starts).
    pub fn set_policy(&mut self, policy: BackingPolicy) {
        self.policy = policy;
    }

    /// Enable or disable baseline snapshots for delta write-back.
    /// Disabling drops any snapshots already taken. The flag survives
    /// [`Memory::clear`], so a server memory configured once stays
    /// configured across offload sessions.
    pub fn set_track_baselines(&mut self, on: bool) {
        self.track_baselines = on;
        if !on {
            for p in &mut self.slots {
                p.baseline = None;
            }
        }
    }

    /// `true` if baseline snapshots are being captured.
    pub fn tracks_baselines(&self) -> bool {
        self.track_baselines
    }

    /// Restrict baseline snapshots to `filter` (or lift the restriction
    /// with `None`). Resets the skip counter. A certificate's may-write
    /// set goes here: pages the static analysis proves are never diffed
    /// back (server-private scratch, proven-readonly globals) stop paying
    /// the pre-write clone.
    pub fn set_baseline_filter(&mut self, filter: Option<BTreeSet<u64>>) {
        self.baseline_filter = filter;
        self.baselines_skipped = 0;
    }

    /// Baseline clones avoided by the filter since it was last set.
    pub fn baselines_skipped(&self) -> u64 {
        self.baselines_skipped
    }

    /// `true` if `page` is present.
    pub fn is_present(&self, page: u64) -> bool {
        self.table.contains_key(&page)
    }

    /// Number of present pages.
    pub fn present_count(&self) -> usize {
        self.table.len()
    }

    /// Grab a frame for a new page: recycle a freed slot (re-zeroed) or
    /// grow the arena.
    fn alloc_slot(&mut self) -> u32 {
        if let Some(slot) = self.free.pop() {
            let p = &mut self.slots[slot as usize];
            p.data.fill(0);
            p.dirty = false;
            p.baseline = None;
            slot
        } else {
            self.slots.push(Page::zeroed());
            self.frame_allocs += 1;
            (self.slots.len() - 1) as u32
        }
    }

    /// Heap frame allocations over this memory's lifetime. Frames freed by
    /// [`Memory::evict_page`]/[`Memory::clear`] are recycled without
    /// counting again, so a pooled memory in steady state holds this flat.
    pub fn frame_allocs(&self) -> u64 {
        self.frame_allocs
    }

    /// Reset this memory for reuse by a new session: drop every page
    /// (keeping the frames for recycling), adopt `policy`, and switch
    /// baseline tracking off. The lifetime [`Memory::frame_allocs`]
    /// counter is preserved — that is the point of recycling.
    pub fn recycle(&mut self, policy: BackingPolicy) {
        self.clear();
        self.policy = policy;
        self.set_track_baselines(false);
        self.set_access_log(false);
        self.set_baseline_filter(None);
    }

    /// Install a page's bytes (copy-on-demand delivery or prefetch). The
    /// installed page starts clean, with no baseline.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly one page long.
    pub fn install_page(&mut self, page: u64, bytes: &[u8]) {
        assert_eq!(bytes.len(), PAGE_SIZE as usize, "partial page install");
        if let Some(&slot) = self.table.get(&page) {
            let p = &mut self.slots[slot as usize];
            if p.dirty {
                self.dirty_count -= 1;
            }
            p.data.copy_from_slice(bytes);
            p.dirty = false;
            p.baseline = None;
        } else {
            let slot = self.alloc_slot();
            self.slots[slot as usize].data.copy_from_slice(bytes);
            self.table.insert(page, slot);
        }
    }

    /// Drop a page (used when a finished offload session tears down the
    /// server process, §4 finalization).
    pub fn evict_page(&mut self, page: u64) {
        if let Some(slot) = self.table.remove(&page) {
            if self.slots[slot as usize].dirty {
                self.dirty_count -= 1;
            }
            self.free.push(slot);
            if self.tlb_slot == slot {
                self.tlb_slot = TLB_EMPTY;
            }
        }
    }

    /// Drop every page (frames are kept for reuse).
    pub fn clear(&mut self) {
        let slots: Vec<u32> = self.table.values().copied().collect();
        self.table.clear();
        self.free.extend(slots);
        self.dirty_count = 0;
        self.tlb_slot = TLB_EMPTY;
    }

    /// A snapshot of one present page's bytes.
    pub fn page_bytes(&self, page: u64) -> Option<&[u8]> {
        self.table
            .get(&page)
            .map(|&slot| &*self.slots[slot as usize].data)
    }

    /// The pre-write snapshot of a dirty page (only while baseline
    /// tracking is on; `None` for clean pages).
    pub fn baseline_bytes(&self, page: u64) -> Option<&[u8]> {
        self.table
            .get(&page)
            .and_then(|&slot| self.slots[slot as usize].baseline.as_deref())
    }

    /// Page numbers of all present pages.
    pub fn present_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.table.keys().copied()
    }

    /// Page numbers of all dirty pages.
    pub fn dirty_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.table
            .iter()
            .filter(|(_, &slot)| self.slots[slot as usize].dirty)
            .map(|(n, _)| *n)
    }

    /// Number of dirty pages.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Clear every dirty bit and drop baselines (after a write-back).
    pub fn clear_dirty(&mut self) {
        for &slot in self.table.values() {
            let p = &mut self.slots[slot as usize];
            p.dirty = false;
            p.baseline = None;
        }
        self.dirty_count = 0;
    }

    /// Translate `page` to its slot, consulting the TLB first and filling
    /// it on a page-table hit.
    #[inline]
    fn lookup(&mut self, page: u64) -> Option<u32> {
        if self.tlb_slot != TLB_EMPTY && self.tlb_page == page {
            return Some(self.tlb_slot);
        }
        let slot = *self.table.get(&page)?;
        self.tlb_page = page;
        self.tlb_slot = slot;
        if self.log_budget != 0 {
            self.log_access(page);
        }
        Some(slot)
    }

    /// Out-of-line slow half of the access log: only reached while the
    /// stride predictor is consuming the feed and the buffer has room.
    #[cold]
    fn log_access(&mut self, page: u64) {
        self.log_budget -= 1;
        self.access_log.push(page);
    }

    /// Slot for `page`, creating it under `DemandZero` or faulting.
    #[inline]
    fn ensure_slot(&mut self, page: u64) -> Result<u32, MemError> {
        if let Some(slot) = self.lookup(page) {
            return Ok(slot);
        }
        match self.policy {
            BackingPolicy::DemandZero => {
                let slot = self.alloc_slot();
                self.table.insert(page, slot);
                self.tlb_page = page;
                self.tlb_slot = slot;
                Ok(slot)
            }
            BackingPolicy::FaultOnAbsent => Err(MemError::PageFault { page }),
        }
    }

    fn page_for_read(&mut self, page: u64) -> Result<&Page, MemError> {
        let slot = self.ensure_slot(page)?;
        Ok(&self.slots[slot as usize])
    }

    fn page_for_write(&mut self, page: u64) -> Result<&mut Page, MemError> {
        let slot = self.ensure_slot(page)?;
        let snapshot = self.track_baselines
            && self
                .baseline_filter
                .as_ref()
                .is_none_or(|f| f.contains(&page));
        let skipped = self.track_baselines && !snapshot;
        let p = &mut self.slots[slot as usize];
        if !p.dirty {
            p.dirty = true;
            self.dirty_count += 1;
            if snapshot {
                p.baseline = Some(p.data.clone());
            } else if skipped {
                self.baselines_skipped += 1;
            }
        }
        Ok(p)
    }

    /// Read `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::PageFault`] for the first absent page touched.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        let mut addr = addr;
        let mut off = 0usize;
        while off < buf.len() {
            let page = page_of(addr);
            let in_page = (addr - page_base(page)) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            let p = self.page_for_read(page)?;
            buf[off..off + n].copy_from_slice(&p.data[in_page..in_page + n]);
            addr += n as u64;
            off += n;
        }
        Ok(())
    }

    /// Write `buf` starting at `addr`, marking touched pages dirty.
    ///
    /// # Errors
    ///
    /// [`MemError::PageFault`] for the first absent page touched.
    pub fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemError> {
        let mut addr = addr;
        let mut off = 0usize;
        while off < buf.len() {
            let page = page_of(addr);
            let in_page = (addr - page_base(page)) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            let p = self.page_for_write(page)?;
            p.data[in_page..in_page + n].copy_from_slice(&buf[off..off + n]);
            addr += n as u64;
            off += n;
        }
        Ok(())
    }

    /// Read a NUL-terminated C string at `addr` (capped at 1 MiB).
    ///
    /// # Errors
    ///
    /// Propagates page faults; [`MemError::AccessViolation`] if no NUL is
    /// found within the cap.
    pub fn read_cstr(&mut self, addr: u64) -> Result<Vec<u8>, MemError> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            let mut byte = [0u8];
            self.read(a, &mut byte)?;
            if byte[0] == 0 {
                return Ok(out);
            }
            out.push(byte[0]);
            a += 1;
            if out.len() > 1 << 20 {
                return Err(MemError::AccessViolation { addr });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_zero_reads_zeroes() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        let mut buf = [0xFFu8; 8];
        m.read(0x1234, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn fault_on_absent_page() {
        let mut m = Memory::new(BackingPolicy::FaultOnAbsent);
        let mut buf = [0u8; 4];
        let err = m.read(0x5000, &mut buf).unwrap_err();
        assert_eq!(err, MemError::PageFault { page: 5 });
    }

    #[test]
    fn write_read_roundtrip_across_pages() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let addr = PAGE_SIZE - 100; // straddles three pages
        m.write(addr, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read(addr, &mut back).unwrap();
        assert_eq!(back, data);
        assert!(m.present_count() >= 3);
    }

    #[test]
    fn dirty_tracking() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        m.write(0, &[1, 2, 3]).unwrap();
        m.write(PAGE_SIZE * 5, &[9]).unwrap();
        let dirty: Vec<u64> = m.dirty_pages().collect();
        assert_eq!(dirty, vec![0, 5]);
        assert_eq!(m.dirty_count(), 2);
        m.clear_dirty();
        assert_eq!(m.dirty_count(), 0);
        // Reads do not dirty.
        let mut b = [0u8];
        m.read(0, &mut b).unwrap();
        assert_eq!(m.dirty_count(), 0);
    }

    #[test]
    fn install_and_evict() {
        let mut m = Memory::new(BackingPolicy::FaultOnAbsent);
        let bytes = vec![7u8; PAGE_SIZE as usize];
        m.install_page(3, &bytes);
        let mut b = [0u8; 2];
        m.read(PAGE_SIZE * 3 + 10, &mut b).unwrap();
        assert_eq!(b, [7, 7]);
        // Installed pages are clean until written.
        assert_eq!(m.dirty_count(), 0);
        m.write(PAGE_SIZE * 3, &[1]).unwrap();
        assert_eq!(m.dirty_count(), 1);
        m.evict_page(3);
        assert!(!m.is_present(3));
        assert_eq!(m.dirty_count(), 0);
    }

    #[test]
    fn read_cstr() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        m.write(100, b"hello\0").unwrap();
        assert_eq!(m.read_cstr(100).unwrap(), b"hello");
    }

    #[test]
    #[should_panic(expected = "partial page install")]
    fn install_requires_full_page() {
        let mut m = Memory::new(BackingPolicy::FaultOnAbsent);
        m.install_page(0, &[1, 2, 3]);
    }

    #[test]
    fn tlb_survives_eviction_of_other_pages() {
        // Evicting page B must not corrupt a TLB entry caching page A,
        // and re-installing into a recycled frame must stay coherent.
        let mut m = Memory::new(BackingPolicy::DemandZero);
        m.write(0, &[1]).unwrap(); // page 0 cached in the TLB
        m.write(PAGE_SIZE, &[2]).unwrap(); // page 1 now cached
        m.evict_page(0); // frees page 0's slot
        m.write(2 * PAGE_SIZE, &[3]).unwrap(); // may recycle that slot
        let mut b = [0u8];
        m.read(PAGE_SIZE, &mut b).unwrap();
        assert_eq!(b, [2]);
        m.read(2 * PAGE_SIZE, &mut b).unwrap();
        assert_eq!(b, [3]);
        // The evicted page rereads as zero (demand-zero).
        m.read(0, &mut b).unwrap();
        assert_eq!(b, [0]);
    }

    #[test]
    fn recycled_frames_come_back_zeroed_and_clean() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        m.write(0, &[0xAA; 16]).unwrap();
        m.evict_page(0);
        // The recycled frame backs a new page: must read as zero, clean.
        let mut b = [0xFFu8; 16];
        m.read(7 * PAGE_SIZE, &mut b).unwrap();
        assert_eq!(b, [0u8; 16]);
        assert_eq!(m.dirty_count(), 0);
    }

    #[test]
    fn recycle_reuses_frames_without_new_allocations() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        m.write(0, &[1]).unwrap();
        m.write(PAGE_SIZE * 3, &[2]).unwrap();
        let allocs = m.frame_allocs();
        assert_eq!(allocs, 2);
        m.recycle(BackingPolicy::DemandZero);
        assert_eq!(m.present_count(), 0);
        // The same working set fits entirely in recycled frames.
        m.write(0, &[3]).unwrap();
        m.write(PAGE_SIZE * 7, &[4]).unwrap();
        assert_eq!(m.frame_allocs(), allocs, "steady state must not allocate");
        // Recycled pages read as fresh zeroes around the written bytes.
        let mut b = [0xFFu8; 2];
        m.read(0, &mut b).unwrap();
        assert_eq!(b, [3, 0]);
    }

    #[test]
    fn recycle_adopts_policy_and_drops_baseline_tracking() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        m.set_track_baselines(true);
        m.write(0, &[9]).unwrap();
        m.recycle(BackingPolicy::FaultOnAbsent);
        assert_eq!(m.policy(), BackingPolicy::FaultOnAbsent);
        assert!(!m.tracks_baselines());
        let mut b = [0u8];
        assert_eq!(
            m.read(0, &mut b).unwrap_err(),
            MemError::PageFault { page: 0 }
        );
    }

    #[test]
    fn baseline_snapshots_pre_write_bytes() {
        let mut m = Memory::new(BackingPolicy::FaultOnAbsent);
        m.set_track_baselines(true);
        let mut page = vec![0u8; PAGE_SIZE as usize];
        page[100] = 42;
        m.install_page(2, &page);
        assert!(m.baseline_bytes(2).is_none(), "clean page has no baseline");
        m.write(2 * PAGE_SIZE + 100, &[77]).unwrap();
        m.write(2 * PAGE_SIZE + 200, &[88]).unwrap(); // same page, one snapshot
        let base = m.baseline_bytes(2).expect("dirty page has a baseline");
        assert_eq!(base[100], 42, "baseline holds pre-write bytes");
        assert_eq!(base[200], 0);
        let cur = m.page_bytes(2).unwrap();
        assert_eq!((cur[100], cur[200]), (77, 88));
        m.clear_dirty();
        assert!(m.baseline_bytes(2).is_none(), "clear_dirty drops baselines");
    }

    #[test]
    fn baseline_tracking_flag_survives_clear() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        m.set_track_baselines(true);
        m.write(0, &[1]).unwrap();
        m.clear();
        assert!(m.tracks_baselines());
        m.write(0, &[2]).unwrap();
        let base = m.baseline_bytes(0).expect("snapshot after clear");
        assert_eq!(base[0], 0, "demand-zero page snapshots as zeroes");
    }

    #[test]
    fn access_log_records_tlb_misses_in_order() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        m.write(0, &[1]).unwrap(); // populate pages before logging
        m.write(PAGE_SIZE * 2, &[2]).unwrap();
        m.set_access_log(true);
        let mut b = [0u8];
        m.read(PAGE_SIZE * 2, &mut b).unwrap(); // TLB still holds page 2: hit, not logged
        m.read(0, &mut b).unwrap();
        m.read(1, &mut b).unwrap(); // same page: TLB hit, not logged
        m.read(PAGE_SIZE * 2, &mut b).unwrap();
        let log = m.take_access_log();
        assert_eq!(log, vec![0, 2]);
        assert!(m.take_access_log().is_empty(), "drained");
        m.set_access_log(false);
        m.read(0, &mut b).unwrap();
        assert!(m.take_access_log().is_empty(), "off means off");
    }

    #[test]
    fn access_log_is_capped() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        for p in 0..600u64 {
            m.write(p * PAGE_SIZE, &[1]).unwrap();
        }
        m.set_access_log(true);
        let mut b = [0u8];
        for p in 0..600u64 {
            m.read(p * PAGE_SIZE, &mut b).unwrap();
        }
        assert_eq!(m.take_access_log().len(), super::ACCESS_LOG_CAP);
    }

    #[test]
    fn zero_page_is_a_full_page_of_zeroes() {
        assert_eq!(ZERO_PAGE.len(), PAGE_SIZE as usize);
        assert!(ZERO_PAGE.iter().all(|&b| b == 0));
    }

    #[test]
    fn disabling_tracking_drops_baselines() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        m.set_track_baselines(true);
        m.write(0, &[5]).unwrap();
        assert!(m.baseline_bytes(0).is_some());
        m.set_track_baselines(false);
        assert!(m.baseline_bytes(0).is_none());
    }
}
