//! Execution profiles collected by the VM.
//!
//! The hot function/loop profiler of §3.1 "measures execution time,
//! invocation count, and memory usage of each function and loop in an
//! application with a profiling input" (Table 3). The VM fills a
//! [`ProfileCollector`] while interpreting; the offload compiler's target
//! selector consumes it.

use std::collections::{BTreeSet, HashMap};

use offload_ir::{BlockId, FuncId};

/// Per-function profile.
#[derive(Debug, Clone, Default)]
pub struct FuncProfile {
    /// Times the function was invoked.
    pub invocations: u64,
    /// Inclusive cycles (callees included; recursive re-entries not
    /// double-counted).
    pub inclusive_cycles: u64,
    /// Pages touched while the function was (transitively) active — the
    /// "Mem. Size" column of Table 3 is `pages.len() * PAGE_SIZE`.
    pub pages: BTreeSet<u64>,
}

/// Whole-run profile data.
#[derive(Debug, Clone, Default)]
pub struct ProfileCollector {
    /// Per-function data, indexed by function id.
    pub funcs: HashMap<FuncId, FuncProfile>,
    /// Times each block was entered.
    pub block_counts: HashMap<(FuncId, BlockId), u64>,
    /// Cycles attributed to instructions of each block.
    pub block_cycles: HashMap<(FuncId, BlockId), u64>,
    /// CFG edge traversal counts (needed to tell loop *entries* from
    /// back-edge iterations when profiling loops).
    pub edge_counts: HashMap<(FuncId, BlockId, BlockId), u64>,
    /// Call stack: `(func, cycles at entry, was_already_active)`.
    stack: Vec<(FuncId, u64, bool)>,
}

impl ProfileCollector {
    /// Fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a function entry at the given cycle count.
    pub fn enter(&mut self, f: FuncId, cycles: u64) {
        let active = self.stack.iter().any(|(g, _, _)| *g == f);
        let fp = self.funcs.entry(f).or_default();
        fp.invocations += 1;
        self.stack.push((f, cycles, active));
    }

    /// Record the matching function exit.
    pub fn exit(&mut self, f: FuncId, cycles: u64) {
        let Some((g, entry, was_active)) = self.stack.pop() else {
            return;
        };
        debug_assert_eq!(g, f, "unbalanced profile stack");
        if !was_active {
            let fp = self.funcs.entry(f).or_default();
            fp.inclusive_cycles += cycles.saturating_sub(entry);
        }
    }

    /// Record a block entry via the edge `from -> to` (or program entry if
    /// `from` is `None`).
    pub fn block(&mut self, f: FuncId, from: Option<BlockId>, to: BlockId) {
        *self.block_counts.entry((f, to)).or_default() += 1;
        if let Some(from) = from {
            *self.edge_counts.entry((f, from, to)).or_default() += 1;
        }
    }

    /// Attribute `cycles` to block `bb` of `f`.
    pub fn charge_block(&mut self, f: FuncId, bb: BlockId, cycles: u64) {
        *self.block_cycles.entry((f, bb)).or_default() += cycles;
    }

    /// Record a page touch, attributed to every active frame.
    pub fn touch_page(&mut self, page: u64) {
        let mut seen = BTreeSet::new();
        for (f, _, _) in &self.stack {
            if seen.insert(*f) {
                self.funcs.entry(*f).or_default().pages.insert(page);
            }
        }
    }

    /// Per-function memory footprint in bytes (pages touched × page size).
    pub fn mem_bytes(&self, f: FuncId) -> u64 {
        self.funcs
            .get(&f)
            .map_or(0, |p| p.pages.len() as u64 * crate::PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_cycles_ignore_recursion() {
        let f = FuncId(0);
        let mut p = ProfileCollector::new();
        p.enter(f, 0);
        p.enter(f, 10); // recursive
        p.exit(f, 90);
        p.exit(f, 100);
        assert_eq!(p.funcs[&f].invocations, 2);
        // Only the outer activation contributes inclusive time.
        assert_eq!(p.funcs[&f].inclusive_cycles, 100);
    }

    #[test]
    fn pages_attributed_to_all_active_frames() {
        let (f, g) = (FuncId(0), FuncId(1));
        let mut p = ProfileCollector::new();
        p.enter(f, 0);
        p.enter(g, 5);
        p.touch_page(7);
        p.exit(g, 10);
        p.exit(f, 20);
        assert!(p.funcs[&f].pages.contains(&7));
        assert!(p.funcs[&g].pages.contains(&7));
        assert_eq!(p.mem_bytes(f), crate::PAGE_SIZE);
    }

    #[test]
    fn block_and_edge_counts() {
        let f = FuncId(0);
        let (a, b) = (BlockId(0), BlockId(1));
        let mut p = ProfileCollector::new();
        p.block(f, None, a);
        p.block(f, Some(a), b);
        p.block(f, Some(b), b);
        assert_eq!(p.block_counts[&(f, b)], 2);
        assert_eq!(p.edge_counts[&(f, b, b)], 1);
        assert_eq!(p.edge_counts[&(f, a, b)], 1);
    }
}
