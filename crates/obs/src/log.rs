//! A minimal leveled logger for the tools that ride on the stack (the
//! `reproduce` binary, examples). Messages go to stderr so figure output
//! on stdout stays machine-readable; `--quiet` maps to
//! [`Verbosity::Quiet`].

use std::io::Write;

/// How much progress chatter to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Suppress progress messages entirely.
    Quiet,
    /// Normal progress messages.
    Info,
    /// Extra diagnostic detail.
    Debug,
}

/// A stderr logger with a verbosity gate and an optional line prefix
/// (used by the farm to make concurrent worker output attributable).
#[derive(Debug, Clone)]
pub struct Logger {
    verbosity: Verbosity,
    prefix: String,
}

impl Logger {
    /// A logger at the given verbosity.
    pub fn new(verbosity: Verbosity) -> Self {
        Logger {
            verbosity,
            prefix: String::new(),
        }
    }

    /// A quiet logger (drops everything below errors).
    pub fn quiet() -> Self {
        Self::new(Verbosity::Quiet)
    }

    /// A copy of this logger that prepends `[{prefix}] ` to every line —
    /// e.g. `log.scoped("worker 3")` for per-worker farm attribution.
    pub fn scoped(&self, prefix: &str) -> Self {
        Logger {
            verbosity: self.verbosity,
            prefix: format!("[{prefix}] "),
        }
    }

    /// The active verbosity.
    pub fn verbosity(&self) -> Verbosity {
        self.verbosity
    }

    /// The active line prefix (empty for an unscoped logger).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Progress message (suppressed when quiet).
    pub fn info(&self, msg: &str) {
        if self.verbosity >= Verbosity::Info {
            let _ = writeln!(std::io::stderr(), "{}{msg}", self.prefix);
        }
    }

    /// Diagnostic message (only at debug verbosity).
    pub fn debug(&self, msg: &str) {
        if self.verbosity >= Verbosity::Debug {
            let _ = writeln!(std::io::stderr(), "[debug] {}{msg}", self.prefix);
        }
    }
}

impl Default for Logger {
    fn default() -> Self {
        Self::new(Verbosity::Info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_orders() {
        assert!(Verbosity::Quiet < Verbosity::Info);
        assert!(Verbosity::Info < Verbosity::Debug);
        assert_eq!(Logger::quiet().verbosity(), Verbosity::Quiet);
        // Smoke: none of these panic.
        Logger::quiet().info("dropped");
        Logger::default().debug("dropped");
    }

    #[test]
    fn scoped_logger_carries_prefix_and_verbosity() {
        let base = Logger::new(Verbosity::Debug);
        let w = base.scoped("worker 3");
        assert_eq!(w.prefix(), "[worker 3] ");
        assert_eq!(w.verbosity(), Verbosity::Debug);
        assert_eq!(base.prefix(), "");
        w.info("smoke");
    }
}
