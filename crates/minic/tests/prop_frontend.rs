//! Fuzz tests for the MiniC front-end: generated programs always lex,
//! parse, lower and verify — and constant-expression programs evaluate
//! correctly end to end (differential testing against a Rust model of
//! the same arithmetic). Cases come from a fixed-seed splitmix64 stream,
//! so every run fuzzes identical programs and failures reproduce.

/// Minimal splitmix64 — the canonical copy lives in
/// `offload_workloads::rng`, which this leaf crate cannot depend on.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }
}

/// A tiny expression AST we can render to MiniC *and* evaluate in Rust.
#[derive(Debug, Clone)]
enum E {
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Neg(Box<E>),
}

/// A random expression tree of bounded depth (mirrors the original
/// recursive strategy: depth ≤ 4, literals in -1000..1000).
fn gen_expr(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.below(3) == 0 {
        return E::Lit(rng.below(2000) as i32 - 1000);
    }
    match rng.below(4) {
        0 => E::Add(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        1 => E::Sub(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        2 => E::Mul(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        _ => E::Neg(Box::new(gen_expr(rng, depth - 1))),
    }
}

fn render(e: &E) -> String {
    match e {
        E::Lit(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        E::Add(a, b) => format!("({} + {})", render(a), render(b)),
        E::Sub(a, b) => format!("({} - {})", render(a), render(b)),
        E::Mul(a, b) => format!("({} * {})", render(a), render(b)),
        E::Neg(a) => format!("(-{})", render(a)),
    }
}

fn eval(e: &E) -> i32 {
    match e {
        E::Lit(v) => *v,
        E::Add(a, b) => eval(a).wrapping_add(eval(b)),
        E::Sub(a, b) => eval(a).wrapping_sub(eval(b)),
        E::Mul(a, b) => eval(a).wrapping_mul(eval(b)),
        E::Neg(a) => eval(a).wrapping_neg(),
    }
}

fn run_main(src: &str) -> i64 {
    use offload_machine::{
        host::LocalHost,
        loader,
        target::TargetSpec,
        vm::{StackBank, Vm},
    };
    let module = offload_minic::compile(src, "prop").expect("compiles");
    offload_ir::verify::verify_module(&module).expect("verifies");
    let spec = TargetSpec::xps_8700();
    let image = loader::load(&module, &offload_ir::TargetAbi::MobileArm32.data_layout()).unwrap();
    let mut host = LocalHost::new();
    let mut vm = Vm::new(&module, &spec, image, StackBank::Mobile);
    vm.set_fuel(10_000_000);
    vm.run_entry(&mut host)
        .expect("runs")
        .expect("returns")
        .as_i()
}

/// Differential test: MiniC arithmetic matches Rust's wrapping i32
/// arithmetic for arbitrary expression trees.
#[test]
fn expression_evaluation_matches_rust() {
    let mut rng = Rng(0xE49);
    for _ in 0..48 {
        let e = gen_expr(&mut rng, 4);
        let expected = eval(&e);
        let src = format!(
            "int main() {{ long v = (long)({}); return (int)(v & 255); }}",
            render(&e)
        );
        let got = run_main(&src);
        assert_eq!(got, (expected as i64 & 255) as i32 as i64, "expr {e:?}");
    }
}

/// Random for-loop sums match the closed-form model.
#[test]
fn loop_sums_match() {
    let mut rng = Rng(0x0001_0095);
    for _ in 0..32 {
        let n = rng.below(500) as i32;
        let step = 1 + rng.below(6) as i32;
        let src = format!(
            "int main() {{ int i; long acc = 0; for (i = 0; i < {n}; i += {step}) acc += i; return (int)(acc % 8191); }}"
        );
        let mut expect: i64 = 0;
        let mut i = 0;
        while i < n {
            expect += i as i64;
            i += step;
        }
        assert_eq!(run_main(&src), expect % 8191);
    }
}

/// Generated character soup never crashes the lexer/parser: they either
/// parse or return a clean error (no panics).
#[test]
fn lexer_parser_total() {
    const ALPHABET: &[u8] = b"abcxyz0189+*/(){};= <>!&|,-";
    let mut rng = Rng(0x50_0b);
    for _ in 0..128 {
        let len = rng.below(200) as usize;
        let garbage: String = (0..len)
            .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize] as char)
            .collect();
        if let Ok(tokens) = offload_minic::lexer::lex(&garbage) {
            let _ = offload_minic::parser::parse(tokens); // Ok or Err, no panic
        }
    }
}

/// Struct field access roundtrips through memory for random field counts
/// and values.
#[test]
fn struct_fields_roundtrip() {
    let mut rng = Rng(0x57_40C7);
    for _ in 0..24 {
        let vals: Vec<i32> = (0..1 + rng.below(7))
            .map(|_| rng.below(20_000) as i32 - 10_000)
            .collect();
        let fields: Vec<String> = (0..vals.len()).map(|i| format!("int f{i};")).collect();
        let sets: Vec<String> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| format!("s.f{i} = {v};"))
            .collect();
        let sum: Vec<String> = (0..vals.len()).map(|i| format!("s.f{i}")).collect();
        let src = format!(
            "typedef struct {{ {} }} S;\n int main() {{ S s; {} long t = (long)({}); return (int)(t % 100003); }}",
            fields.join(" "),
            sets.join(" "),
            sum.join(" + ")
        );
        let expect: i64 = vals.iter().map(|v| *v as i64).sum();
        // C's % truncates toward zero, exactly like Rust's.
        assert_eq!(run_main(&src), expect % 100003);
    }
}
