//! Integration: unified-virtual-address semantics across architectures —
//! the §3.2 story. Layout realignment (Fig. 4), endianness translation,
//! address-size conversion, unified heap sharing.

use native_offloader::{CompileConfig, Offloader, SessionConfig, WorkloadInput};
use offload_machine::target::TargetSpec;

/// A program whose hot task walks a pointer-linked structure built on the
/// mobile side: only works offloaded because every object is on the UVA
/// space (u_malloc) and pages copy on demand.
const LINKED: &str = r#"
typedef struct Node { int value; struct Node *next; } Node;
Node *head;
int nnodes;

long walk(int reps) {
    int r;
    long sum = 0;
    for (r = 0; r < reps; r++) {
        Node *p = head;
        while (p) {
            sum += p->value;
            p = p->next;
        }
    }
    return sum;
}

int main() {
    int reps; int i;
    scanf("%d %d", &nnodes, &reps);
    head = 0;
    for (i = 0; i < nnodes; i++) {
        Node *n = (Node*)malloc(sizeof(Node));
        n->value = i * 3 + 1;
        n->next = head;
        head = n;
    }
    long s = walk(reps);
    printf("sum %d\n", (int)(s % 1000000007));
    return 0;
}
"#;

fn linked_input() -> WorkloadInput {
    WorkloadInput::from_stdin("2000 220\n")
}

#[test]
fn pointer_chasing_works_across_the_uva() {
    // The server dereferences mobile-built 32-bit pointers through the
    // unified layout + PtrZext conversions; copy-on-demand pulls the
    // list's heap pages over.
    let app = Offloader::new()
        .compile_source(LINKED, "linked", &WorkloadInput::from_stdin("1500 120\n"))
        .unwrap();
    assert!(
        app.plan.task_by_name("walk").is_some(),
        "{:#?}",
        app.plan.estimates
    );
    let local = app.run_local(&linked_input()).unwrap();
    let off = app
        .run_offloaded(&linked_input(), &SessionConfig::fast_network())
        .unwrap();
    assert_eq!(local.console, off.console);
    assert!(
        off.demand_page_fetches + off.prefetched_pages > 5,
        "list pages must travel"
    );
}

#[test]
fn heap_sites_were_unified_for_the_linked_list() {
    let app = Offloader::new()
        .compile_source(LINKED, "linked", &WorkloadInput::from_stdin("800 60\n"))
        .unwrap();
    assert!(
        app.plan.stats.heap_sites_unified >= 1,
        "malloc became u_malloc"
    );
    // The server partition sees u_malloc, not malloc.
    let server_text = app.server.to_string();
    assert!(!server_text.contains(" builtin malloc("), "{server_text}");
}

#[test]
fn offload_to_big_endian_server_works_via_translation() {
    // The paper's eval never hits the endianness path (both devices are
    // little-endian, §5.1); this synthetic big-endian server exercises it
    // end to end: the compiler inserts ByteSwap shims, and the offloaded
    // run still matches local output.
    let config = CompileConfig {
        server: TargetSpec::big_endian_server(),
        ..CompileConfig::default()
    };
    let app = Offloader::with_config(config)
        .compile_source(
            LINKED,
            "linked-be",
            &WorkloadInput::from_stdin("1500 120\n"),
        )
        .unwrap();
    let mut session = SessionConfig::fast_network();
    session.server = TargetSpec::big_endian_server();
    let local = app.run_local(&linked_input()).unwrap();
    let off = app.run_offloaded(&linked_input(), &session).unwrap();
    assert_eq!(local.console, off.console, "byte-swapped reads must agree");
    assert!(off.offloads_performed > 0);
}

#[test]
fn big_endian_server_without_translation_breaks() {
    // Negative control: compile for a little-endian server (no swaps) but
    // run the server VM big-endian. The result must differ — proving the
    // translation pass is load-bearing, not decorative.
    let app = Offloader::new()
        .compile_source(
            LINKED,
            "linked-wrong",
            &WorkloadInput::from_stdin("1500 120\n"),
        )
        .unwrap();
    let mut session = SessionConfig::fast_network();
    session.server = TargetSpec::big_endian_server();
    let local = app.run_local(&linked_input()).unwrap();
    // The run either produces wrong output or crashes on a garbage
    // pointer — both demonstrate the §3.2 failure mode.
    if let Ok(off) = app.run_offloaded(&linked_input(), &session) {
        assert_ne!(
            local.console, off.console,
            "unswapped BE reads must corrupt"
        );
    }
}

#[test]
fn sret_aggregates_round_trip_through_offload() {
    // A struct-returning target (like Fig. 3's getAITurn): the hidden sret
    // pointer targets the mobile stack; the server's writes come home via
    // dirty-page write-back.
    let src = r#"
        typedef struct { int lo; int hi; double mean; } Stats;
        int data[8192];
        Stats summarize(int n) {
            Stats s;
            int i; long total = 0;
            s.lo = 1000000; s.hi = -1000000;
            for (i = 0; i < n; i++) {
                int v = data[i % 8192] + (i % 13);
                if (v < s.lo) s.lo = v;
                if (v > s.hi) s.hi = v;
                total += v;
            }
            s.mean = (double)total / (double)n;
            return s;
        }
        int main() {
            int n; int i;
            scanf("%d", &n);
            for (i = 0; i < 8192; i++) data[i] = (i * 37) % 1000;
            Stats s;
            s = summarize(n);
            printf("%d %d %.3f\n", s.lo, s.hi, s.mean);
            return 0;
        }
    "#;
    let app = Offloader::new()
        .compile_source(src, "sret", &WorkloadInput::from_stdin("400000\n"))
        .unwrap();
    assert!(
        app.plan.task_by_name("summarize").is_some(),
        "{:#?}",
        app.plan.estimates
    );
    let input = WorkloadInput::from_stdin("800000\n");
    let local = app.run_local(&input).unwrap();
    let off = app
        .run_offloaded(&input, &SessionConfig::fast_network())
        .unwrap();
    assert_eq!(local.console, off.console);
    assert!(
        off.dirty_pages_written_back > 0,
        "the sret page must come home"
    );
}

#[test]
fn server_stack_is_relocated_away_from_mobile_stack() {
    // §3.3 stack reallocation: server-private pages (its stack) must never
    // be written back into mobile memory.
    use offload_machine::uva_map;
    const { assert!(uva_map::SERVER_STACK_TOP < uva_map::MOBILE_STACK_TOP - uva_map::STACK_SIZE) };
    let app = Offloader::new()
        .compile_source(LINKED, "linked", &WorkloadInput::from_stdin("1000 100\n"))
        .unwrap();
    let off = app
        .run_offloaded(&linked_input(), &SessionConfig::fast_network())
        .unwrap();
    // No event ships a server-stack page to the mobile device: the dirty
    // write-back count excludes server-private ranges by construction, and
    // the run stays correct (checked elsewhere); here we sanity-check the
    // counters exist and the run offloaded.
    assert!(off.offloads_performed > 0);
}
