//! Device specifications: ISA profile, cost model and power states.

use offload_ir::{DataLayout, TargetAbi};

use crate::power::PowerSpec;

/// Cycle costs per instruction class. Each simulated device has its own
/// table; the ratio between the mobile and server tables (together with the
/// clock rates) realizes the paper's mobile/server performance ratio `R`
/// (Table 1 measures ≈5.4–5.9×; Equation 1 assumes `R = 5`).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Integer ALU op.
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide / remainder.
    pub div: u64,
    /// Floating-point add/sub/mul/compare.
    pub fpu: u64,
    /// Floating-point divide.
    pub fdiv: u64,
    /// Memory load (cache-mixed average).
    pub load: u64,
    /// Memory store.
    pub store: u64,
    /// Branch (taken-mixed average).
    pub branch: u64,
    /// Call/return overhead.
    pub call: u64,
    /// Cast/conversion.
    pub cast: u64,
    /// Transcendental math builtin (`sqrt`, `sin`, ...).
    pub math: u64,
    /// Per-byte cost of `memcpy`/`memset`.
    pub byte_move_milli: u64,
    /// Function-pointer map lookup (`m2sFcnMap`/`s2mFcnMap`, §3.4). High,
    /// matching the visible translation overheads of Fig. 7.
    pub fn_map: u64,
    /// Per-character formatting cost of `printf`/`scanf`.
    pub io_char: u64,
    /// Fixed cost of a heap allocation.
    pub alloc: u64,
}

impl CostModel {
    /// Cost table for the simulated mobile core (in-order, low IPC).
    pub fn mobile() -> Self {
        CostModel {
            alu: 6,
            mul: 9,
            div: 40,
            fpu: 10,
            fdiv: 60,
            load: 12,
            store: 12,
            branch: 7,
            call: 40,
            cast: 4,
            math: 120,
            byte_move_milli: 1500,
            fn_map: 150,
            io_char: 300,
            alloc: 300,
        }
    }

    /// Cost table for the simulated server core (wide out-of-order).
    pub fn server() -> Self {
        CostModel {
            alu: 1,
            mul: 2,
            div: 8,
            fpu: 2,
            fdiv: 10,
            load: 2,
            store: 2,
            branch: 1,
            call: 8,
            cast: 1,
            math: 25,
            byte_move_milli: 250,
            fn_map: 45,
            io_char: 60,
            alloc: 60,
        }
    }
}

/// A complete simulated device description.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetSpec {
    /// Human-readable device name.
    pub name: String,
    /// ABI (pointer width, endianness, alignment rules).
    pub abi: TargetAbi,
    /// Core clock in Hz.
    pub clock_hz: u64,
    /// Per-instruction-class cycle costs.
    pub cpi: CostModel,
    /// Power-state model (meaningful for the battery-powered mobile
    /// device; the server's power is not measured, as in the paper).
    pub power: PowerSpec,
}

impl TargetSpec {
    /// The paper's mobile device: Samsung Galaxy S5, 2.5 GHz quad-core
    /// Krait 400, ARM 32-bit, little-endian, Android 4.4.2.
    pub fn galaxy_s5() -> Self {
        TargetSpec {
            name: "Samsung Galaxy S5 (Krait 400, ARM32)".into(),
            abi: TargetAbi::MobileArm32,
            clock_hz: 2_500_000_000,
            cpi: CostModel::mobile(),
            power: PowerSpec::galaxy_s5(),
        }
    }

    /// The paper's server: Dell XPS 8700, Intel i7-4790 @ 3.6 GHz,
    /// x86-64, little-endian, Ubuntu 14.04.
    pub fn xps_8700() -> Self {
        TargetSpec {
            name: "Dell XPS 8700 (i7-4790, x86-64)".into(),
            abi: TargetAbi::ServerX8664,
            clock_hz: 3_600_000_000,
            cpi: CostModel::server(),
            power: PowerSpec::mains_powered(),
        }
    }

    /// A synthetic big-endian server used to exercise the endianness
    /// translation pass (§3.2), which the paper's all-little-endian
    /// evaluation never triggers.
    pub fn big_endian_server() -> Self {
        TargetSpec {
            name: "Synthetic big-endian server".into(),
            abi: TargetAbi::ServerBigEndian64,
            ..TargetSpec::xps_8700()
        }
    }

    /// The concrete data-layout rules of this device's ABI.
    pub fn data_layout(&self) -> DataLayout {
        self.abi.data_layout()
    }

    /// Convert a cycle count on this device to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }

    /// Approximate scalar throughput in "ALU ops per second", used to
    /// express the mobile/server performance ratio.
    pub fn alu_ops_per_second(&self) -> f64 {
        self.clock_hz as f64 / self.cpi.alu as f64
    }

    /// The performance ratio `R` of Equation 1 relative to `other`:
    /// how many times faster `other` is than `self` on ALU work.
    pub fn performance_ratio(&self, other: &TargetSpec) -> f64 {
        other.alu_ops_per_second() / self.alu_ops_per_second()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_abis() {
        assert_eq!(TargetSpec::galaxy_s5().data_layout().ptr_bytes, 4);
        assert_eq!(TargetSpec::xps_8700().data_layout().ptr_bytes, 8);
        assert_eq!(
            TargetSpec::big_endian_server().data_layout().endian,
            offload_ir::Endian::Big
        );
    }

    #[test]
    fn performance_ratio_matches_paper_range() {
        let mobile = TargetSpec::galaxy_s5();
        let server = TargetSpec::xps_8700();
        let r = mobile.performance_ratio(&server);
        // Table 1 measures 5.4–5.9x; Eq. 1 assumes 5. Our cost tables land
        // in the high end of that neighbourhood.
        assert!((4.0..=12.0).contains(&r), "R = {r}");
    }

    #[test]
    fn cycles_to_seconds() {
        let s = TargetSpec::galaxy_s5();
        let t = s.cycles_to_seconds(2_500_000_000);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn server_is_faster_per_class() {
        let m = CostModel::mobile();
        let s = CostModel::server();
        assert!(s.alu < m.alu && s.load < m.load && s.math < m.math);
    }
}
