//! Soundness regression tests for the analysis-backed function filter.
//!
//! The rewritten filter resolves indirect calls through points-to analysis
//! instead of ignoring them. That must only ever make the filter
//! *stricter*: a fixed-seed fuzz sweep checks that every function the old
//! syntactic filter rejected for a non-indirect reason is still rejected,
//! plus deterministic cases for bounded-clean vs bounded-tainted indirect
//! calls and the §3.2 `ptrtoint` round-trip hazard.

use std::collections::BTreeSet;

use native_offloader::compiler::filter::run_filter;
use native_offloader::{analyze_module, analyze_source};
use offload_ir::builder::FunctionBuilder;
use offload_ir::diag::Code;
use offload_ir::{Builtin, Callee, CastKind, ConstValue, FuncId, Inst, Module, Type};

/// Fixed-seed splitmix64: deterministic across runs and platforms.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random module: 3–6 functions whose bodies mix clean arithmetic,
/// direct calls, interactive and remotable builtins, inline asm, raw
/// syscalls, calls to an external declaration, and indirect calls through
/// `FuncAddr` constants.
fn random_module(rng: &mut Rng, tag: u64) -> Module {
    let mut m = Module::new(format!("fuzz{tag}"));
    let ext = m.declare_function("mystery_ext", vec![], Type::Void);
    let nfuncs = 3 + rng.below(4) as usize;
    let fids: Vec<FuncId> = (0..nfuncs)
        .map(|i| m.declare_function(format!("f{i}"), vec![], Type::I32))
        .collect();
    for (i, fid) in fids.iter().enumerate() {
        let mut b = FunctionBuilder::new(&mut m, *fid);
        let nacts = 1 + rng.below(6);
        for _ in 0..nacts {
            match rng.below(8) {
                0 | 1 => {
                    let c = b.const_i32(rng.below(100) as i32);
                    let d = b.const_i32(3);
                    b.bin(offload_ir::BinOp::Add, Type::I32, c, d);
                }
                2 => {
                    // Direct call to an earlier function (keeps the call
                    // graph acyclic so both filters terminate trivially).
                    if i > 0 {
                        let callee = fids[rng.below(i as u64) as usize];
                        let _ = b.call(callee, vec![]);
                    }
                }
                3 => {
                    // Interactive input: taints under both filters.
                    let _ = b.call_builtin(Builtin::Getchar, Type::I32, vec![]);
                }
                4 => {
                    // Remotable output: taints neither.
                    let c = b.const_i32(88);
                    let _ = b.call_builtin(Builtin::Putchar, Type::I32, vec![c]);
                }
                5 => {
                    b.push(Inst::InlineAsm { text: "wfi".into() });
                }
                6 => {
                    let dst = b.new_value(Type::I64);
                    b.push(Inst::Syscall {
                        dst,
                        number: rng.below(300) as u32,
                        args: vec![],
                    });
                }
                _ => {
                    if rng.below(4) == 0 {
                        let _ = b.call(ext, vec![]);
                    } else if i > 0 {
                        // Indirect call the old filter ignored entirely.
                        let target = fids[rng.below(i as u64) as usize];
                        let fp = b.const_value(ConstValue::FuncAddr(target));
                        let _ = b.call_indirect(fp, Type::I32, vec![]);
                    }
                }
            }
        }
        let r = b.const_i32(0);
        b.ret(Some(r));
        b.finish();
    }
    m
}

/// The pre-rewrite filter, reimplemented verbatim as the fuzz oracle:
/// per-function syntactic seed scan (asm, syscalls, non-remotable
/// builtins, calls to declarations), upward taint over *direct* calls
/// only, indirect calls ignored.
fn old_syntactic_filter(m: &Module) -> BTreeSet<FuncId> {
    let mut tainted = BTreeSet::new();
    for (id, f) in m.iter_functions() {
        if f.is_declaration() {
            tainted.insert(id);
            continue;
        }
        'body: for (_, block) in f.iter_blocks() {
            for inst in &block.insts {
                let bad = match inst {
                    Inst::InlineAsm { .. } | Inst::Syscall { .. } => true,
                    Inst::Call {
                        callee: Callee::Builtin(b),
                        ..
                    } => b.is_machine_specific() && b.remote_replacement().is_none(),
                    Inst::Call {
                        callee: Callee::Direct(g),
                        ..
                    } => m.function(*g).is_declaration(),
                    _ => false,
                };
                if bad {
                    tainted.insert(id);
                    break 'body;
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for (id, f) in m.iter_functions() {
            if tainted.contains(&id) || f.is_declaration() {
                continue;
            }
            let calls_tainted = f.iter_blocks().any(|(_, block)| {
                block.insts.iter().any(|inst| {
                    matches!(inst,
                        Inst::Call { callee: Callee::Direct(g), .. } if tainted.contains(g))
                })
            });
            if calls_tainted {
                tainted.insert(id);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    tainted
}

#[test]
fn new_filter_never_admits_what_the_old_filter_rejected() {
    let mut rng = Rng(0x00ff_10ad_5eed_2026);
    for tag in 0..200 {
        let m = random_module(&mut rng, tag);
        let old = old_syntactic_filter(&m);
        let new = run_filter(&m, true);
        for f in &old {
            assert!(
                !new.is_offloadable(*f),
                "module fuzz{tag}: `{}` was machine specific under the old \
                 syntactic filter but the analysis-backed filter admits it",
                m.function(*f).name
            );
        }
    }
}

#[test]
fn fuzz_exercises_every_cause_kind() {
    // Guard against the generator silently degenerating: across the sweep
    // the new filter must see both clean functions and indirect calls.
    let mut rng = Rng(0x00ff_10ad_5eed_2026);
    let (mut clean, mut indirect) = (0usize, 0usize);
    for tag in 0..200 {
        let m = random_module(&mut rng, tag);
        let r = run_filter(&m, true);
        clean += m
            .iter_functions()
            .filter(|(id, f)| !f.is_declaration() && r.is_offloadable(*id))
            .count();
        indirect += r.indirect.len();
    }
    assert!(clean > 50, "generator produced almost no clean functions");
    assert!(indirect > 50, "generator produced almost no indirect calls");
}

#[test]
fn bounded_clean_indirect_call_is_admitted_with_verdict() {
    let r = analyze_source(
        "typedef int (*OP)(int);\n\
         int inc(int x) { return x + 1; }\n\
         int dec(int x) { return x - 1; }\n\
         OP ops[2] = { inc, dec };\n\
         int apply(int w, int x) { OP f = (ops)[w % 2]; return f(x); }\n\
         int main() { int w; scanf(\"%d\", &w); printf(\"%d\\n\", apply(w, 5)); return 0; }",
        "clean_table",
        true,
    )
    .unwrap();
    let apply = r.verdicts.iter().find(|v| v.name == "apply").unwrap();
    assert!(
        apply.offloadable,
        "bounded-clean table must stay offloadable"
    );
    assert_eq!(r.indirect_bounded, 1);
    assert_eq!(r.indirect_unbounded, 0);
}

#[test]
fn bounded_tainted_indirect_call_is_rejected_with_precise_callee() {
    let r = analyze_source(
        "typedef int (*OP)(int);\n\
         int inc(int x) { return x + 1; }\n\
         int ask(int x) { int v; scanf(\"%d\", &v); return x + v; }\n\
         OP ops[2] = { inc, ask };\n\
         int apply(int w, int x) { OP f = (ops)[w % 2]; return f(x); }\n\
         int main() { int w; scanf(\"%d\", &w); printf(\"%d\\n\", apply(w, 5)); return 0; }",
        "tainted_table",
        true,
    )
    .unwrap();
    let apply = r.verdicts.iter().find(|v| v.name == "apply").unwrap();
    assert!(!apply.offloadable);
    assert_eq!(apply.code, Some(Code::IndirectTainted));
    assert_eq!(
        apply.reason.as_deref(),
        Some("indirect call may reach machine-specific `ask`"),
        "the offending callee must be named precisely"
    );
    assert_eq!(apply.chain, vec!["apply", "ask"]);
}

#[test]
fn wide_ptrtoint_round_trip_is_clean() {
    // ptr -> i64 -> ptr: verifies and raises no OFF010/OFF011 — i64 holds
    // every target's addresses, and provenance survives the round-trip.
    let mut m = Module::new("rt");
    let f = m.declare_function("round_trip", vec![Type::I32.ptr_to()], Type::I32);
    let mut b = FunctionBuilder::new(&mut m, f);
    let p = b.param(0);
    let as_int = b.cast(CastKind::PtrToInt, Type::I64, p);
    let back = b.cast(CastKind::IntToPtr, Type::I32.ptr_to(), as_int);
    let v = b.load(Type::I32, back);
    b.ret(Some(v));
    b.finish();
    assert!(offload_ir::verify::verify_module(&m).is_ok());
    let r = analyze_module(&m, true);
    assert!(!r.has_errors());
    assert!(
        !r.diagnostics
            .iter()
            .any(|d| matches!(d.code, Code::PtrToIntNarrow | Code::IntToPtrNoProvenance)),
        "a width-preserving round-trip must not be flagged"
    );
}

#[test]
fn narrow_ptrtoint_is_flagged_and_narrow_inttoptr_rejected() {
    // ptr -> i32: the truncation loses the high half of a 64-bit server
    // address. The lint flags it as an error; casting the narrow integer
    // back to a pointer is rejected outright by the verifier.
    let mut m = Module::new("rt");
    let f = m.declare_function("truncating", vec![Type::I32.ptr_to()], Type::I32);
    let mut b = FunctionBuilder::new(&mut m, f);
    let p = b.param(0);
    let narrow = b.cast(CastKind::PtrToInt, Type::I32, p);
    b.ret(Some(narrow));
    b.finish();
    let r = analyze_module(&m, true);
    assert!(r.has_errors());
    assert!(r.diagnostics.iter().any(|d| d.code == Code::PtrToIntNarrow));

    let g = m.declare_function("refabricating", vec![Type::I32.ptr_to()], Type::I32);
    let mut b = FunctionBuilder::new(&mut m, g);
    let p = b.param(0);
    let narrow = b.cast(CastKind::PtrToInt, Type::I32, p);
    let back = b.cast(CastKind::IntToPtr, Type::I32.ptr_to(), narrow);
    let v = b.load(Type::I32, back);
    b.ret(Some(v));
    b.finish();
    let err = offload_ir::verify::verify_module(&m).unwrap_err();
    assert!(err.message.contains("inttoptr from i32"), "{err}");
}
