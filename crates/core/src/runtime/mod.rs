//! The Native Offloader runtime (§4): seamless cooperative execution of
//! the two partitions over a unified virtual address space.

pub mod bandwidth;
pub mod derive;
pub mod estimator;
pub mod evloop;
pub mod farm;
pub mod predict;
pub mod report;
pub mod session;

pub use evloop::{
    atomic_makespan, atomic_schedule, check_evloop_equivalence, multiplex, run_evloop,
    EvloopConfig, EvloopResult, EvloopSchedule, SessionScript, SessionState,
};
pub use farm::{run_farm, run_farm_logged, FarmJob, FarmResult};
pub use predict::{AdaptiveWindow, PageHistory, StreamEngine, StreamMode, StrideDetector};
pub use session::{
    run_local, run_offloaded, run_offloaded_pooled, run_offloaded_traced, SessionPool,
};
