//! Sharded trace collection for concurrent session farms.
//!
//! A farm runs many offload sessions across worker threads, each worker
//! owning a private [`TraceCollector`](crate::TraceCollector). After every
//! session the worker moves the collector's contents out as a
//! [`TraceShard`] tagged with the session's **job index** — the position
//! of the job in the submitted queue, a scheduling-independent identity.
//! [`merge_shards`] then orders the shards by that index (stable), so the
//! merged stream is byte-identical no matter which worker ran which job
//! or in what order they finished.
//!
//! Each shard is a complete, self-contained session trace: per-job
//! reconciliation (`derive::check_reconciliation` in `native-offloader`)
//! runs against `shard.records` exactly as it would against a serial
//! run's collector.

use crate::event::Record;
use crate::metrics::MetricsSnapshot;

/// One session's complete event stream, tagged for deterministic merge.
#[derive(Debug, Clone)]
pub struct TraceShard {
    /// Index of the job in the farm's submission order.
    pub job: usize,
    /// The session's records, in arrival order.
    pub records: Vec<Record>,
    /// Metrics accumulated over the session.
    pub metrics: MetricsSnapshot,
    /// Records lost to ring overflow during the session.
    pub dropped: u64,
}

/// Shards ordered by job index — the deterministic merged view of a
/// farm's trace, independent of worker scheduling.
#[derive(Debug, Clone, Default)]
pub struct MergedTrace {
    shards: Vec<TraceShard>,
}

impl MergedTrace {
    /// The per-job shards, ascending by job index.
    pub fn shards(&self) -> &[TraceShard] {
        &self.shards
    }

    /// The shard for `job`, if present.
    pub fn shard(&self, job: usize) -> Option<&TraceShard> {
        self.shards
            .binary_search_by_key(&job, |s| s.job)
            .ok()
            .map(|i| &self.shards[i])
    }

    /// All records concatenated in job order (job boundaries preserved by
    /// [`MergedTrace::shards`]).
    pub fn records(&self) -> Vec<Record> {
        let total = self.shards.iter().map(|s| s.records.len()).sum();
        let mut out = Vec::with_capacity(total);
        for s in &self.shards {
            out.extend_from_slice(&s.records);
        }
        out
    }

    /// Total records lost to ring overflow across all shards.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }

    /// Number of shards held.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` if no shards were merged.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

/// Merge worker-collected shards into job-index order. The sort is
/// stable, so shards sharing an index (which a correct farm never
/// produces) keep their arrival order rather than flapping by thread
/// timing.
pub fn merge_shards(mut shards: Vec<TraceShard>) -> MergedTrace {
    shards.sort_by_key(|s| s.job);
    MergedTrace { shards }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn shard(job: usize, cycles: u64) -> TraceShard {
        TraceShard {
            job,
            records: vec![Record {
                ts_s: 0.0,
                kind: EventKind::MobileCompute { cycles },
            }],
            metrics: MetricsSnapshot::default(),
            dropped: 0,
        }
    }

    #[test]
    fn merge_orders_by_job_index_regardless_of_arrival() {
        // Two workers finishing out of order must merge identically.
        let a = merge_shards(vec![shard(2, 20), shard(0, 0), shard(1, 10)]);
        let b = merge_shards(vec![shard(1, 10), shard(2, 20), shard(0, 0)]);
        let jobs: Vec<usize> = a.shards().iter().map(|s| s.job).collect();
        assert_eq!(jobs, vec![0, 1, 2]);
        assert_eq!(a.records(), b.records());
        assert_eq!(a.shard(1).unwrap().records, shard(1, 10).records);
        assert!(a.shard(9).is_none());
    }

    #[test]
    fn merged_records_concatenate_in_job_order() {
        let m = merge_shards(vec![shard(1, 111), shard(0, 222)]);
        let recs = m.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, EventKind::MobileCompute { cycles: 222 });
        assert_eq!(recs[1].kind, EventKind::MobileCompute { cycles: 111 });
        assert_eq!(m.dropped(), 0);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn merging_no_shards_yields_an_empty_trace() {
        let m = merge_shards(Vec::new());
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert!(m.records().is_empty());
        assert_eq!(m.dropped(), 0);
        assert!(m.shard(0).is_none());
        assert!(m.shards().is_empty());
    }

    #[test]
    fn duplicate_job_indices_keep_arrival_order() {
        // A correct farm never emits duplicates, but the merge must stay
        // deterministic if one does: the sort is stable, so arrival order
        // within the duplicate index is preserved.
        let m = merge_shards(vec![shard(1, 111), shard(0, 0), shard(1, 222)]);
        let seen: Vec<(usize, Record)> = m.shards().iter().map(|s| (s.job, s.records[0])).collect();
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[1], (1, shard(1, 111).records[0]));
        assert_eq!(seen[2], (1, shard(1, 222).records[0]));
        // Lookup by index finds one of the duplicates (binary search on a
        // duplicated key); records() still carries both.
        assert_eq!(m.shard(1).unwrap().job, 1);
        assert_eq!(m.records().len(), 3);
    }

    #[test]
    fn dropped_counts_aggregate_across_shards() {
        let mut a = shard(0, 1);
        a.dropped = 3;
        let mut b = shard(1, 2);
        b.dropped = 0;
        let mut c = shard(2, 3);
        c.dropped = 7;
        let m = merge_shards(vec![c, a, b]);
        assert_eq!(m.dropped(), 10);
        assert_eq!(m.shard(2).unwrap().dropped, 7);
    }
}
