//! Integration: the full 17-program SPEC miniature suite through the
//! complete pipeline — compile, select, partition, and execute locally and
//! offloaded with output equivalence.

use std::sync::OnceLock;

use native_offloader::{CompiledApp, SessionConfig};
use offload_workloads::{all, WorkloadSpec};

/// The 17 miniatures compile once per test binary; every test reuses the
/// compiled apps (compilation includes a profiling run, the expensive part).
fn suite() -> &'static [(WorkloadSpec, CompiledApp)] {
    static SUITE: OnceLock<Vec<(WorkloadSpec, CompiledApp)>> = OnceLock::new();
    SUITE.get_or_init(|| {
        all()
            .into_iter()
            .map(|w| {
                let app = w
                    .compile()
                    .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
                (w, app)
            })
            .collect()
    })
}

fn entry(short: &str) -> &'static (WorkloadSpec, CompiledApp) {
    suite()
        .iter()
        .find(|(w, _)| w.short == short)
        .unwrap_or_else(|| panic!("unknown workload {short}"))
}

/// Every workload compiles, selects its expected target, and produces
/// identical console output locally and offloaded over the fast network.
#[test]
fn suite_compiles_selects_and_matches_output() {
    for (w, app) in suite() {
        assert!(
            app.plan.task_by_name(w.expected_target).is_some(),
            "{}: expected target {} not selected; estimates:\n{:#?}",
            w.name,
            w.expected_target,
            app.plan.estimates
        );
        let input = (w.eval_input)();
        let local = app
            .run_local(&input)
            .unwrap_or_else(|e| panic!("{}: local run failed: {e}", w.name));
        assert!(!local.console.is_empty(), "{}: no output", w.name);
        let off = app
            .run_offloaded(&input, &SessionConfig::fast_network())
            .unwrap_or_else(|e| panic!("{}: offloaded run failed: {e}", w.name));
        assert_eq!(
            local.console, off.console,
            "{}: offloading changed program output",
            w.name
        );
        assert!(
            off.offloads_performed >= 1,
            "{}: nothing was offloaded on the fast network (refused {})",
            w.name,
            off.offloads_refused
        );
    }
}

/// The §5.1 slow-network refusals: the five communication-heavy programs
/// are refused by the dynamic estimator on 802.11n; the rest still
/// offload.
#[test]
fn slow_network_refusals_match_the_paper() {
    for (w, app) in suite() {
        let input = (w.eval_input)();
        let off = app
            .run_offloaded(&input, &SessionConfig::slow_network())
            .unwrap();
        if w.paper.refused_on_slow {
            assert_eq!(
                off.offloads_performed, 0,
                "{}: should be refused on the slow network (Fig. 6 `*`)",
                w.name
            );
            assert!(
                off.offloads_refused >= 1,
                "{}: refusals not recorded",
                w.name
            );
        } else {
            assert!(
                off.offloads_performed >= 1,
                "{}: should still offload on the slow network",
                w.name
            );
        }
    }
}

/// Offloading on the fast network speeds every program up (Fig. 6(a):
/// "Native Offloader achieves performance speedups for all the evaluated
/// programs").
#[test]
fn fast_network_speeds_up_every_program() {
    for (w, app) in suite() {
        let input = (w.eval_input)();
        let local = app.run_local(&input).unwrap();
        let off = app
            .run_offloaded(&input, &SessionConfig::fast_network())
            .unwrap();
        assert!(
            off.total_seconds < local.total_seconds,
            "{}: offload {:.4}s vs local {:.4}s",
            w.name,
            off.total_seconds,
            local.total_seconds
        );
    }
}

/// Battery: offloading saves energy for every program except (possibly)
/// gzip, the paper's one exception (§5.2).
#[test]
fn battery_saved_for_all_but_gzip_shapes() {
    for (w, app) in suite() {
        if w.paper.refused_on_slow {
            continue; // their slow-network runs are local anyway
        }
        let input = (w.eval_input)();
        let local = app.run_local(&input).unwrap();
        let off = app
            .run_offloaded(&input, &SessionConfig::fast_network())
            .unwrap();
        assert!(
            off.energy_mj < local.energy_mj,
            "{}: offload energy {:.1} mJ vs local {:.1} mJ",
            w.name,
            off.energy_mj,
            local.energy_mj
        );
    }
}

/// The function-pointer programs (sjeng, gobmk, mesa, h264ref) actually
/// exercise the translation path on the server.
#[test]
fn fn_ptr_programs_translate_on_server() {
    for short in ["sjeng", "gobmk", "mesa", "h264ref"] {
        let (w, app) = entry(short);
        assert!(
            app.plan.stats.fn_ptr_sites > 0,
            "{short}: no fn-ptr mapping sites inserted"
        );
        let off = app
            .run_offloaded(&(w.eval_input)(), &SessionConfig::fast_network())
            .unwrap();
        assert!(
            off.fn_map_translations > 0,
            "{short}: no translations at run time"
        );
    }
}

/// The remote-input programs (twolf, gobmk, h264ref, sphinx3) perform
/// remote I/O calls from the server (§5.1's remote-input overhead).
#[test]
fn remote_input_programs_do_remote_io() {
    for short in ["twolf", "gobmk", "h264ref", "sphinx3"] {
        let (w, app) = entry(short);
        let off = app
            .run_offloaded(&(w.eval_input)(), &SessionConfig::fast_network())
            .unwrap();
        assert!(
            off.remote_io_calls > 0,
            "{short}: expected remote I/O (calls = {})",
            off.remote_io_calls
        );
    }
}

/// ammp selects both of its targets, like Table 4's two-row entry.
#[test]
fn ammp_has_two_targets() {
    let (_, app) = entry("ammp");
    assert!(
        app.plan.task_by_name("tpac").is_some(),
        "{:#?}",
        app.plan.estimates
    );
    assert!(
        app.plan.task_by_name("AMMPmonitor").is_some(),
        "{:#?}",
        app.plan.estimates
    );
}

/// sjeng invokes its target once per move: 3 offloads (Table 4).
#[test]
fn sjeng_offloads_three_times() {
    let (w, app) = entry("sjeng");
    let off = app
        .run_offloaded(&(w.eval_input)(), &SessionConfig::fast_network())
        .unwrap();
    assert_eq!(off.offloads_performed, 3);
}
