//! Compression miniatures: `164.gzip` and `401.bzip2`.
//!
//! Signature (Table 4): a single `spec_compress` invocation that touches a
//! large input/output buffer — the biggest traffic-to-computation ratios
//! of the suite (151.5 MB and 134.3 MB per invocation against 15.3 s and
//! 27.0 s of mobile time). These are the programs whose offloads the
//! dynamic estimator *refuses on the slow network* (§5.1), and `164.gzip`
//! is the one program whose battery consumption offloading can't save
//! (§5.2).

use crate::{PaperRow, WorkloadSpec};
use native_offloader::WorkloadInput;

const GZIP_SRC: &str = r#"
// 164.gzip miniature: hash-chain LZ compressor over an in-memory buffer.
int seed;
char inbuf[131072];
char outbuf[160000];
int head[4096];
int out_len;

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

int spec_compress(int n) {
    int i; int h; int cand; int j; int best; int op = 0;
    long check = 0;
    for (i = 0; i < 4096; i++) head[i] = -1;
    // Pass 1: the CRC pass of real gzip.
    for (i = 0; i < n; i++) check = (check * 31 + inbuf[i]) % 1000000007;
    // Pass 3: greedy hash-match compression.
    i = 0;
    while (i + 4 < n) {
        h = ((inbuf[i] * 33 + inbuf[i + 1]) * 33 + inbuf[i + 2]) & 4095;
        cand = head[h];
        head[h] = i;
        best = 0;
        if (cand >= 0) {
            j = 0;
            while (j < 250 && i + j < n && inbuf[cand + j] == inbuf[i + j]) j++;
            best = j;
        }
        if (best >= 4) {
            outbuf[op] = 1;
            outbuf[op + 1] = (char)best;
            op += 2;
            i += best;
        } else {
            outbuf[op] = inbuf[i];
            op += 1;
            i += 1;
        }
    }
    out_len = op;
    return (int)(check % 100000);
}

int main() {
    int n; int i;
    scanf("%d", &n);
    for (i = 0; i < n; i++) inbuf[i] = (char)((i / 11) % 61 + ((i * i) % 5));
    int check = spec_compress(n);
    printf("checksum %d outlen %d\n", check, out_len);
    return 0;
}
"#;

/// The `164.gzip` miniature.
pub fn gzip() -> WorkloadSpec {
    WorkloadSpec {
        name: "164.gzip",
        short: "gzip",
        description: "LZ-style in-memory compression (SPEC CPU2000)",
        source: GZIP_SRC,
        profile_input: || WorkloadInput::from_stdin("65536\n"),
        eval_input: || WorkloadInput::from_stdin("98304\n"),
        expected_target: "spec_compress",
        paper: PaperRow {
            loc_k: 5.5,
            exec_time_s: 15.3,
            offloaded_fns: (20, 89),
            referenced_gv: (141, 241),
            fn_ptr_uses: 9,
            target: "spec_compress",
            coverage_pct: 98.90,
            invocations: 1,
            traffic_mb_per_inv: 151.5,
            refused_on_slow: true,
        },
    }
}

const BZIP2_SRC: &str = r#"
// 401.bzip2 miniature: move-to-front transform + run-length coding.
int seed;
char src[131072];
char mtfbuf[131072];
char outb[262144];
char order[256];
int out_len;

int rnd() {
    seed = seed * 1103515245 + 12345;
    if (seed < 0) seed = -seed;
    return (seed >> 16) & 32767;
}

int spec_compress(int n) {
    int i; int j; int c; int pos; int op = 0;
    long check = 0;
    for (i = 0; i < 256; i++) order[i] = (char)i;
    // Pass 1: move-to-front transform.
    for (i = 0; i < n; i++) {
        c = src[i];
        if (c < 0) c = c + 256;
        pos = 0;
        while (order[pos] != (char)c) pos++;
        for (j = pos; j > 0; j--) order[j] = order[j - 1];
        order[0] = (char)c;
        mtfbuf[i] = (char)pos;
        check = (check + pos * 131) % 1000000007;
    }
    // Pass 2: run-length encode the MTF output.
    i = 0;
    while (i < n) {
        int run = 1;
        while (i + run < n && mtfbuf[i + run] == mtfbuf[i] && run < 200) run++;
        outb[op] = mtfbuf[i];
        outb[op + 1] = (char)run;
        op += 2;
        i += run;
    }
    out_len = op;
    return (int)(check % 100000);
}

int main() {
    int n; int i;
    scanf("%d", &n);
    seed = 424242;
    for (i = 0; i < n; i++) src[i] = (char)((i / 23) % 17 + (rnd() % 3));
    int check = spec_compress(n);
    printf("checksum %d outlen %d\n", check, out_len);
    return 0;
}
"#;

/// The `401.bzip2` miniature.
pub fn bzip2() -> WorkloadSpec {
    WorkloadSpec {
        name: "401.bzip2",
        short: "bzip2",
        description: "MTF + RLE block compression (SPEC CPU2006)",
        source: BZIP2_SRC,
        profile_input: || WorkloadInput::from_stdin("65536\n"),
        eval_input: || WorkloadInput::from_stdin("114688\n"),
        expected_target: "spec_compress",
        paper: PaperRow {
            loc_k: 5.7,
            exec_time_s: 27.0,
            offloaded_fns: (58, 100),
            referenced_gv: (95, 120),
            fn_ptr_uses: 24,
            target: "spec_compress",
            coverage_pct: 98.79,
            invocations: 1,
            traffic_mb_per_inv: 134.3,
            refused_on_slow: true,
        },
    }
}
