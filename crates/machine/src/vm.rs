//! The IR interpreter: one instance per simulated device.
//!
//! The VM executes a (possibly partitioned) module against the device's
//! [`Memory`], charging cycles per the device's [`CostModel`]. Everything
//! the offload runtime needs to interpose on is routed through the
//! [`Host`] trait:
//!
//! * **page faults** — absent pages during offload execution become
//!   copy-on-demand transfers (§4),
//! * **builtins** — I/O, heap allocation, remote I/O and the
//!   offload-runtime operations inserted by the partitioner,
//! * **syscalls / inline asm** — machine-specific operations that only the
//!   home device may perform (§3.1).
//!
//! Function addresses are *device-specific* (`fn_base + id·stride`, with a
//! different base per back-end), so a raw function pointer produced on one
//! device does not resolve on the other — faithfully recreating the problem
//! that §3.4's function-pointer map exists to solve.

use offload_ir::{
    BinOp, BlockId, Builtin, Callee, CastKind, CmpOp, ConstValue, DataLayout, Endian, FuncId, Inst,
    Module, TargetAbi, Type, UnOp,
};

use crate::heap::HeapError;
use crate::io::IoError;
use crate::loader::Image;
use crate::mem::{MemError, Memory};
use crate::profile::ProfileCollector;
use crate::target::{CostModel, TargetSpec};
use crate::uva_map;

/// A runtime register value. Pointers are integers (their UVA address).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtVal {
    /// Integer or pointer bits.
    I(i64),
    /// Float.
    F(f64),
}

impl RtVal {
    /// The integer bits, treating floats as an error.
    ///
    /// # Panics
    ///
    /// Panics if the value is a float (a type-confusion bug in generated
    /// IR, which the verifier should have rejected).
    pub fn as_i(self) -> i64 {
        match self {
            RtVal::I(v) => v,
            RtVal::F(v) => panic!("expected integer register, found float {v}"),
        }
    }

    /// The float value.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    pub fn as_f(self) -> f64 {
        match self {
            RtVal::F(v) => v,
            RtVal::I(v) => panic!("expected float register, found integer {v}"),
        }
    }

    /// The value as an address.
    pub fn as_addr(self) -> u64 {
        self.as_i() as u64
    }
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Unserviceable memory error.
    Mem(MemError),
    /// Heap failure.
    Heap(HeapError),
    /// I/O failure.
    Io(IoError),
    /// Indirect call through an address that is not a function on this
    /// device (e.g. an untranslated cross-device function pointer).
    BadFunctionPointer {
        /// The bad address.
        addr: u64,
    },
    /// A machine-specific operation reached a device that cannot perform
    /// it (asm/syscall on the server, interactive input off-device, ...).
    MachineSpecific {
        /// What was attempted.
        what: String,
    },
    /// Call to an external declaration with no body.
    UnknownExternal {
        /// The function name.
        name: String,
    },
    /// Integer division by zero.
    DivisionByZero,
    /// Simulated stack exhausted.
    StackOverflow,
    /// The instruction budget ran out (runaway loop guard).
    FuelExhausted,
    /// `exit(code)` was called.
    Exit {
        /// The exit code.
        code: i32,
    },
    /// Free-form trap raised by a host.
    Trap(String),
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Mem(e) => write!(f, "{e}"),
            VmError::Heap(e) => write!(f, "{e}"),
            VmError::Io(e) => write!(f, "{e}"),
            VmError::BadFunctionPointer { addr } => {
                write!(f, "indirect call to non-function address {addr:#x}")
            }
            VmError::MachineSpecific { what } => {
                write!(f, "machine-specific operation off-device: {what}")
            }
            VmError::UnknownExternal { name } => write!(f, "call to external function {name}"),
            VmError::DivisionByZero => write!(f, "division by zero"),
            VmError::StackOverflow => write!(f, "stack overflow"),
            VmError::FuelExhausted => write!(f, "instruction budget exhausted"),
            VmError::Exit { code } => write!(f, "program exited with code {code}"),
            VmError::Trap(m) => write!(f, "trap: {m}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<MemError> for VmError {
    fn from(e: MemError) -> Self {
        VmError::Mem(e)
    }
}

impl From<HeapError> for VmError {
    fn from(e: HeapError) -> Self {
        VmError::Heap(e)
    }
}

impl From<IoError> for VmError {
    fn from(e: IoError) -> Self {
        VmError::Io(e)
    }
}

/// Cycle counter of one device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Clock {
    /// Cycles elapsed.
    pub cycles: u64,
}

impl Clock {
    /// Charge `n` cycles.
    pub fn charge(&mut self, n: u64) {
        self.cycles += n;
    }
}

/// What the host may touch while servicing a fault or builtin.
pub struct HostCtx<'a> {
    /// The device memory.
    pub mem: &'a mut Memory,
    /// The device cycle counter.
    pub clock: &'a mut Clock,
    /// The (unified) data layout in force.
    pub layout: DataLayout,
    /// The device cost model.
    pub cpi: &'a CostModel,
    /// The current simulated stack pointer (shipped in offload requests,
    /// §4 initialization).
    pub sp: u64,
}

/// Device-side services provided by the embedder (local host or offload
/// runtime).
pub trait Host {
    /// Service a page fault by installing the page into `ctx.mem`.
    ///
    /// # Errors
    ///
    /// Return the original fault as `VmError::Mem` if the page cannot be
    /// provided (a true segfault).
    fn page_fault(&mut self, page: u64, ctx: &mut HostCtx<'_>) -> Result<(), VmError>;

    /// Execute a builtin the VM does not handle internally.
    ///
    /// # Errors
    ///
    /// Any [`VmError`]; [`VmError::MachineSpecific`] when this device must
    /// not perform the operation.
    fn builtin(
        &mut self,
        b: Builtin,
        args: &[RtVal],
        ctx: &mut HostCtx<'_>,
    ) -> Result<Option<RtVal>, VmError>;

    /// Execute a raw syscall. The default succeeds with 0 — on the *home*
    /// device a syscall is an ordinary kernel service.
    ///
    /// # Errors
    ///
    /// Hosts for the *server* side override this to refuse.
    fn syscall(
        &mut self,
        number: u32,
        args: &[RtVal],
        ctx: &mut HostCtx<'_>,
    ) -> Result<RtVal, VmError> {
        let _ = (number, args, ctx);
        Ok(RtVal::I(0))
    }

    /// Execute inline assembly. Defaults to a no-op on the home device.
    ///
    /// # Errors
    ///
    /// Server-side hosts override this to refuse.
    fn inline_asm(&mut self, text: &str, ctx: &mut HostCtx<'_>) -> Result<(), VmError> {
        let _ = (text, ctx);
        Ok(())
    }
}

/// Which stack (and function-stub region) the VM uses — the mobile default
/// or the server's relocated one (§3.3 stack reallocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackBank {
    /// Mobile stack at [`uva_map::MOBILE_STACK_TOP`].
    Mobile,
    /// Server stack at [`uva_map::SERVER_STACK_TOP`], far from the
    /// mobile's so the two never overlap on the UVA space.
    Server,
}

/// Aggregate execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired.
    pub insts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Calls executed.
    pub calls: u64,
    /// Page faults serviced.
    pub page_faults: u64,
}

struct Frame {
    func: FuncId,
    regs: Vec<RtVal>,
    saved_sp: u64,
}

/// The interpreter.
pub struct Vm<'m> {
    module: &'m Module,
    /// Unified data layout with this device's endianness.
    layout: DataLayout,
    endian: Endian,
    cpi: CostModel,
    fn_base: u64,
    stack_limit: u64,
    sp: u64,
    /// Device memory.
    pub mem: Memory,
    /// Cycle counter.
    pub clock: Clock,
    global_addrs: Vec<u64>,
    fuel: u64,
    /// Optional profile collector (the §3.1 profiler).
    pub profile: Option<ProfileCollector>,
    /// Aggregate statistics.
    pub stats: RunStats,
    depth: usize,
}

/// Maximum call depth (recursion guard).
const MAX_DEPTH: usize = 512;

impl<'m> Vm<'m> {
    /// Create a VM for `module` on the device described by `spec`, with
    /// memory and globals from `image`, using the given stack bank.
    ///
    /// The VM always executes under the **unified** (mobile) data layout —
    /// the §3.2 standard — with the device's own endianness.
    pub fn new(module: &'m Module, spec: &TargetSpec, image: Image, bank: StackBank) -> Self {
        let mut layout = TargetAbi::MobileArm32.data_layout();
        layout.endian = spec.data_layout().endian;
        Self::with_layout(module, spec, image, bank, layout)
    }

    /// Like [`Vm::new`] but with an explicit data layout — used by tests
    /// that demonstrate the Fig. 4 layout mismatch by running under a
    /// *native, un-unified* layout.
    pub fn with_layout(
        module: &'m Module,
        spec: &TargetSpec,
        image: Image,
        bank: StackBank,
        layout: DataLayout,
    ) -> Self {
        let (stack_top, fn_base) = match bank {
            StackBank::Mobile => (uva_map::MOBILE_STACK_TOP, uva_map::MOBILE_FN_BASE),
            StackBank::Server => (uva_map::SERVER_STACK_TOP, uva_map::SERVER_FN_BASE),
        };
        Vm {
            module,
            endian: layout.endian,
            layout,
            cpi: spec.cpi.clone(),
            fn_base,
            stack_limit: stack_top - uva_map::STACK_SIZE,
            sp: stack_top,
            mem: image.mem,
            clock: Clock::default(),
            global_addrs: image.global_addrs,
            fuel: u64::MAX,
            profile: None,
            stats: RunStats::default(),
            depth: 0,
        }
    }

    /// The module being executed.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Tear the VM down, returning its memory so a session pool can
    /// recycle the page-frame arena for the next session.
    pub fn into_memory(self) -> Memory {
        self.mem
    }

    /// The layout in force.
    pub fn layout(&self) -> DataLayout {
        self.layout
    }

    /// Current stack pointer.
    pub fn sp(&self) -> u64 {
        self.sp
    }

    /// Set the stack pointer (used when the server resumes with the
    /// mobile's reported offload state).
    pub fn set_sp(&mut self, sp: u64) {
        self.sp = sp;
    }

    /// Limit the number of executed instructions (runaway guard).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Enable profiling.
    pub fn enable_profile(&mut self) {
        self.profile = Some(ProfileCollector::new());
    }

    /// The UVA address of this device's stub for function `f`.
    pub fn fn_addr(&self, f: FuncId) -> u64 {
        self.fn_base + f.0 as u64 * uva_map::FN_STRIDE
    }

    /// Resolve a stub address back to a function, if it is one of *this
    /// device's* stubs.
    pub fn addr_to_fn(&self, addr: u64) -> Option<FuncId> {
        if addr < self.fn_base {
            return None;
        }
        let off = addr - self.fn_base;
        if !off.is_multiple_of(uva_map::FN_STRIDE) {
            return None;
        }
        let id = off / uva_map::FN_STRIDE;
        if (id as usize) < self.module.function_count() {
            Some(FuncId(id as u32))
        } else {
            None
        }
    }

    /// Run the module entry point with no arguments.
    ///
    /// # Errors
    ///
    /// Any [`VmError`]; [`VmError::Exit`] is translated into a normal
    /// return carrying the exit code.
    pub fn run_entry<H: Host>(&mut self, host: &mut H) -> Result<Option<RtVal>, VmError> {
        let entry = self
            .module
            .entry
            .ok_or_else(|| VmError::Trap("module has no entry point".into()))?;
        match self.call_function(entry, &[], host) {
            Err(VmError::Exit { code }) => Ok(Some(RtVal::I(code as i64))),
            other => other,
        }
    }

    /// Call function `f` with `args`.
    ///
    /// # Errors
    ///
    /// Any [`VmError`].
    pub fn call_function<H: Host>(
        &mut self,
        f: FuncId,
        args: &[RtVal],
        host: &mut H,
    ) -> Result<Option<RtVal>, VmError> {
        let func = self.module.function(f);
        if func.is_declaration() {
            return Err(VmError::UnknownExternal {
                name: func.name.clone(),
            });
        }
        assert_eq!(func.params.len(), args.len(), "arity checked by verifier");
        if self.depth >= MAX_DEPTH {
            return Err(VmError::StackOverflow);
        }
        self.depth += 1;
        let mut frame = Frame {
            func: f,
            regs: vec![RtVal::I(0); func.value_types.len()],
            saved_sp: self.sp,
        };
        frame.regs[..args.len()].copy_from_slice(args);
        self.stats.calls += 1;
        self.clock.charge(self.cpi.call);
        if let Some(p) = &mut self.profile {
            p.enter(f, self.clock.cycles);
            p.block(f, None, BlockId(0));
        }

        let result = self.run_frame(&mut frame, host);

        if let Some(p) = &mut self.profile {
            p.exit(f, self.clock.cycles);
        }
        self.sp = frame.saved_sp;
        self.depth -= 1;
        result
    }

    #[allow(clippy::too_many_lines)]
    fn run_frame<H: Host>(
        &mut self,
        frame: &mut Frame,
        host: &mut H,
    ) -> Result<Option<RtVal>, VmError> {
        let func = self.module.function(frame.func);
        let mut bb = BlockId(0);
        loop {
            let block = &func.blocks[bb.0 as usize];
            let mut next: Option<BlockId> = None;
            for inst in &block.insts {
                if self.fuel == 0 {
                    return Err(VmError::FuelExhausted);
                }
                self.fuel -= 1;
                self.stats.insts += 1;
                let before = self.clock.cycles;
                match inst {
                    Inst::Const { dst, value } => {
                        let v = self.const_value(value);
                        frame.regs[dst.0 as usize] = v;
                        self.clock.charge(self.cpi.alu);
                    }
                    Inst::Alloca { dst, ty, count } => {
                        let size = self.layout.size_of(ty, self.module) * count;
                        let size = size.div_ceil(16) * 16;
                        if self.sp - self.stack_limit < size {
                            return Err(VmError::StackOverflow);
                        }
                        self.sp -= size;
                        frame.regs[dst.0 as usize] = RtVal::I(self.sp as i64);
                        self.clock.charge(self.cpi.alu);
                    }
                    Inst::Load { dst, ty, addr } => {
                        let a = frame.regs[addr.0 as usize].as_addr();
                        let v = self.load_scalar(a, ty, host)?;
                        frame.regs[dst.0 as usize] = v;
                        self.stats.loads += 1;
                        self.clock.charge(self.cpi.load);
                    }
                    Inst::Store { ty, addr, value } => {
                        let a = frame.regs[addr.0 as usize].as_addr();
                        let v = frame.regs[value.0 as usize];
                        self.store_scalar(a, ty, v, host)?;
                        self.stats.stores += 1;
                        self.clock.charge(self.cpi.store);
                    }
                    Inst::FieldAddr {
                        dst,
                        base,
                        sid,
                        field,
                    } => {
                        let b = frame.regs[base.0 as usize].as_addr();
                        let off =
                            self.layout.struct_layout(*sid, self.module).offsets[*field as usize];
                        frame.regs[dst.0 as usize] = RtVal::I((b + off) as i64);
                        self.clock.charge(self.cpi.alu);
                    }
                    Inst::IndexAddr {
                        dst,
                        base,
                        elem,
                        index,
                    } => {
                        let b = frame.regs[base.0 as usize].as_addr();
                        let i = frame.regs[index.0 as usize].as_i();
                        let size = self.layout.size_of(elem, self.module) as i64;
                        frame.regs[dst.0 as usize] = RtVal::I(b as i64 + i * size);
                        self.clock.charge(self.cpi.alu + self.cpi.mul);
                    }
                    Inst::Bin {
                        dst,
                        op,
                        ty,
                        lhs,
                        rhs,
                    } => {
                        let l = frame.regs[lhs.0 as usize];
                        let r = frame.regs[rhs.0 as usize];
                        frame.regs[dst.0 as usize] = self.eval_bin(*op, ty, l, r)?;
                        self.clock.charge(self.bin_cost(*op, ty));
                    }
                    Inst::Un {
                        dst,
                        op,
                        ty,
                        operand,
                    } => {
                        let v = frame.regs[operand.0 as usize];
                        frame.regs[dst.0 as usize] = eval_un(*op, ty, v);
                        self.clock.charge(if *op == UnOp::ByteSwap {
                            self.cpi.alu * 2
                        } else {
                            self.cpi.alu
                        });
                    }
                    Inst::Cmp {
                        dst,
                        op,
                        ty,
                        lhs,
                        rhs,
                    } => {
                        let l = frame.regs[lhs.0 as usize];
                        let r = frame.regs[rhs.0 as usize];
                        frame.regs[dst.0 as usize] = RtVal::I(i64::from(eval_cmp(*op, ty, l, r)));
                        self.clock.charge(if *ty == Type::F64 {
                            self.cpi.fpu
                        } else {
                            self.cpi.alu
                        });
                    }
                    Inst::Cast { dst, kind, to, src } => {
                        let v = frame.regs[src.0 as usize];
                        let out = if *kind == CastKind::Zext {
                            // Zero-extension must mask by the *source*
                            // width (registers hold sign-extended values).
                            let masked = match func.value_type(*src) {
                                Type::I8 => v.as_i() as u8 as i64,
                                Type::I16 => v.as_i() as u16 as i64,
                                Type::I32 => v.as_i() as u32 as i64,
                                _ => v.as_i(),
                            };
                            RtVal::I(truncate_to(to, masked))
                        } else {
                            eval_cast(*kind, to, v)
                        };
                        frame.regs[dst.0 as usize] = out;
                        self.clock.charge(self.cpi.cast);
                    }
                    Inst::Call { dst, callee, args } => {
                        let argv: Vec<RtVal> =
                            args.iter().map(|a| frame.regs[a.0 as usize]).collect();
                        let ret = match callee {
                            Callee::Direct(g) => self.call_function(*g, &argv, host)?,
                            Callee::Indirect(p) => {
                                let addr = frame.regs[p.0 as usize].as_addr();
                                let Some(g) = self.addr_to_fn(addr) else {
                                    return Err(VmError::BadFunctionPointer { addr });
                                };
                                self.call_function(g, &argv, host)?
                            }
                            Callee::Builtin(b) => self.call_builtin(*b, &argv, host)?,
                        };
                        if let Some(d) = dst {
                            frame.regs[d.0 as usize] = ret.unwrap_or(RtVal::I(0));
                        }
                    }
                    Inst::Ret { value } => {
                        let v = value.map(|v| frame.regs[v.0 as usize]);
                        self.clock.charge(self.cpi.call / 2);
                        self.attr_block(frame.func, bb, before);
                        return Ok(v);
                    }
                    Inst::Br { target } => {
                        next = Some(*target);
                        self.clock.charge(self.cpi.branch);
                    }
                    Inst::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let c = frame.regs[cond.0 as usize].as_i();
                        next = Some(if c != 0 { *then_bb } else { *else_bb });
                        self.clock.charge(self.cpi.branch);
                    }
                    Inst::InlineAsm { text } => {
                        let mut ctx = HostCtx {
                            mem: &mut self.mem,
                            clock: &mut self.clock,
                            layout: self.layout,
                            cpi: &self.cpi,
                            sp: self.sp,
                        };
                        host.inline_asm(text, &mut ctx)?;
                        self.clock.charge(self.cpi.alu);
                    }
                    Inst::Syscall { dst, number, args } => {
                        let argv: Vec<RtVal> =
                            args.iter().map(|a| frame.regs[a.0 as usize]).collect();
                        let mut ctx = HostCtx {
                            mem: &mut self.mem,
                            clock: &mut self.clock,
                            layout: self.layout,
                            cpi: &self.cpi,
                            sp: self.sp,
                        };
                        let v = host.syscall(*number, &argv, &mut ctx)?;
                        frame.regs[dst.0 as usize] = v;
                        self.clock.charge(self.cpi.call);
                    }
                }
                self.attr_block(frame.func, bb, before);
            }
            let target = next.expect("verifier guarantees a terminator");
            if let Some(p) = &mut self.profile {
                p.block(frame.func, Some(bb), target);
            }
            bb = target;
        }
    }

    fn attr_block(&mut self, f: FuncId, bb: BlockId, before: u64) {
        if let Some(p) = &mut self.profile {
            p.charge_block(f, bb, self.clock.cycles - before);
        }
    }

    fn const_value(&self, c: &ConstValue) -> RtVal {
        match c {
            ConstValue::I8(v) => RtVal::I(*v as i64),
            ConstValue::I16(v) => RtVal::I(*v as i64),
            ConstValue::I32(v) => RtVal::I(*v as i64),
            ConstValue::I64(v) => RtVal::I(*v),
            ConstValue::F64(v) => RtVal::F(*v),
            ConstValue::Null(_) => RtVal::I(0),
            ConstValue::GlobalAddr(g) => RtVal::I(self.global_addrs[g.0 as usize] as i64),
            ConstValue::FuncAddr(f) => RtVal::I(self.fn_addr(*f) as i64),
        }
    }

    // ----- memory with fault retry --------------------------------------

    /// Read raw bytes, letting the host service faults.
    ///
    /// # Errors
    ///
    /// Unserviceable faults and host errors.
    pub fn mem_read<H: Host>(
        &mut self,
        addr: u64,
        buf: &mut [u8],
        host: &mut H,
    ) -> Result<(), VmError> {
        loop {
            match self.mem.read(addr, buf) {
                Ok(()) => {
                    self.touch(addr, buf.len() as u64);
                    return Ok(());
                }
                Err(MemError::PageFault { page }) => self.service_fault(page, host)?,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Write raw bytes, letting the host service faults.
    ///
    /// # Errors
    ///
    /// Unserviceable faults and host errors.
    pub fn mem_write<H: Host>(
        &mut self,
        addr: u64,
        buf: &[u8],
        host: &mut H,
    ) -> Result<(), VmError> {
        loop {
            match self.mem.write(addr, buf) {
                Ok(()) => {
                    self.touch(addr, buf.len() as u64);
                    return Ok(());
                }
                Err(MemError::PageFault { page }) => self.service_fault(page, host)?,
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn service_fault<H: Host>(&mut self, page: u64, host: &mut H) -> Result<(), VmError> {
        self.stats.page_faults += 1;
        let mut ctx = HostCtx {
            mem: &mut self.mem,
            clock: &mut self.clock,
            layout: self.layout,
            cpi: &self.cpi,
            sp: self.sp,
        };
        host.page_fault(page, &mut ctx)
    }

    fn touch(&mut self, addr: u64, len: u64) {
        if let Some(p) = &mut self.profile {
            let first = addr / crate::PAGE_SIZE;
            let last = (addr + len.max(1) - 1) / crate::PAGE_SIZE;
            for page in first..=last {
                p.touch_page(page);
            }
        }
    }

    fn load_scalar<H: Host>(
        &mut self,
        addr: u64,
        ty: &Type,
        host: &mut H,
    ) -> Result<RtVal, VmError> {
        let size = self.layout.size_of(ty, self.module) as usize;
        let mut buf = [0u8; 8];
        self.mem_read(addr, &mut buf[..size], host)?;
        Ok(decode_scalar(&buf[..size], ty, self.endian))
    }

    fn store_scalar<H: Host>(
        &mut self,
        addr: u64,
        ty: &Type,
        v: RtVal,
        host: &mut H,
    ) -> Result<(), VmError> {
        let size = self.layout.size_of(ty, self.module) as usize;
        let mut buf = [0u8; 8];
        encode_scalar(v, ty, self.endian, &mut buf[..size]);
        self.mem_write(addr, &buf[..size], host)
    }

    fn bin_cost(&self, op: BinOp, ty: &Type) -> u64 {
        let float = *ty == Type::F64;
        match op {
            BinOp::Mul => {
                if float {
                    self.cpi.fpu
                } else {
                    self.cpi.mul
                }
            }
            BinOp::Div | BinOp::Rem => {
                if float {
                    self.cpi.fdiv
                } else {
                    self.cpi.div
                }
            }
            _ => {
                if float {
                    self.cpi.fpu
                } else {
                    self.cpi.alu
                }
            }
        }
    }

    fn eval_bin(&self, op: BinOp, ty: &Type, l: RtVal, r: RtVal) -> Result<RtVal, VmError> {
        if *ty == Type::F64 {
            let (a, b) = (l.as_f(), r.as_f());
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Rem => a % b,
                _ => return Err(VmError::Trap(format!("bitwise {op:?} on f64"))),
            };
            return Ok(RtVal::F(v));
        }
        let (a, b) = (l.as_i(), r.as_i());
        let v = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Err(VmError::DivisionByZero);
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(VmError::DivisionByZero);
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::Shr => a.wrapping_shr(b as u32 & 63),
        };
        Ok(RtVal::I(truncate_to(ty, v)))
    }

    fn call_builtin<H: Host>(
        &mut self,
        b: Builtin,
        args: &[RtVal],
        host: &mut H,
    ) -> Result<Option<RtVal>, VmError> {
        use Builtin::*;
        match b {
            // Pure math: handled in the VM.
            Sqrt => self.math1(args, f64::sqrt),
            Fabs => self.math1(args, f64::abs),
            Exp => self.math1(args, f64::exp),
            Log => self.math1(args, f64::ln),
            Sin => self.math1(args, f64::sin),
            Cos => self.math1(args, f64::cos),
            Floor => self.math1(args, f64::floor),
            Pow => {
                self.clock.charge(self.cpi.math);
                Ok(Some(RtVal::F(args[0].as_f().powf(args[1].as_f()))))
            }
            // Bulk memory: handled in the VM (with fault retry per page).
            Memcpy => {
                let (dst, src, n) = (args[0].as_addr(), args[1].as_addr(), args[2].as_addr());
                let mut buf = vec![0u8; n as usize];
                self.mem_read(src, &mut buf, host)?;
                self.mem_write(dst, &buf, host)?;
                self.clock
                    .charge(self.cpi.byte_move_milli * n / 1000 + self.cpi.call);
                Ok(Some(RtVal::I(dst as i64)))
            }
            Memset => {
                let (dst, byte, n) = (args[0].as_addr(), args[1].as_i(), args[2].as_addr());
                let buf = vec![byte as u8; n as usize];
                self.mem_write(dst, &buf, host)?;
                self.clock
                    .charge(self.cpi.byte_move_milli * n / 1000 + self.cpi.call);
                Ok(Some(RtVal::I(dst as i64)))
            }
            Strlen => {
                let s_addr = args[0].as_addr();
                let bytes = self.cstr(s_addr, host)?;
                self.clock
                    .charge(self.cpi.byte_move_milli * bytes.len() as u64 / 1000 + self.cpi.call);
                Ok(Some(RtVal::I(bytes.len() as i64)))
            }
            Strcmp => {
                let a = self.cstr(args[0].as_addr(), host)?;
                let b = self.cstr(args[1].as_addr(), host)?;
                let n = a.len().min(b.len()) as u64;
                self.clock
                    .charge(self.cpi.byte_move_milli * n / 1000 + self.cpi.call);
                let ord = match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
                Ok(Some(RtVal::I(ord)))
            }
            Strcpy => {
                let dst = args[0].as_addr();
                let mut bytes = self.cstr(args[1].as_addr(), host)?;
                bytes.push(0);
                self.mem_write(dst, &bytes, host)?;
                self.clock
                    .charge(self.cpi.byte_move_milli * bytes.len() as u64 / 1000 + self.cpi.call);
                Ok(Some(RtVal::I(dst as i64)))
            }
            Clock => {
                self.clock.charge(self.cpi.call);
                Ok(Some(RtVal::I(self.clock.cycles as i64)))
            }
            Exit => Err(VmError::Exit {
                code: args.first().map_or(0, |v| v.as_i() as i32),
            }),
            // Everything else (heap, I/O, offload runtime) goes to the host.
            other => {
                let mut ctx = HostCtx {
                    mem: &mut self.mem,
                    clock: &mut self.clock,
                    layout: self.layout,
                    cpi: &self.cpi,
                    sp: self.sp,
                };
                host.builtin(other, args, &mut ctx)
            }
        }
    }

    /// Read a NUL-terminated string with host fault service.
    fn cstr<H: Host>(&mut self, addr: u64, host: &mut H) -> Result<Vec<u8>, VmError> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            let mut byte = [0u8];
            self.mem_read(a, &mut byte, host)?;
            if byte[0] == 0 {
                return Ok(out);
            }
            out.push(byte[0]);
            a += 1;
            if out.len() > 1 << 20 {
                return Err(VmError::Mem(MemError::AccessViolation { addr }));
            }
        }
    }

    fn math1(&mut self, args: &[RtVal], f: fn(f64) -> f64) -> Result<Option<RtVal>, VmError> {
        self.clock.charge(self.cpi.math);
        Ok(Some(RtVal::F(f(args[0].as_f()))))
    }
}

fn truncate_to(ty: &Type, v: i64) -> i64 {
    match ty {
        Type::I8 => v as i8 as i64,
        Type::I16 => v as i16 as i64,
        Type::I32 => v as i32 as i64,
        _ => v,
    }
}

fn eval_un(op: UnOp, ty: &Type, v: RtVal) -> RtVal {
    match (op, ty) {
        (UnOp::Neg, Type::F64) => RtVal::F(-v.as_f()),
        (UnOp::Neg, _) => RtVal::I(truncate_to(ty, v.as_i().wrapping_neg())),
        (UnOp::Not, _) => RtVal::I(truncate_to(ty, !v.as_i())),
        (UnOp::ByteSwap, Type::F64) => RtVal::F(f64::from_bits(v.as_f().to_bits().swap_bytes())),
        (UnOp::ByteSwap, Type::I16) => RtVal::I((v.as_i() as i16).swap_bytes() as i64),
        (UnOp::ByteSwap, Type::I32) => RtVal::I((v.as_i() as i32).swap_bytes() as i64),
        (UnOp::ByteSwap, Type::I64) => RtVal::I(v.as_i().swap_bytes()),
        (UnOp::ByteSwap, Type::Ptr(_)) => RtVal::I((v.as_i() as i32).swap_bytes() as i64),
        (UnOp::ByteSwap, _) => v, // i8: no-op
    }
}

fn eval_cmp(op: CmpOp, ty: &Type, l: RtVal, r: RtVal) -> bool {
    if *ty == Type::F64 {
        let (a, b) = (l.as_f(), r.as_f());
        match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    } else if ty.is_ptr() {
        let (a, b) = (l.as_i() as u64, r.as_i() as u64);
        match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    } else {
        let (a, b) = (l.as_i(), r.as_i());
        match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

fn eval_cast(kind: CastKind, to: &Type, v: RtVal) -> RtVal {
    match kind {
        CastKind::Zext => {
            let bits = v.as_i();
            // Zero-extension: mask by the source width is already encoded in
            // the register value; clamp to destination width.
            RtVal::I(truncate_to(to, bits))
        }
        CastKind::Sext | CastKind::Trunc => RtVal::I(truncate_to(to, v.as_i())),
        CastKind::SiToF => RtVal::F(v.as_i() as f64),
        CastKind::FToSi => RtVal::I(truncate_to(to, v.as_f() as i64)),
        CastKind::PtrCast | CastKind::PtrToInt | CastKind::IntToPtr | CastKind::PtrZext => {
            RtVal::I(v.as_i())
        }
    }
}

/// Decode a scalar value from memory bytes under `endian`.
pub fn decode_scalar(bytes: &[u8], ty: &Type, endian: Endian) -> RtVal {
    let read_u = |bytes: &[u8]| -> u64 {
        let mut v: u64 = 0;
        match endian {
            Endian::Little => {
                for (i, b) in bytes.iter().enumerate() {
                    v |= (*b as u64) << (8 * i);
                }
            }
            Endian::Big => {
                for b in bytes {
                    v = (v << 8) | *b as u64;
                }
            }
        }
        v
    };
    match ty {
        Type::I8 => RtVal::I(bytes[0] as i8 as i64),
        Type::I16 => RtVal::I(read_u(bytes) as u16 as i16 as i64),
        Type::I32 => RtVal::I(read_u(bytes) as u32 as i32 as i64),
        Type::I64 => RtVal::I(read_u(bytes) as i64),
        Type::F64 => RtVal::F(f64::from_bits(read_u(bytes))),
        Type::Ptr(_) | Type::Func(_) => RtVal::I(read_u(bytes) as i64),
        other => panic!("cannot load aggregate {other} as a scalar"),
    }
}

/// Encode a scalar value into memory bytes under `endian`.
pub fn encode_scalar(v: RtVal, ty: &Type, endian: Endian, out: &mut [u8]) {
    let bits: u64 = match ty {
        Type::F64 => v.as_f().to_bits(),
        _ => v.as_i() as u64,
    };
    match endian {
        Endian::Little => {
            for (i, b) in out.iter_mut().enumerate() {
                *b = (bits >> (8 * i)) as u8;
            }
        }
        Endian::Big => {
            let n = out.len();
            for (i, b) in out.iter_mut().enumerate() {
                *b = (bits >> (8 * (n - 1 - i))) as u8;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_little_endian() {
        let mut buf = [0u8; 4];
        encode_scalar(RtVal::I(-5), &Type::I32, Endian::Little, &mut buf);
        assert_eq!(
            decode_scalar(&buf, &Type::I32, Endian::Little),
            RtVal::I(-5)
        );
    }

    #[test]
    fn endian_mismatch_corrupts_value() {
        // The §3.2 motivation: same bytes, different endianness, wrong value.
        let mut buf = [0u8; 4];
        encode_scalar(RtVal::I(0x0102_0304), &Type::I32, Endian::Little, &mut buf);
        let wrong = decode_scalar(&buf, &Type::I32, Endian::Big);
        assert_eq!(wrong, RtVal::I(0x0403_0201));
        // ...and ByteSwap repairs it, which is what the inserted
        // translation code does.
        let repaired = eval_un(UnOp::ByteSwap, &Type::I32, wrong);
        assert_eq!(repaired, RtVal::I(0x0102_0304));
    }

    #[test]
    fn f64_roundtrip_both_endians() {
        for endian in [Endian::Little, Endian::Big] {
            let mut buf = [0u8; 8];
            encode_scalar(RtVal::F(3.25), &Type::F64, endian, &mut buf);
            assert_eq!(decode_scalar(&buf, &Type::F64, endian), RtVal::F(3.25));
        }
    }

    #[test]
    fn truncation_semantics() {
        assert_eq!(truncate_to(&Type::I8, 0x1FF), -1);
        assert_eq!(truncate_to(&Type::I16, 0x1_0005), 5);
        assert_eq!(truncate_to(&Type::I32, -1), -1);
    }

    #[test]
    fn cmp_pointers_unsigned() {
        let high = RtVal::I(0x9000_0000u32 as i32 as i64); // negative as i64
        let low = RtVal::I(0x1000);
        let ty = Type::I8.ptr_to();
        // Unsigned pointer comparison must order low < high even though the
        // sign bit is set.
        let high_u = RtVal::I(high.as_i() as u32 as i64);
        assert!(eval_cmp(CmpOp::Lt, &ty, low, high_u));
    }

    #[test]
    fn byteswap_variants() {
        assert_eq!(
            eval_un(UnOp::ByteSwap, &Type::I16, RtVal::I(0x0102)),
            RtVal::I(0x0201)
        );
        assert_eq!(
            eval_un(UnOp::ByteSwap, &Type::I64, RtVal::I(1)),
            RtVal::I(0x0100_0000_0000_0000)
        );
        assert_eq!(eval_un(UnOp::ByteSwap, &Type::I8, RtVal::I(7)), RtVal::I(7));
    }
}
