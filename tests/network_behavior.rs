//! Integration: the §4 communication optimizations as observable run-time
//! behaviour — batching, compression, prefetch, copy-on-demand vs eager
//! transfer, and link sensitivity.

use native_offloader::{Offloader, SessionConfig, WorkloadInput};

/// A data-heavy task: reads a mobile-built array, writes a result array.
const SRC: &str = r#"
int input[30000];
int output[30000];

long transform(int n) {
    int i; long acc = 0;
    int r;
    for (r = 0; r < 40; r++) {
        for (i = 0; i < n; i++) {
            output[i] = input[i] * 3 + (output[i] >> 1);
            acc += output[i] % 7;
        }
    }
    return acc;
}

int main() {
    int n; int i;
    scanf("%d", &n);
    for (i = 0; i < n; i++) input[i] = (i * 2654435761) % 1000;
    long a = transform(n);
    printf("acc %d out %d %d\n", (int)(a % 100000), output[3], output[n-1]);
    return 0;
}
"#;

fn app() -> native_offloader::CompiledApp {
    Offloader::new()
        .compile_source(SRC, "transform", &WorkloadInput::from_stdin("18000\n"))
        .unwrap()
}

fn input() -> WorkloadInput {
    WorkloadInput::from_stdin("26000\n")
}

#[test]
fn compression_shrinks_wire_bytes_and_total_time() {
    let app = app();
    let with = app
        .run_offloaded(&input(), &SessionConfig::fast_network())
        .unwrap();
    let mut cfg = SessionConfig::fast_network();
    cfg.compress = false;
    let without = app.run_offloaded(&input(), &cfg).unwrap();
    assert_eq!(with.console, without.console);
    assert!(
        with.download.wire_bytes < without.download.wire_bytes,
        "compressed {} vs raw {}",
        with.download.wire_bytes,
        without.download.wire_bytes
    );
    // Upload (mobile→server) is never compressed, per §4.
    assert_eq!(with.upload.wire_bytes, without.upload.wire_bytes);
}

#[test]
fn batching_reduces_message_count_and_time() {
    let app = app();
    let batched = app
        .run_offloaded(&input(), &SessionConfig::fast_network())
        .unwrap();
    let mut cfg = SessionConfig::fast_network();
    cfg.batch = false;
    let unbatched = app.run_offloaded(&input(), &cfg).unwrap();
    assert_eq!(batched.console, unbatched.console);
    let b_msgs = batched.upload.messages + batched.download.messages;
    let u_msgs = unbatched.upload.messages + unbatched.download.messages;
    assert!(b_msgs < u_msgs, "batched {b_msgs} vs unbatched {u_msgs}");
    assert!(batched.total_seconds <= unbatched.total_seconds);
}

#[test]
fn copy_on_demand_moves_less_than_eager_transfer() {
    // §6: static partitioners "conservatively send all the data that the
    // offloaded tasks may touch"; CoD ships only what is accessed.
    let app = app();
    let cod = app
        .run_offloaded(&input(), &SessionConfig::fast_network())
        .unwrap();
    let mut cfg = SessionConfig::fast_network();
    cfg.copy_on_demand = false;
    let eager = app.run_offloaded(&input(), &cfg).unwrap();
    assert_eq!(cod.console, eager.console);
    assert!(
        cod.upload.raw_bytes < eager.upload.raw_bytes,
        "CoD {} vs eager {}",
        cod.upload.raw_bytes,
        eager.upload.raw_bytes
    );
}

#[test]
fn ideal_network_bounds_real_networks() {
    let app = app();
    let ideal = app
        .run_offloaded(&input(), &SessionConfig::ideal_network())
        .unwrap();
    let fast = {
        let mut c = SessionConfig::fast_network();
        c.dynamic_estimation = false;
        app.run_offloaded(&input(), &c).unwrap()
    };
    let slow = {
        let mut c = SessionConfig::slow_network();
        c.dynamic_estimation = false;
        app.run_offloaded(&input(), &c).unwrap()
    };
    assert!(ideal.total_seconds <= fast.total_seconds);
    assert!(fast.total_seconds <= slow.total_seconds);
    assert!(ideal.breakdown.communication_s == 0.0);
}

#[test]
fn power_timeline_shows_the_fig8_phases() {
    use offload_machine::power::PowerState;
    let app = app();
    let off = app
        .run_offloaded(&input(), &SessionConfig::fast_network())
        .unwrap();
    let states: Vec<PowerState> = off.timeline.intervals().iter().map(|iv| iv.state).collect();
    assert!(states.contains(&PowerState::Compute));
    assert!(states.contains(&PowerState::Transmit));
    assert!(states.contains(&PowerState::Receive));
    assert!(states.contains(&PowerState::Waiting));
    // The timeline integrates to the reported totals.
    assert!((off.timeline.total_seconds() - off.total_seconds).abs() < 1e-9);
    let resampled = off.timeline.resample(
        &SessionConfig::fast_network().mobile.power,
        off.total_seconds / 100.0,
    );
    assert!(resampled.len() >= 50, "Fig. 8 needs a dense series");
}

#[test]
fn traffic_accounting_is_consistent() {
    let app = app();
    let off = app
        .run_offloaded(&input(), &SessionConfig::fast_network())
        .unwrap();
    let from_events: u64 = off.events.iter().map(|e| e.wire_bytes).sum();
    assert_eq!(from_events, off.upload.wire_bytes + off.download.wire_bytes);
    assert!(off.traffic_mb() > 0.0);
    assert!(off.traffic_mb_per_invocation() > 0.0);
}
