//! A small metrics registry: named counters and fixed-bucket histograms.
//!
//! The registry is updated by the [`TraceCollector`](crate::TraceCollector)
//! as events arrive, and a [`MetricsSnapshot`] rides on `RunReport` so the
//! evaluation harness can read distributions (fault latency, batch sizes,
//! compression ratios) instead of just totals.

use std::collections::BTreeMap;

/// A histogram over fixed bucket upper bounds (the last bucket is
/// `+inf`). Observations also keep sum/min/max for summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, ascending.
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` bucket counts (last bucket is overflow).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observed value (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl Histogram {
    /// A histogram over the given ascending finite bucket bounds.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Exponential bucket bounds: `first, first*factor, ...` (`n` bounds).
pub fn exp_buckets(first: f64, factor: f64, n: usize) -> Vec<f64> {
    assert!(first > 0.0 && factor > 1.0 && n > 0);
    let mut v = Vec::with_capacity(n);
    let mut b = first;
    for _ in 0..n {
        v.push(b);
        b *= factor;
    }
    v
}

/// The live registry: insertion is keyed by `&'static str` names so the
/// hot path never allocates a key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (creating it at zero).
    pub fn count(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Record `value` into histogram `name`, creating it with `bounds` on
    /// first use.
    pub fn observe(&mut self, name: &'static str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Freeze into an owned snapshot (string keys, safe to ship around).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        }
    }
}

/// An owned, frozen view of a [`MetricsRegistry`] — what `RunReport`
/// carries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → frozen histogram.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// `true` when nothing was recorded (the no-op collector path).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![1, 1, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.mean() - 138.875).abs() < 1e-9);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 500.0);
    }

    #[test]
    fn boundary_value_lands_in_lower_bucket() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0);
        assert_eq!(h.counts, vec![1, 0, 0]);
    }

    #[test]
    fn registry_counts_and_snapshots() {
        let mut r = MetricsRegistry::new();
        r.count("faults", 2);
        r.count("faults", 3);
        r.observe("latency", &[0.001, 0.01], 0.005);
        assert_eq!(r.counter("faults"), 5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("faults"), 5);
        assert_eq!(snap.histogram("latency").unwrap().count, 1);
        assert!(!snap.is_empty());
        assert!(MetricsSnapshot::default().is_empty());
    }

    #[test]
    fn exp_buckets_grow() {
        let b = exp_buckets(1e-6, 10.0, 4);
        assert_eq!(b.len(), 4);
        assert!((b[3] - 1e-3).abs() < 1e-12);
    }
}
