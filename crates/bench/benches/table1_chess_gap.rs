//! Table 1 bench: the chess movement computation on the simulated phone
//! vs the simulated desktop.
//!
//! Reports **simulated** seconds, so the output directly mirrors Table
//! 1's two device rows; the measured gap (paper: 5.36–5.89×) is also
//! asserted and printed.

use offload_bench::micro;
use offload_machine::host::LocalHost;
use offload_machine::loader;
use offload_machine::target::TargetSpec;
use offload_machine::vm::{StackBank, Vm};
use offload_workloads::chess;

fn run_once(module: &offload_ir::Module, spec: &TargetSpec, bank: StackBank, depth: u32) -> f64 {
    // A standalone run on each device uses that back-end's own function
    // addresses (each device runs its natively compiled binary). Images
    // are placed under the unified layout the VM executes with.
    let unified = offload_ir::TargetAbi::MobileArm32.data_layout();
    let image = match bank {
        StackBank::Mobile => loader::load(module, &unified).expect("loads"),
        StackBank::Server => loader::load_for_server(module, &unified).expect("loads"),
    };
    let mut host = LocalHost::new();
    host.set_stdin(chess::input(depth, 1).stdin);
    let mut vm = Vm::new(module, spec, image, bank);
    vm.run_entry(&mut host).expect("runs");
    spec.cycles_to_seconds(vm.clock.cycles)
}

fn main() {
    let module = offload_minic::compile(chess::SOURCE, "chess").expect("compiles");

    for depth in [7u32, 9, 11] {
        micro::simulated(&format!("table1_chess_gap/smartphone/{depth}"), 3, || {
            run_once(&module, &TargetSpec::galaxy_s5(), StackBank::Mobile, depth)
        });
        micro::simulated(&format!("table1_chess_gap/desktop/{depth}"), 3, || {
            run_once(&module, &TargetSpec::xps_8700(), StackBank::Server, depth)
        });
        let phone = run_once(&module, &TargetSpec::galaxy_s5(), StackBank::Mobile, depth);
        let desktop = run_once(&module, &TargetSpec::xps_8700(), StackBank::Server, depth);
        println!(
            "[table1] depth {depth}: phone {:.2} ms, desktop {:.2} ms, gap {:.2}x (paper ~5.4-5.9x)",
            phone * 1e3,
            desktop * 1e3,
            phone / desktop
        );
        assert!(
            phone / desktop > 2.0,
            "the gap must be large at every level"
        );
    }
}
