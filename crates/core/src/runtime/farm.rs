//! The concurrent session farm: N offload sessions across a scoped
//! worker-thread pool, byte-identical to running them serially.
//!
//! A farm takes a queue of [`FarmJob`]s — `(app, input, config)` triples
//! — and drains it with `workers` threads. Each worker owns:
//!
//! * a [`SessionPool`] of page-frame arenas, recycled session to session
//!   so steady-state work allocates no new frames;
//! * a private [`TraceCollector`], moved out after every session as a
//!   [`TraceShard`] tagged with the job's **submission index**.
//!
//! Determinism is by construction. Every session is a pure function of
//! its job (the simulation has no global mutable state; the only
//! thread-local — the LZ scratch — is proven output-invariant), so the
//! per-job results cannot depend on which worker ran them. Gathered
//! results are stable-sorted by job index, and shards merge through
//! [`merge_shards`] the same way: reports, console output, wire-byte
//! counters and traces come out identical to a serial run no matter the
//! worker count or finish order. [`check_serial_equivalence`] verifies
//! exactly that, field by field.

use std::sync::atomic::{AtomicUsize, Ordering};

use offload_obs::{merge_shards, Logger, MergedTrace, TraceCollector, TraceShard};

use crate::compiler::CompiledApp;
use crate::config::{SessionConfig, WorkloadInput};
use crate::runtime::report::RunReport;
use crate::runtime::session::{run_offloaded_pooled, run_offloaded_traced, SessionPool};
use crate::OffloadError;

/// Ring capacity of each worker's collector — sized so no miniature
/// workload drops records (reconciliation needs the complete stream).
pub const FARM_RING_CAPACITY: usize = 1 << 20;

/// One unit of farm work: run `app` on `input` under `cfg`.
#[derive(Debug, Clone)]
pub struct FarmJob<'a> {
    /// The compiled two-partition application.
    pub app: &'a CompiledApp,
    /// Workload input (stdin + files).
    pub input: WorkloadInput,
    /// Session configuration (link, devices, policies).
    pub cfg: SessionConfig,
}

/// A completed farm run: everything in job-submission order.
#[derive(Debug)]
pub struct FarmResult {
    /// Per-job reports, `reports[i]` for `jobs[i]`.
    pub reports: Vec<RunReport>,
    /// Per-job traces merged in job-index order; `trace.shard(i)` is the
    /// complete event stream of `jobs[i]`.
    pub trace: MergedTrace,
}

/// Run `jobs` across `workers` threads (clamped to `1..=jobs.len()`).
///
/// Jobs are claimed from an atomic queue head; results and trace shards
/// are gathered per worker and stable-sorted by job index, so the output
/// is identical for every worker count — `run_farm(jobs, 8)` returns the
/// same bytes as `run_farm(jobs, 1)`.
///
/// # Errors
///
/// If any session fails, the error of the **lowest-indexed** failing job
/// is returned — deterministic even when several jobs fail at once.
///
/// # Panics
///
/// If a worker thread panics (a bug in the session engine, not a job
/// failure — those are `Err` results).
pub fn run_farm(jobs: &[FarmJob], workers: usize) -> Result<FarmResult, OffloadError> {
    run_farm_logged(jobs, workers, &Logger::quiet())
}

/// [`run_farm`] with per-worker progress logging: worker `w` claims and
/// finishes jobs under a `[worker w]`-scoped copy of `log` (debug level,
/// stderr), so interleaved chatter from a concurrent drain is
/// attributable. Logging is observe-only — results are byte-identical to
/// [`run_farm`], which delegates here with a quiet logger.
///
/// # Errors
///
/// Same as [`run_farm`]: the lowest-indexed failing job's error.
///
/// # Panics
///
/// Same as [`run_farm`]: if a worker thread panics.
pub fn run_farm_logged(
    jobs: &[FarmJob],
    workers: usize,
    log: &Logger,
) -> Result<FarmResult, OffloadError> {
    let workers = workers.clamp(1, jobs.len().max(1));
    let next = AtomicUsize::new(0);

    let mut gathered: Vec<(usize, Result<RunReport, OffloadError>, TraceShard)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let next = &next;
                    let wlog = log.scoped(&format!("worker {w}"));
                    scope.spawn(move || {
                        let mut pool = SessionPool::new();
                        let mut obs = TraceCollector::with_capacity(FARM_RING_CAPACITY);
                        let mut out = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(idx) else { break };
                            wlog.debug(&format!("job {idx}: {}", job.app.original.name));
                            let res = run_offloaded_pooled(
                                job.app, &job.input, &job.cfg, &mut obs, &mut pool,
                            );
                            match &res {
                                Ok(rep) => wlog
                                    .debug(&format!("job {idx} done: {:.4} s", rep.total_seconds)),
                                Err(e) => wlog.debug(&format!("job {idx} failed: {e}")),
                            }
                            // Move the session's trace out (tagged by job
                            // index) and reset the collector for the next
                            // job, keeping the ring allocation.
                            out.push((idx, res, obs.take_shard(idx)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("farm worker panicked"))
                .collect()
        });

    // Submission order, independent of worker scheduling.
    gathered.sort_by_key(|(idx, _, _)| *idx);

    let mut reports = Vec::with_capacity(gathered.len());
    let mut shards = Vec::with_capacity(gathered.len());
    for (_, res, shard) in gathered {
        reports.push(res?);
        shards.push(shard);
    }
    Ok(FarmResult {
        reports,
        trace: merge_shards(shards),
    })
}

/// `Ok(())` when `a` and `b` agree on every field, bit for bit for the
/// f64 headline numbers; otherwise the name of the first differing field.
///
/// `RunReport` deliberately has no `PartialEq` (`==` on floats would
/// accept `-0.0 == 0.0` and reject NaN); this helper is the farm's
/// byte-identity oracle.
///
/// # Errors
///
/// The first differing field, by name.
pub fn reports_equal(a: &RunReport, b: &RunReport) -> Result<(), String> {
    fn bits(field: &str, x: f64, y: f64) -> Result<(), String> {
        if x.to_bits() == y.to_bits() {
            Ok(())
        } else {
            Err(format!("{field}: {x} != {y}"))
        }
    }
    fn eq<T: PartialEq + std::fmt::Debug>(field: &str, x: &T, y: &T) -> Result<(), String> {
        if x == y {
            Ok(())
        } else {
            Err(format!("{field}: {x:?} != {y:?}"))
        }
    }
    eq("name", &a.name, &b.name)?;
    eq("console", &a.console, &b.console)?;
    eq("exit_code", &a.exit_code, &b.exit_code)?;
    bits("total_seconds", a.total_seconds, b.total_seconds)?;
    bits("energy_mj", a.energy_mj, b.energy_mj)?;
    bits(
        "breakdown.mobile_compute_s",
        a.breakdown.mobile_compute_s,
        b.breakdown.mobile_compute_s,
    )?;
    bits(
        "breakdown.server_compute_s",
        a.breakdown.server_compute_s,
        b.breakdown.server_compute_s,
    )?;
    bits(
        "breakdown.fn_ptr_translation_s",
        a.breakdown.fn_ptr_translation_s,
        b.breakdown.fn_ptr_translation_s,
    )?;
    bits(
        "breakdown.remote_io_s",
        a.breakdown.remote_io_s,
        b.breakdown.remote_io_s,
    )?;
    bits(
        "breakdown.communication_s",
        a.breakdown.communication_s,
        b.breakdown.communication_s,
    )?;
    eq("upload", &a.upload, &b.upload)?;
    eq("download", &a.download, &b.download)?;
    eq("offload_attempts", &a.offload_attempts, &b.offload_attempts)?;
    eq(
        "offloads_performed",
        &a.offloads_performed,
        &b.offloads_performed,
    )?;
    eq("offloads_refused", &a.offloads_refused, &b.offloads_refused)?;
    eq(
        "demand_page_fetches",
        &a.demand_page_fetches,
        &b.demand_page_fetches,
    )?;
    eq("prefetched_pages", &a.prefetched_pages, &b.prefetched_pages)?;
    eq("pages_streamed", &a.pages_streamed, &b.pages_streamed)?;
    eq("stream_hits", &a.stream_hits, &b.stream_hits)?;
    eq(
        "stream_wasted_pages",
        &a.stream_wasted_pages,
        &b.stream_wasted_pages,
    )?;
    bits("stall_s_saved", a.stall_s_saved, b.stall_s_saved)?;
    eq(
        "dirty_pages_written_back",
        &a.dirty_pages_written_back,
        &b.dirty_pages_written_back,
    )?;
    eq(
        "fn_map_translations",
        &a.fn_map_translations,
        &b.fn_map_translations,
    )?;
    eq("remote_io_calls", &a.remote_io_calls, &b.remote_io_calls)?;
    eq("timeline", &a.timeline.intervals(), &b.timeline.intervals())?;
    eq("events", &a.events, &b.events)?;
    eq("metrics", &a.metrics, &b.metrics)?;
    Ok(())
}

/// Run `jobs` through the farm at `workers` threads AND serially (fresh
/// collector and arenas per session), then require byte-identical
/// reports and traces. This is the `reproduce farm
/// --check-serial-equivalence` gate.
///
/// # Errors
///
/// The job index and first differing field when equivalence fails, or
/// either path's session error.
pub fn check_serial_equivalence(jobs: &[FarmJob], workers: usize) -> Result<(), String> {
    let farm = run_farm(jobs, workers).map_err(|e| format!("farm run failed: {e}"))?;
    for (idx, job) in jobs.iter().enumerate() {
        let mut obs = TraceCollector::with_capacity(FARM_RING_CAPACITY);
        let serial = run_offloaded_traced(job.app, &job.input, &job.cfg, &mut obs)
            .map_err(|e| format!("serial job {idx} failed: {e}"))?;
        reports_equal(&serial, &farm.reports[idx])
            .map_err(|e| format!("job {idx} report diverged: {e}"))?;
        let shard = farm
            .trace
            .shard(idx)
            .ok_or_else(|| format!("job {idx} has no trace shard"))?;
        if shard.records != obs.records() {
            return Err(format!(
                "job {idx} trace diverged: {} farm records vs {} serial",
                shard.records.len(),
                obs.records().len()
            ));
        }
        if shard.dropped != obs.dropped() {
            return Err(format!("job {idx} drop counts diverged"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Everything a job crosses a worker-thread boundary with (and the
    /// gathered results crossing back) must be `Send`. A compile-time
    /// audit: this test "runs" trivially but fails to build if any type
    /// regresses to `!Send`.
    #[test]
    fn farm_crossed_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CompiledApp>();
        assert_send::<SessionConfig>();
        assert_send::<WorkloadInput>();
        assert_send::<FarmJob<'static>>();
        assert_send::<RunReport>();
        assert_send::<SessionPool>();
        assert_send::<TraceCollector>();
        assert_send::<TraceShard>();
        assert_send::<MergedTrace>();
        assert_send::<FarmResult>();
        assert_send::<OffloadError>();
        assert_send::<offload_machine::mem::Memory>();
        assert_send::<offload_net::Channel>();
    }

    #[test]
    fn empty_farm_returns_empty_result() {
        let farm = run_farm(&[], 4).unwrap();
        assert!(farm.reports.is_empty());
        assert!(farm.trace.is_empty());
    }
}
