//! Integration: the full compiler pipeline on the paper's chess running
//! example — target selection (Table 3), partitioning (Fig. 3), and the
//! per-program statistics of Table 4.

use native_offloader::{CompileConfig, Offloader, SessionConfig};
use offload_workloads::chess;

fn compile_chess() -> native_offloader::CompiledApp {
    Offloader::new()
        .compile_source(chess::SOURCE, "chess", &chess::input(9, 2))
        .expect("chess compiles")
}

#[test]
fn estimate_table_has_the_table3_shape() {
    // Table 3 lists candidates with exec time, invocations, memory and the
    // three Eq. 1 columns; interactive functions are marked filtered.
    let app = compile_chess();
    let rows = &app.plan.estimates;
    let ai = rows
        .iter()
        .find(|r| r.name == "getAITurn")
        .expect("getAITurn row");
    assert!(ai.selected && !ai.machine_specific);
    assert!(ai.t_ideal_s > 0.0 && ai.t_comm_s >= 0.0);
    assert!((ai.t_gain_s - (ai.t_ideal_s - ai.t_comm_s)).abs() < 1e-12);

    let player = rows
        .iter()
        .find(|r| r.name == "getPlayerTurn")
        .expect("getPlayerTurn row");
    assert!(player.machine_specific && !player.selected);

    let run_game = rows
        .iter()
        .find(|r| r.name == "runGame")
        .expect("runGame row");
    assert!(run_game.machine_specific, "taint through getPlayerTurn");
}

#[test]
fn partition_matches_fig3() {
    let app = compile_chess();
    // Fig. 3(b): the mobile module has the dispatcher calling
    // is_profitable / offload_call, plus the extracted local body.
    let mobile_text = app.mobile.to_string();
    assert!(mobile_text.contains("is_profitable"), "{mobile_text}");
    assert!(mobile_text.contains("getAITurn__local"));
    // Fig. 3(c): the server module listens, dispatches, and has dropped
    // the interactive functions' bodies.
    let server_text = app.server.to_string();
    assert!(server_text.contains("__listen"));
    assert!(server_text.contains("accept_offload"));
    assert!(server_text.contains("__server_getAITurn"));
    // Remote output (§3.4): printf became r_printf on the server.
    assert!(server_text.contains("r_printf"), "{server_text}");
    // Function-pointer mapping (§3.4) guards the evals dispatch.
    assert!(server_text.contains("fn_map_to_local"));
    let gpt = app.server.function_by_name("getPlayerTurn").unwrap();
    assert!(
        app.server.function(gpt).is_declaration(),
        "unused function removal"
    );
}

#[test]
fn compile_stats_cover_table4_columns() {
    let app = compile_chess();
    let s = &app.plan.stats;
    assert!(s.total_functions > 5);
    assert!(s.offloaded_functions > 0);
    assert!(s.unified_globals > 0, "maxDepth/board/evals are referenced");
    assert!(s.heap_sites_unified >= 2, "malloc + free of the board");
    assert!(s.fn_ptr_sites >= 1, "the evals dispatch");
    assert!(s.remote_io_sites >= 1, "the score printf");
    assert!(
        s.removed_server_functions >= 2,
        "main/getPlayerTurn/runGame bodies"
    );
    assert!(s.coverage_percent > 30.0);
    // Fig. 4: Move (char,char,double) needs realignment against IA32-style
    // packing; the default x86-64 server aligns doubles like ARM, so the
    // mismatch shows against the IA32 profile.
    let (realigned, padding) = native_offloader::compiler::unify::realignment_stats(
        &app.original,
        offload_ir::TargetAbi::ServerIa32,
    );
    assert!(realigned >= 1, "Move must need realignment vs IA32");
    assert!(padding >= 4);
}

#[test]
fn static_estimator_uses_configured_bandwidth() {
    // Under Table 3's 80 Mbps assumption the chess example still selects
    // getAITurn (its Tg is positive there, as in the paper).
    let app = Offloader::with_config(CompileConfig::table3())
        .compile_source(chess::SOURCE, "chess", &chess::input(9, 2))
        .unwrap();
    assert!(app.plan.task_by_name("getAITurn").is_some());
}

#[test]
fn dispatcher_falls_back_to_local_when_never_profitable() {
    let app = compile_chess();
    let input = chess::input(8, 2);
    // A hopeless link: the dynamic estimator refuses, execution stays
    // local, output is still correct.
    let cfg = SessionConfig::with_link(offload_net::Link::custom("gprs", 30_000, 0.7));
    let local = app.run_local(&input).unwrap();
    let off = app.run_offloaded(&input, &cfg).unwrap();
    assert_eq!(local.console, off.console);
    assert_eq!(off.offloads_performed, 0);
    assert!(off.offloads_refused > 0);
}

#[test]
fn listen_loop_executes_on_a_scripted_server() {
    // Drive the generated __listen loop directly: accept_offload returns
    // the task id once, then 0 — the Fig. 3(c) control flow.
    use offload_ir::Builtin;
    use offload_machine::host::LocalHost;
    use offload_machine::vm::{Host, HostCtx, RtVal, StackBank, Vm, VmError};

    struct ScriptedServer {
        inner: LocalHost,
        queue: Vec<u32>,
        returns: Vec<RtVal>,
    }
    impl Host for ScriptedServer {
        fn page_fault(&mut self, page: u64, ctx: &mut HostCtx<'_>) -> Result<(), VmError> {
            self.inner.page_fault(page, ctx)
        }
        fn builtin(
            &mut self,
            b: Builtin,
            args: &[RtVal],
            ctx: &mut HostCtx<'_>,
        ) -> Result<Option<RtVal>, VmError> {
            match b {
                Builtin::AcceptOffload => Ok(Some(RtVal::I(self.queue.pop().map_or(0, i64::from)))),
                Builtin::RecvArgI | Builtin::RecvArgF => Ok(Some(RtVal::I(0))),
                Builtin::SendReturn | Builtin::SendReturnF => {
                    self.returns.push(args[0]);
                    Ok(None)
                }
                Builtin::FnMapToLocal => Ok(Some(args[0])),
                Builtin::RPrintf => Ok(Some(RtVal::I(0))),
                other => self.inner.builtin(other, args, ctx),
            }
        }
    }

    // A tiny program with one no-argument target.
    let src = "
        int work() { int i; int acc = 0; for (i = 0; i < 500000; i++) acc += i % 7; return acc; }
        int main() { int n; scanf(\"%d\", &n); printf(\"%d\\n\", work()); return 0; }";
    let app = Offloader::new()
        .compile_source(
            src,
            "listen-demo",
            &native_offloader::WorkloadInput::from_stdin("1\n"),
        )
        .unwrap();
    let task = app.plan.task_by_name("work").expect("work selected");

    let spec = offload_machine::target::TargetSpec::xps_8700();
    let image = offload_machine::loader::load(&app.server, &spec.data_layout()).unwrap();
    let mut vm = Vm::new(&app.server, &spec, image, StackBank::Server);
    let mut host = ScriptedServer {
        inner: LocalHost::new(),
        queue: vec![task.id],
        returns: Vec::new(),
    };
    let listen = app.server.entry.unwrap();
    vm.call_function(listen, &[], &mut host).unwrap();
    assert_eq!(
        host.returns.len(),
        1,
        "one request processed, then clean exit"
    );
    assert!(host.returns[0].as_i() > 0);
}
