//! Seed-generation reference implementations, preserved for the
//! perf-regression harness.
//!
//! The repo's first growth ring shipped a `HashMap<[u8;4], Vec<usize>>`
//! LZ match finder and a per-access `BTreeMap` page lookup with no TLB.
//! Both were rewritten for speed (hash-chain finder in `offload_net::lz`,
//! slot arena + one-entry software TLB in `offload_machine::mem`); these
//! copies keep the old behaviour alive so `reproduce bench` can measure
//! new-vs-seed on identical inputs instead of trusting a changelog claim.
//! They are reference baselines — do not "optimize" them.

use std::collections::{BTreeMap, HashMap};

use offload_machine::PAGE_SIZE;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 255;
const MAX_OFFSET: usize = 65_535;

/// The seed `lz::compress`: per-call `HashMap` position table, at most 16
/// candidates scanned per position, first 8 in-match positions indexed.
/// Emits the same wire format as [`offload_net::lz::compress`], so
/// `offload_net::lz::decompress` round-trips its output.
pub fn seed_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut table: HashMap<[u8; MIN_MATCH], Vec<usize>> = HashMap::new();
    let mut literals: Vec<u8> = Vec::new();
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, lits: &mut Vec<u8>| {
        for chunk in lits.chunks(255) {
            out.push(0x00);
            out.push(chunk.len() as u8);
            out.extend_from_slice(chunk);
        }
        lits.clear();
    };

    while i < data.len() {
        let mut best: Option<(usize, usize)> = None; // (offset, len)
        if i + MIN_MATCH <= data.len() {
            let key: [u8; MIN_MATCH] = data[i..i + MIN_MATCH].try_into().expect("length checked");
            if let Some(positions) = table.get(&key) {
                for &pos in positions.iter().rev().take(16) {
                    let offset = i - pos;
                    if offset > MAX_OFFSET {
                        break;
                    }
                    let mut len = 0usize;
                    while len < MAX_MATCH
                        && i + len < data.len()
                        && data[pos + len] == data[i + len]
                    {
                        len += 1;
                    }
                    if len >= MIN_MATCH && best.is_none_or(|(_, bl)| len > bl) {
                        best = Some((offset, len));
                    }
                }
            }
            table.entry(key).or_default().push(i);
        }
        match best {
            Some((offset, len)) => {
                flush_literals(&mut out, &mut literals);
                out.push(0x01);
                out.push((offset & 0xFF) as u8);
                out.push((offset >> 8) as u8);
                out.push(len as u8);
                for k in 1..len.min(8) {
                    let p = i + k;
                    if p + MIN_MATCH <= data.len() {
                        let key: [u8; MIN_MATCH] =
                            data[p..p + MIN_MATCH].try_into().expect("length checked");
                        table.entry(key).or_default().push(p);
                    }
                }
                i += len;
            }
            None => {
                literals.push(data[i]);
                i += 1;
            }
        }
    }
    flush_literals(&mut out, &mut literals);
    out
}

/// The seed paged memory: one `BTreeMap` walk per access, demand-zero
/// backing, no TLB, no frame recycling. Only the benchmark-relevant
/// surface is kept.
#[derive(Debug, Default)]
pub struct SeedMemory {
    pages: BTreeMap<u64, Box<[u8]>>,
}

impl SeedMemory {
    /// An empty demand-zero memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn page_mut(&mut self, page: u64) -> &mut Box<[u8]> {
        self.pages
            .entry(page)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Read `buf.len()` bytes at `addr`, faulting pages in as zeroes.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) {
        let mut addr = addr;
        let mut off = 0usize;
        while off < buf.len() {
            let page = addr / PAGE_SIZE;
            let in_page = (addr % PAGE_SIZE) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            let p = self.page_mut(page);
            buf[off..off + n].copy_from_slice(&p[in_page..in_page + n]);
            addr += n as u64;
            off += n;
        }
    }

    /// Write `buf` at `addr`, creating pages on demand.
    pub fn write(&mut self, addr: u64, buf: &[u8]) {
        let mut addr = addr;
        let mut off = 0usize;
        while off < buf.len() {
            let page = addr / PAGE_SIZE;
            let in_page = (addr % PAGE_SIZE) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            let p = self.page_mut(page);
            p[in_page..in_page + n].copy_from_slice(&buf[off..off + n]);
            addr += n as u64;
            off += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_compress_roundtrips_through_current_decoder() {
        let data = b"seed and current share one wire format - seed and current".repeat(40);
        let c = seed_compress(&data);
        assert!(c.len() < data.len());
        assert_eq!(offload_net::lz::decompress(&c).unwrap(), data);
    }

    #[test]
    fn seed_memory_roundtrips() {
        let mut m = SeedMemory::new();
        let data: Vec<u8> = (0..=255).cycle().take(9000).collect();
        m.write(PAGE_SIZE - 50, &data);
        let mut back = vec![0u8; data.len()];
        m.read(PAGE_SIZE - 50, &mut back);
        assert_eq!(back, data);
    }
}
