//! Golden-output regression tests: every miniature's console output with
//! its evaluation input is pinned, so a front-end, VM or workload change
//! that silently alters program behaviour fails loudly here.
//!
//! To regenerate after an *intentional* change, run with
//! `GOLDEN_PRINT=1 cargo test -p offload-workloads --test golden -- --nocapture`
//! and paste the printed table.

use offload_machine::host::LocalHost;
use offload_machine::loader;
use offload_machine::target::TargetSpec;
use offload_machine::vm::{StackBank, Vm};

/// `(short name, expected console output with the eval input)`.
const GOLDEN: &[(&str, &str)] = &[
    ("gzip", "checksum 55043 outlen 8377\n"),
    ("vpr", "final cost -509620\n"),
    ("mesa", "rendered 604262\n"),
    ("art", "recognized 9333.7672\n"),
    ("equake", "wave 202.6934\n"),
    ("ammp", "energy 3317926.014 9373670.324 virial 8978.280\n"),
    ("twolf", "placed 133327\n"),
    ("bzip2", "checksum 65554 outlen 160318\n"),
    ("mcf", "opt 931451\n"),
    ("milc", "action 285459.609 281013.673\n"),
    ("gobmk", "game 345742\n"),
    ("hmmer", "best 2462\n"),
    ("sjeng", "line 646348\n"),
    ("libquantum", "phase 939\n"),
    ("h264ref", "bits 225156\n"),
    ("lbm", "mass 12152.0189\n"),
    ("sphinx3", "decoded 605.0686\n"),
];

fn run_local(short: &str) -> String {
    let w = offload_workloads::by_short_name(short).expect("workload exists");
    let module = offload_minic::compile(w.source, w.name).expect("compiles");
    let spec = TargetSpec::galaxy_s5();
    let image = loader::load(&module, &spec.data_layout()).expect("loads");
    let mut host = LocalHost::new();
    let input = (w.eval_input)();
    host.set_stdin(input.stdin);
    for (name, data) in input.files {
        host.add_file(name, data);
    }
    let mut vm = Vm::new(&module, &spec, image, StackBank::Mobile);
    vm.set_fuel(2_000_000_000);
    vm.run_entry(&mut host).expect("runs");
    host.console_utf8()
}

#[test]
fn console_outputs_are_pinned() {
    let mut failures = Vec::new();
    for (short, expected) in GOLDEN {
        let got = run_local(short);
        if std::env::var("GOLDEN_PRINT").is_ok() {
            println!("    (\"{short}\", {:?}),", got);
        }
        if &got != expected {
            failures.push(format!("{short}: expected {expected:?}, got {got:?}"));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn golden_covers_every_workload() {
    let names: Vec<&str> = GOLDEN.iter().map(|(n, _)| *n).collect();
    for w in offload_workloads::all() {
        assert!(names.contains(&w.short), "no golden output for {}", w.short);
    }
}
