//! Typed intermediate representation for the Native Offloader reproduction.
//!
//! The Native Offloader compiler (MICRO 2015) partitions applications at IR
//! level so that the same analyses and transformations serve any front-end
//! language and any pair of target architectures. This crate provides that
//! IR: a typed, CFG-structured, register-based representation with
//!
//! * a type system covering the C subset the paper manipulates (scalars,
//!   pointers, arrays, structs, function pointers),
//! * per-target [data layout](layout::DataLayout) computation, which is what
//!   makes the paper's *memory layout realignment* (§3.2, Fig. 4) expressible,
//! * a [builder](builder::FunctionBuilder) for constructing functions,
//! * a structural [verifier](verify), a textual printer, and
//! * the analyses the offload compiler needs: call graph, dominator tree and
//!   natural-loop detection ([`analysis`]).
//!
//! # Example
//!
//! ```
//! use offload_ir::{Module, Type, builder::FunctionBuilder, ConstValue};
//!
//! let mut module = Module::new("demo");
//! let f = module.declare_function("answer", vec![], Type::I32);
//! let mut b = FunctionBuilder::new(&mut module, f);
//! let v = b.const_value(ConstValue::I32(42));
//! b.ret(Some(v));
//! b.finish();
//! assert!(offload_ir::verify::verify_module(&module).is_ok());
//! ```

pub mod analysis;
pub mod builder;
pub mod diag;
pub mod inst;
pub mod layout;
pub mod module;
pub mod opt;
pub mod print;
pub mod types;
pub mod verify;

pub use diag::{Code, Diagnostic, DiagnosticBag, Severity, Site};
pub use inst::{BinOp, Builtin, Callee, CastKind, CmpOp, Inst, UnOp};
pub use layout::{DataLayout, Endian, StructLayout, TargetAbi};
pub use module::{
    Block, BlockId, ConstValue, FuncId, Function, Global, GlobalId, Module, StructId, ValueId,
};
pub use types::{StructDef, Type};
