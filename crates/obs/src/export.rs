//! Trace exporters: Chrome `trace_event` JSONL and human renderers.
//!
//! The JSONL form writes one trace-event object per line — load it in
//! `chrome://tracing` / Perfetto (both accept newline-delimited event
//! streams) or post-process it with standard line tools. The compiler
//! lane is `tid 0`, the runtime (simulated-clock) lane is `tid 1`;
//! timestamps are microseconds.

use crate::event::{Dir, EventKind, Record, Span};

/// Escape a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float for JSON (finite; no exponent surprises for Chrome).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn tid(kind: &EventKind) -> u32 {
    match kind {
        EventKind::Begin(Span::Compile(_)) | EventKind::End(Span::Compile(_)) => 0,
        _ => 1,
    }
}

/// `(name, phase, args-json)` for one event.
fn describe(kind: &EventKind) -> (String, char, String) {
    use EventKind::*;
    match kind {
        Begin(s) => (span_name(s), 'B', span_args(s)),
        End(s) => (span_name(s), 'E', span_args(s)),
        MobileCompute { cycles } => {
            ("mobile_compute".into(), 'i', format!("{{\"cycles\":{cycles}}}"))
        }
        ServerCompute { cycles } => {
            ("server_compute".into(), 'i', format!("{{\"cycles\":{cycles}}}"))
        }
        Frame { kind, dir, raw_bytes, wire_bytes, duration_s, lane } => (
            format!("frame:{}", kind.name()),
            'i',
            format!(
                "{{\"dir\":\"{}\",\"raw_bytes\":{raw_bytes},\"wire_bytes\":{wire_bytes},\"duration_s\":{},\"lane\":\"{}\"}}",
                match dir {
                    Dir::Up => "up",
                    Dir::Down => "down",
                },
                num(*duration_s),
                match lane {
                    crate::event::CostLane::Comm => "comm",
                    crate::event::CostLane::RemoteIo => "remote_io",
                    crate::event::CostLane::Stream => "stream",
                }
            ),
        ),
        OffloadDecision { task, accepted, t_gain_s, t_comm_s, bandwidth_bps } => (
            "offload_decision".into(),
            'i',
            format!(
                "{{\"task\":{task},\"accepted\":{accepted},\"t_gain_s\":{},\"t_comm_s\":{},\"bandwidth_bps\":{bandwidth_bps}}}",
                num(*t_gain_s),
                num(*t_comm_s)
            ),
        ),
        DemandFault { page, pages, window, duration_s } => (
            "demand_fault".into(),
            'i',
            format!(
                "{{\"page\":{page},\"pages\":{pages},\"window\":{window},\"duration_s\":{}}}",
                num(*duration_s)
            ),
        ),
        PrefetchBatch { pages, bytes } => (
            "prefetch".into(),
            'i',
            format!("{{\"pages\":{pages},\"bytes\":{bytes}}}"),
        ),
        DirtyWriteBack { pages, raw_bytes, wire_bytes } => (
            "dirty_writeback".into(),
            'i',
            format!("{{\"pages\":{pages},\"raw_bytes\":{raw_bytes},\"wire_bytes\":{wire_bytes}}}"),
        ),
        DeltaWriteBack { pages, full_bytes, delta_bytes } => (
            "delta_writeback".into(),
            'i',
            format!("{{\"pages\":{pages},\"full_bytes\":{full_bytes},\"delta_bytes\":{delta_bytes}}}"),
        ),
        BatchFlush { bytes } => ("batch_flush".into(), 'i', format!("{{\"bytes\":{bytes}}}")),
        Compression { raw_bytes, wire_bytes, decompress_s } => (
            "compression".into(),
            'i',
            format!(
                "{{\"raw_bytes\":{raw_bytes},\"wire_bytes\":{wire_bytes},\"decompress_s\":{}}}",
                num(*decompress_s)
            ),
        ),
        RemoteIo { op, bytes } => (
            format!("remote_io:{}", op.name()),
            'i',
            format!("{{\"bytes\":{bytes}}}"),
        ),
        FnPtrTranslate { cycles } => {
            ("fn_ptr_translate".into(), 'i', format!("{{\"cycles\":{cycles}}}"))
        }
        AnalysisDiagnostic { code, severity } => (
            format!("analysis_diag:{}", severity.name()),
            'i',
            format!("{{\"code\":\"OFF{code:03}\",\"severity\":\"{}\"}}", severity.name()),
        ),
        AnalysisVerdicts {
            offloadable,
            machine_specific,
            indirect_bounded,
            indirect_unbounded,
        } => (
            "analysis_verdicts".into(),
            'i',
            format!(
                "{{\"offloadable\":{offloadable},\"machine_specific\":{machine_specific},\"indirect_bounded\":{indirect_bounded},\"indirect_unbounded\":{indirect_unbounded}}}"
            ),
        ),
        Certificate {
            task,
            read_pages,
            write_pages,
            readonly_pages,
            precise,
        } => (
            "certificate".into(),
            'i',
            format!(
                "{{\"task\":{task},\"read_pages\":{read_pages},\"write_pages\":{write_pages},\"readonly_pages\":{readonly_pages},\"precise\":{precise}}}"
            ),
        ),
        OracleCheck {
            task,
            faults_checked,
            dirty_checked,
            baseline_skipped,
        } => (
            "oracle_check".into(),
            'i',
            format!(
                "{{\"task\":{task},\"faults_checked\":{faults_checked},\"dirty_checked\":{dirty_checked},\"baseline_skipped\":{baseline_skipped}}}"
            ),
        ),
        PrefetchPredict { page, window } => (
            "prefetch_predict".into(),
            'i',
            format!("{{\"page\":{page},\"window\":{window}}}"),
        ),
        StreamHit { page, residual_s, saved_s } => (
            "stream_hit".into(),
            'i',
            format!(
                "{{\"page\":{page},\"residual_s\":{},\"saved_s\":{}}}",
                num(*residual_s),
                num(*saved_s)
            ),
        ),
        StreamWaste { pages, wire_bytes } => (
            "stream_waste".into(),
            'i',
            format!("{{\"pages\":{pages},\"wire_bytes\":{wire_bytes}}}"),
        ),
        Power { state, duration_s } => (
            format!("power:{}", state.name()),
            'i',
            format!("{{\"duration_s\":{}}}", num(*duration_s)),
        ),
        QueueDepth { queue, depth } => (
            format!("queue:{}", queue.name()),
            'i',
            format!("{{\"depth\":{depth}}}"),
        ),
        LaneGrant {
            lane,
            worker,
            session,
            duration_s,
        } => (
            format!("lane:{}", lane.name()),
            'i',
            format!(
                "{{\"worker\":{worker},\"session\":{session},\"duration_s\":{}}}",
                num(*duration_s)
            ),
        ),
    }
}

fn span_name(s: &Span) -> String {
    match s {
        Span::Compile(p) => format!("compile:{}", p.name()),
        Span::Offload { task } => format!("offload:task{task}"),
        Span::ServerExec { task } => format!("server_exec:task{task}"),
    }
}

fn span_args(s: &Span) -> String {
    match s {
        Span::Compile(_) => "{}".to_string(),
        Span::Offload { task } | Span::ServerExec { task } => format!("{{\"task\":{task}}}"),
    }
}

/// Render the records as Chrome `trace_event` JSONL: one event object per
/// line. Span records become `B`/`E` pairs; everything else an instant.
pub fn chrome_trace_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        let (name, ph, args) = describe(&r.kind);
        let ts_us = r.ts_s * 1e6;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"offload\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{args}}}\n",
            esc(&name),
            num(ts_us),
            tid(&r.kind),
        ));
    }
    out
}

/// Render the records as an indented tree: spans nest, instants are
/// leaves. Durations come from matching `End` records.
pub fn render_tree(records: &[Record]) -> String {
    let mut out = String::new();
    let mut depth: usize = 0;
    for (i, r) in records.iter().enumerate() {
        match &r.kind {
            EventKind::Begin(s) => {
                let dur = records[i + 1..]
                    .iter()
                    .find(|r2| matches!(&r2.kind, EventKind::End(s2) if s2 == s))
                    .map(|r2| r2.ts_s - r.ts_s);
                out.push_str(&"  ".repeat(depth));
                match dur {
                    Some(d) => out.push_str(&format!("▶ {} [{:.3} ms]\n", span_name(s), d * 1e3)),
                    None => out.push_str(&format!("▶ {} [unclosed]\n", span_name(s))),
                }
                depth += 1;
            }
            EventKind::End(_) => depth = depth.saturating_sub(1),
            kind => {
                let (name, _, args) = describe(kind);
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!("· {:>10.3} ms  {name} {args}\n", r.ts_s * 1e3));
            }
        }
    }
    out
}

/// Render an ASCII timeline of the runtime lane: one row per activity
/// class, `width` columns spanning the full simulated duration.
pub fn render_timeline(records: &[Record], width: usize) -> String {
    // Degenerate widths still render (a width-1 strip); only zero is
    // bumped, so callers asking for narrow timelines get what they asked
    // for instead of a silent 16-column floor.
    let width = width.max(1);
    let runtime: Vec<&Record> = records.iter().filter(|r| tid(&r.kind) == 1).collect();
    let end = runtime.iter().map(|r| r.ts_s).fold(0.0f64, f64::max);
    if end <= 0.0 {
        return "timeline: no runtime events\n".to_string();
    }
    // Clamp so events at (or, through float rounding, past) the last
    // tick land in the final column rather than indexing out of range.
    let col = |t: f64| (((t / end) * (width - 1) as f64) as usize).min(width - 1);
    type RowFilter<'a> = (&'a str, Box<dyn Fn(&EventKind) -> bool>);
    let rows: [RowFilter; 5] = [
        (
            "offload ",
            Box::new(|k| matches!(k, EventKind::Begin(Span::Offload { .. }))),
        ),
        (
            "faults  ",
            Box::new(|k| matches!(k, EventKind::DemandFault { .. })),
        ),
        (
            "frames  ",
            Box::new(|k| matches!(k, EventKind::Frame { .. })),
        ),
        (
            "rem I/O ",
            Box::new(|k| matches!(k, EventKind::RemoteIo { .. })),
        ),
        (
            "power   ",
            Box::new(|k| matches!(k, EventKind::Power { .. })),
        ),
    ];
    let mut out = format!(
        "timeline [0 .. {:.3} ms] ({} events)\n",
        end * 1e3,
        runtime.len()
    );
    for (label, pred) in rows {
        let mut row = vec![' '; width];
        for r in &runtime {
            if pred(&r.kind) {
                row[col(r.ts_s)] = '#';
            }
        }
        out.push_str(label);
        out.push('|');
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CompilePhase, CostLane, FrameKind, PowerLane};

    fn sample() -> Vec<Record> {
        vec![
            Record {
                ts_s: 0.0,
                kind: EventKind::Begin(Span::Compile(CompilePhase::Profile)),
            },
            Record {
                ts_s: 1e-6,
                kind: EventKind::End(Span::Compile(CompilePhase::Profile)),
            },
            Record {
                ts_s: 0.001,
                kind: EventKind::Begin(Span::Offload { task: 1 }),
            },
            Record {
                ts_s: 0.002,
                kind: EventKind::Frame {
                    kind: FrameKind::OffloadRequest,
                    dir: Dir::Up,
                    raw_bytes: 128,
                    wire_bytes: 128,
                    duration_s: 0.0005,
                    lane: CostLane::Comm,
                },
            },
            Record {
                ts_s: 0.003,
                kind: EventKind::Power {
                    state: PowerLane::Waiting,
                    duration_s: 0.01,
                },
            },
            Record {
                ts_s: 0.02,
                kind: EventKind::End(Span::Offload { task: 1 }),
            },
        ]
    }

    #[test]
    fn jsonl_one_object_per_line_with_required_keys() {
        let txt = chrome_trace_jsonl(&sample());
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            for key in [
                "\"name\":",
                "\"ph\":",
                "\"ts\":",
                "\"pid\":",
                "\"tid\":",
                "\"args\":",
            ] {
                assert!(line.contains(key), "{line} missing {key}");
            }
        }
        assert!(lines[0].contains("\"ph\":\"B\""));
        assert!(lines[1].contains("\"ph\":\"E\""));
        assert!(lines[0].contains("\"tid\":0"), "compile lane is tid 0");
        assert!(lines[3].contains("\"tid\":1"), "runtime lane is tid 1");
    }

    #[test]
    fn tree_nests_spans() {
        let txt = render_tree(&sample());
        assert!(txt.contains("▶ compile:profile"));
        assert!(txt.contains("▶ offload:task1"));
        // The frame instant is indented under the offload span.
        let frame_line = txt.lines().find(|l| l.contains("frame:")).unwrap();
        assert!(frame_line.starts_with("  "), "{frame_line}");
    }

    #[test]
    fn timeline_renders_rows() {
        let txt = render_timeline(&sample(), 40);
        assert!(txt.contains("offload "));
        assert!(txt.contains('#'));
    }

    #[test]
    fn tree_golden_output() {
        let expected = "\
▶ compile:profile [0.001 ms]
▶ offload:task1 [19.000 ms]
  ·      2.000 ms  frame:offload_request {\"dir\":\"up\",\"raw_bytes\":128,\"wire_bytes\":128,\"duration_s\":0.0005,\"lane\":\"comm\"}
  ·      3.000 ms  power:waiting {\"duration_s\":0.01}
";
        assert_eq!(render_tree(&sample()), expected);
    }

    #[test]
    fn timeline_golden_output() {
        let expected = "\
timeline [0 .. 20.000 ms] (4 events)
offload |#         |
faults  |          |
frames  |#         |
rem I/O |          |
power   | #        |
";
        assert_eq!(render_timeline(&sample(), 10), expected);
    }

    #[test]
    fn timeline_degenerate_widths_do_not_panic() {
        // width 0 is bumped to a 1-column strip; width 1 stays width 1.
        for w in [0, 1] {
            let txt = render_timeline(&sample(), w);
            assert!(txt.contains("offload |#|"), "width {w}: {txt}");
            assert!(txt.contains("faults  | |"), "width {w}: {txt}");
        }
    }

    #[test]
    fn timeline_event_at_last_tick_lands_in_final_column() {
        let records = vec![
            Record {
                ts_s: 0.001,
                kind: EventKind::DemandFault {
                    page: 0,
                    pages: 1,
                    window: 1,
                    duration_s: 0.001,
                },
            },
            Record {
                ts_s: 0.01,
                kind: EventKind::DemandFault {
                    page: 1,
                    pages: 1,
                    window: 1,
                    duration_s: 0.001,
                },
            },
        ];
        let txt = render_timeline(&records, 3);
        let faults = txt.lines().find(|l| l.starts_with("faults")).unwrap();
        assert_eq!(faults, "faults  |# #|");
    }

    #[test]
    fn empty_timeline_is_graceful() {
        assert!(render_timeline(&[], 40).contains("no runtime events"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(esc("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
