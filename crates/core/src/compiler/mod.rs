//! The Native Offloader compiler: Fig. 2's pipeline.
//!
//! Target selection (profiler → function filter → Equation-1 estimator),
//! loop outlining, memory unification, partitioning, and server-specific
//! optimization, producing a mobile module, a server module and an
//! [`OffloadPlan`].

pub mod analyze;
pub mod certify;
pub mod estimate;
pub mod filter;
pub mod optimize;
pub mod outline;
pub mod partition;
pub mod profile;
pub mod unify;

use std::collections::BTreeSet;

use offload_ir::analysis::pointsto::PointsTo;
use offload_ir::analysis::{run_lints, CallGraph, LoopForest};
use offload_ir::diag::Severity;
use offload_ir::layout::WIDEST_TARGET_ADDR_BITS;
use offload_ir::{FuncId, Module};
use offload_obs::{
    Collector, CompileClock, CompilePhase, DiagLane, EventKind, NoopCollector, Span,
};

use crate::config::{CompileConfig, SessionConfig, WorkloadInput};
use crate::plan::{CompileStats, EstimateRow, OffloadPlan, OffloadTask};
use crate::runtime::report::RunReport;
use crate::OffloadError;

use estimate::{equation1, EstimateInput};
use profile::{ProfileData, RegionKey};

/// The compiler front door.
#[derive(Debug, Default)]
pub struct Offloader {
    config: CompileConfig,
}

impl Offloader {
    /// An offloader with the default device pair (Galaxy S5 → XPS 8700).
    pub fn new() -> Self {
        Self::default()
    }

    /// An offloader with an explicit configuration.
    pub fn with_config(config: CompileConfig) -> Self {
        Offloader { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CompileConfig {
        &self.config
    }

    /// Compile MiniC source into an offloading-enabled application,
    /// profiling it with `profile_input`.
    ///
    /// # Errors
    ///
    /// Front-end, verification, or profiling failures.
    pub fn compile_source(
        &self,
        source: &str,
        name: &str,
        profile_input: &WorkloadInput,
    ) -> Result<CompiledApp, OffloadError> {
        let module = offload_minic::compile(source, name)?;
        self.compile_module(module, profile_input)
    }

    /// Like [`compile_source`](Self::compile_source), emitting a
    /// Begin/End span per Fig. 2 pipeline phase into `obs`.
    ///
    /// # Errors
    ///
    /// Front-end, verification, or profiling failures.
    pub fn compile_source_traced(
        &self,
        source: &str,
        name: &str,
        profile_input: &WorkloadInput,
        obs: &mut dyn Collector,
    ) -> Result<CompiledApp, OffloadError> {
        let module = offload_minic::compile(source, name)?;
        self.compile_module_traced(module, profile_input, obs)
    }

    /// Compile an already-lowered module.
    ///
    /// # Errors
    ///
    /// Verification or profiling failures.
    pub fn compile_module(
        &self,
        module: Module,
        profile_input: &WorkloadInput,
    ) -> Result<CompiledApp, OffloadError> {
        self.compile_module_traced(module, profile_input, &mut NoopCollector)
    }

    /// Compile an already-lowered module, emitting a Begin/End span per
    /// Fig. 2 pipeline phase (profile, filter, estimate — which includes
    /// loop outlining — unify, partition, optimize) into `obs`. Phases
    /// have no simulated time; spans are stamped with an ordinal
    /// [`CompileClock`], one micro-tick per event.
    ///
    /// # Errors
    ///
    /// Verification or profiling failures.
    pub fn compile_module_traced(
        &self,
        mut module: Module,
        profile_input: &WorkloadInput,
        obs: &mut dyn Collector,
    ) -> Result<CompiledApp, OffloadError> {
        let mut clk = CompileClock::new();
        offload_ir::verify::verify_module(&module)?;
        let original = module.clone();
        if self.config.optimize {
            offload_ir::opt::optimize_module(&mut module);
            offload_ir::verify::verify_module(&module)?;
        }

        // -- 1. target selection (§3.1) ---------------------------------
        obs.record(
            clk.next(),
            EventKind::Begin(Span::Compile(CompilePhase::Profile)),
        );
        let prof = profile::profile_module(&module, profile_input, &self.config)?;
        obs.record(
            clk.next(),
            EventKind::End(Span::Compile(CompilePhase::Profile)),
        );
        // Static analysis: points-to (indirect-call resolution) and the
        // portability lints. The filter consumes the points-to results.
        obs.record(
            clk.next(),
            EventKind::Begin(Span::Compile(CompilePhase::Analyze)),
        );
        let pt = PointsTo::analyze(&module);
        let lint_diags = run_lints(&module, &pt, WIDEST_TARGET_ADDR_BITS);
        for d in &lint_diags {
            obs.record(
                clk.next(),
                EventKind::AnalysisDiagnostic {
                    code: d.code.number(),
                    severity: severity_lane(d.severity),
                },
            );
        }
        obs.record(
            clk.next(),
            EventKind::End(Span::Compile(CompilePhase::Analyze)),
        );
        obs.record(
            clk.next(),
            EventKind::Begin(Span::Compile(CompilePhase::Filter)),
        );
        let filt = filter::run_filter_with(&module, true, &pt);
        for cause in filt.tainted.values() {
            let code = analyze::cause_code(cause);
            obs.record(
                clk.next(),
                EventKind::AnalysisDiagnostic {
                    code: code.number(),
                    severity: severity_lane(code.default_severity()),
                },
            );
        }
        let (indirect_bounded, indirect_unbounded) = filt.indirect_counts();
        obs.record(
            clk.next(),
            EventKind::AnalysisVerdicts {
                offloadable: (module.function_count() - filt.tainted_count()) as u32,
                machine_specific: filt.tainted_count() as u32,
                indirect_bounded: indirect_bounded as u32,
                indirect_unbounded: indirect_unbounded as u32,
            },
        );
        obs.record(
            clk.next(),
            EventKind::End(Span::Compile(CompilePhase::Filter)),
        );
        obs.record(
            clk.next(),
            EventKind::Begin(Span::Compile(CompilePhase::Estimate)),
        );
        let ratio = self.config.mobile.performance_ratio(&self.config.server);
        let hot_cut = (prof.total_cycles as f64 * self.config.hot_threshold) as u64;

        let mut estimates: Vec<EstimateRow> = Vec::new();
        let mut selected_fns: Vec<FuncId> = Vec::new();
        let mut selected_loops: Vec<(FuncId, offload_ir::BlockId)> = Vec::new();

        for (key, stats) in &prof.regions {
            let machine_specific;
            let eligible;
            match key {
                RegionKey::Function(f) => {
                    machine_specific = !filt.is_offloadable(*f);
                    eligible =
                        !machine_specific && Some(*f) != module.entry && stats.cycles >= hot_cut;
                }
                RegionKey::Loop { func, header } => {
                    if !self.config.outline_loops {
                        continue;
                    }
                    let forest = LoopForest::compute(module.function(*func));
                    let l = forest
                        .loops
                        .iter()
                        .find(|l| l.header == *header)
                        .expect("profiled loop exists");
                    machine_specific =
                        !filter::loop_is_offloadable(&module, &filt, *func, &l.body, true);
                    eligible = !machine_specific && stats.cycles >= hot_cut;
                }
            }
            let est = equation1(EstimateInput {
                tm_s: prof.cycles_to_seconds(stats.cycles),
                invocations: stats.invocations,
                mem_bytes: stats.mem_bytes,
                ratio,
                bandwidth_bps: self.config.static_bandwidth_bps,
            });
            let selected = eligible && est.profitable();
            estimates.push(EstimateRow {
                name: stats.name.clone(),
                exec_time_s: prof.cycles_to_seconds(stats.cycles),
                invocations: stats.invocations,
                mem_bytes: stats.mem_bytes,
                t_ideal_s: est.t_ideal_s,
                t_comm_s: est.t_comm_s,
                t_gain_s: est.t_gain_s,
                machine_specific,
                selected,
            });
            if selected {
                match key {
                    RegionKey::Function(f) => selected_fns.push(*f),
                    RegionKey::Loop { func, header } => selected_loops.push((*func, *header)),
                }
            }
        }

        // Drop loop candidates inside a selected function (offloading the
        // function already covers them) or nested in a bigger selected
        // loop of the same function.
        let fn_set: BTreeSet<FuncId> = selected_fns.iter().copied().collect();
        let mut kept_loops: Vec<(FuncId, offload_ir::BlockId, BTreeSet<offload_ir::BlockId>)> =
            Vec::new();
        for (func, header) in selected_loops {
            if fn_set.contains(&func) || covered_by_selected_fn(&module, &fn_set, func) {
                mark_unselected(&mut estimates, &prof, func, header);
                continue;
            }
            let forest = LoopForest::compute(module.function(func));
            let body = forest
                .loops
                .iter()
                .find(|l| l.header == header)
                .expect("loop exists")
                .body
                .clone();
            if kept_loops
                .iter()
                .any(|(f, _, b)| *f == func && b.is_superset(&body))
            {
                mark_unselected(&mut estimates, &prof, func, header);
                continue;
            }
            kept_loops.retain(|(f, h, b)| {
                let nested = *f == func && body.is_superset(b);
                if nested {
                    mark_unselected(&mut estimates, &prof, *f, *h);
                }
                !nested
            });
            kept_loops.push((func, header, body));
        }

        // -- 2. loop outlining ------------------------------------------
        let mut loop_targets: Vec<(FuncId, RegionKey)> = Vec::new();
        let mut loops_outlined = 0usize;
        for (i, (func, header, _)) in kept_loops.iter().enumerate() {
            let forest = LoopForest::compute(module.function(*func));
            let l = forest
                .loops
                .iter()
                .find(|l| l.header == *header)
                .expect("loop exists")
                .clone();
            match outline::outline_loop(&mut module, *func, &l, i) {
                Ok(new_fn) => {
                    loops_outlined += 1;
                    loop_targets.push((
                        new_fn,
                        RegionKey::Loop {
                            func: *func,
                            header: *header,
                        },
                    ));
                }
                Err(_) => {
                    mark_unselected(&mut estimates, &prof, *func, *header);
                }
            }
        }

        obs.record(
            clk.next(),
            EventKind::End(Span::Compile(CompilePhase::Estimate)),
        );

        // -- 3. memory unification (§3.2) --------------------------------
        obs.record(
            clk.next(),
            EventKind::Begin(Span::Compile(CompilePhase::Unify)),
        );
        let unify_out = unify::unify_memory(&mut module);
        let (structs_realigned, realign_padding) =
            unify::realignment_stats(&module, self.config.server.abi);
        obs.record(
            clk.next(),
            EventKind::End(Span::Compile(CompilePhase::Unify)),
        );

        // -- 4. partition (§3.3) ------------------------------------------
        obs.record(
            clk.next(),
            EventKind::Begin(Span::Compile(CompilePhase::Partition)),
        );
        let mut targets = Vec::new();
        let mut next_id = 1u32;
        for f in &selected_fns {
            targets.push(partition::PartitionTarget {
                id: next_id,
                func: *f,
            });
            next_id += 1;
        }
        for (f, _) in &loop_targets {
            targets.push(partition::PartitionTarget {
                id: next_id,
                func: *f,
            });
            next_id += 1;
        }
        let infos = partition::insert_dispatchers(&mut module, &targets);
        let (mut server, removed) = partition::build_server_module(&module, &infos);
        obs.record(
            clk.next(),
            EventKind::End(Span::Compile(CompilePhase::Partition)),
        );

        // -- 5. server-specific optimization (§3.4) ------------------------
        obs.record(
            clk.next(),
            EventKind::Begin(Span::Compile(CompilePhase::Optimize)),
        );
        let remote_io_sites = optimize::replace_remote_io(&mut server);
        let fn_ptr_sites = optimize::insert_fn_ptr_mapping(&mut server);
        let _conv = unify::insert_server_conversions(&mut server, self.config.server.abi);

        offload_ir::verify::verify_module(&module)?;
        offload_ir::verify::verify_module(&server)?;
        obs.record(
            clk.next(),
            EventKind::End(Span::Compile(CompilePhase::Optimize)),
        );

        // -- plan ------------------------------------------------------------
        let mut tasks = Vec::new();
        for (idx, info) in infos.iter().enumerate() {
            let key = if idx < selected_fns.len() {
                RegionKey::Function(selected_fns[idx])
            } else {
                loop_targets[idx - selected_fns.len()].1.clone()
            };
            let stats = prof.get(&key).expect("selected regions were profiled");
            tasks.push(OffloadTask {
                id: info.id,
                dispatcher: info.dispatcher,
                local_func: info.local_func,
                name: info.name.clone(),
                params: info.params.clone(),
                ret: info.ret.clone(),
                tm_per_invocation_s: prof.cycles_to_seconds(stats.cycles)
                    / stats.invocations.max(1) as f64,
                mem_bytes: stats.mem_bytes,
                prefetch_pages: stats.pages.clone(),
            });
        }

        // -- 6. region certification ---------------------------------------
        // Run on the final mobile module so global indices and layout
        // match what the loader places on the UVA; the server module is
        // loaded with the same unified layout.
        obs.record(
            clk.next(),
            EventKind::Begin(Span::Compile(CompilePhase::Certify)),
        );
        let cert_out = certify::certify_tasks(&module, &self.config.mobile.data_layout(), &tasks);
        for d in &cert_out.diags {
            obs.record(
                clk.next(),
                EventKind::AnalysisDiagnostic {
                    code: d.code.number(),
                    severity: severity_lane(d.severity),
                },
            );
        }
        obs.record(
            clk.next(),
            EventKind::End(Span::Compile(CompilePhase::Certify)),
        );

        let coverage = coverage_percent(&prof, &estimates);
        let server_live = server
            .iter_functions()
            .filter(|(_, f)| !f.is_declaration())
            .count();
        let plan = OffloadPlan {
            tasks,
            estimates,
            stats: CompileStats {
                total_functions: original.function_count(),
                offloaded_functions: server_live,
                total_globals: module.global_count(),
                unified_globals: unify_out.unified_globals,
                fn_ptr_sites,
                remote_io_sites,
                machine_specific_functions: filt.tainted_count(),
                removed_server_functions: removed,
                heap_sites_unified: unify_out.heap_sites,
                structs_realigned,
                realign_padding_bytes: realign_padding,
                loops_outlined,
                analysis_errors: lint_diags
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count(),
                analysis_warnings: lint_diags
                    .iter()
                    .filter(|d| d.severity == Severity::Warning)
                    .count(),
                indirect_sites_bounded: indirect_bounded,
                indirect_sites_unbounded: indirect_unbounded,
                coverage_percent: coverage,
                certified_regions: cert_out
                    .certificates
                    .iter()
                    .filter(|c| c.is_precise())
                    .count(),
                certificate_warnings: cert_out.diags.len(),
                modref_rounds: cert_out.rounds,
            },
            certificates: cert_out.certificates,
        };

        Ok(CompiledApp {
            original,
            mobile: module,
            server,
            plan,
            config: self.config.clone(),
            profile: prof,
        })
    }
}

fn severity_lane(s: Severity) -> DiagLane {
    match s {
        Severity::Error => DiagLane::Error,
        Severity::Warning => DiagLane::Warning,
        Severity::Info => DiagLane::Info,
    }
}

fn mark_unselected(
    estimates: &mut [EstimateRow],
    prof: &ProfileData,
    func: FuncId,
    header: offload_ir::BlockId,
) {
    if let Some(stats) = prof.get(&RegionKey::Loop { func, header }) {
        if let Some(row) = estimates.iter_mut().find(|r| r.name == stats.name) {
            row.selected = false;
        }
    }
}

/// `true` if `func` is only reachable through some selected function, so a
/// loop inside it is already covered by offloading that function.
fn covered_by_selected_fn(module: &Module, selected: &BTreeSet<FuncId>, func: FuncId) -> bool {
    if selected.is_empty() {
        return false;
    }
    let cg = CallGraph::build(module);
    let covered: BTreeSet<FuncId> =
        cg.reachable_from(&selected.iter().copied().collect::<Vec<_>>());
    covered.contains(&func)
}

/// Coverage (Table 4): share of profiled cycles spent inside selected
/// targets, taking the best-covering selected row.
fn coverage_percent(prof: &ProfileData, estimates: &[EstimateRow]) -> f64 {
    let total = prof.total_cycles as f64;
    if total == 0.0 {
        return 0.0;
    }
    let mut covered = 0.0f64;
    for row in estimates.iter().filter(|r| r.selected) {
        covered += row.exec_time_s;
    }
    let total_s = total / prof.clock_hz as f64;
    (covered / total_s * 100.0).min(100.0)
}

/// A fully compiled, offloading-enabled application.
#[derive(Debug)]
pub struct CompiledApp {
    /// The untouched input module (the baseline the paper normalizes to).
    pub original: Module,
    /// The mobile partition (whole program with offloading dispatchers).
    pub mobile: Module,
    /// The server partition (listen loop + offload targets).
    pub server: Module,
    /// What the compiler decided.
    pub plan: OffloadPlan,
    /// Compile-time configuration (devices, estimator inputs).
    pub config: CompileConfig,
    /// The profiling run's data.
    pub profile: ProfileData,
}

impl CompiledApp {
    /// Run the *original* program locally on the mobile device.
    ///
    /// # Errors
    ///
    /// Simulated-execution failures.
    pub fn run_local(&self, input: &WorkloadInput) -> Result<RunReport, OffloadError> {
        crate::runtime::run_local(self, input)
    }

    /// Run the partitioned program with the offload runtime.
    ///
    /// # Errors
    ///
    /// Simulated-execution failures.
    pub fn run_offloaded(
        &self,
        input: &WorkloadInput,
        session: &SessionConfig,
    ) -> Result<RunReport, OffloadError> {
        crate::runtime::run_offloaded(self, input, session)
    }

    /// Run the partitioned program with the offload runtime, streaming
    /// session events into `obs`.
    ///
    /// # Errors
    ///
    /// Simulated-execution failures.
    pub fn run_offloaded_traced(
        &self,
        input: &WorkloadInput,
        session: &SessionConfig,
        obs: &mut dyn Collector,
    ) -> Result<RunReport, OffloadError> {
        crate::runtime::run_offloaded_traced(self, input, session, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHESS: &str = "
        int maxDepth;
        double getAITurn() {
            int i; int j; double s = 0.0;
            for (i = 0; i < maxDepth * 1000; i++)
                for (j = 0; j < 8; j++)
                    s += (double)((i ^ j) % 13) * 0.25;
            printf(\"%.2f\\n\", s);
            return s;
        }
        int getPlayerTurn() { int mv; scanf(\"%d\", &mv); return mv; }
        int main() {
            scanf(\"%d\", &maxDepth);
            int turns = 0;
            while (turns < 3) {
                int p = getPlayerTurn();
                double s = getAITurn();
                if (p < 0) break;
                turns++;
            }
            return 0;
        }";

    fn chess_input() -> WorkloadInput {
        WorkloadInput::from_stdin("30\n1\n2\n3\n")
    }

    #[test]
    fn chess_selects_get_ai_turn() {
        let app = Offloader::new()
            .compile_source(CHESS, "chess", &chess_input())
            .unwrap();
        assert!(
            app.plan.task_by_name("getAITurn").is_some(),
            "targets: {:?}",
            app.plan.tasks.iter().map(|t| &t.name).collect::<Vec<_>>()
        );
        // The interactive functions must not be targets.
        assert!(app.plan.task_by_name("getPlayerTurn").is_none());
        assert!(app.plan.task_by_name("main").is_none());
        // Table-3-shaped estimate rows exist, with the filter verdicts.
        let rows = &app.plan.estimates;
        assert!(rows.iter().any(|r| r.name == "getAITurn" && r.selected));
        assert!(rows
            .iter()
            .any(|r| r.name == "getPlayerTurn" && r.machine_specific));
        assert!(app.plan.stats.coverage_percent > 50.0);
    }

    #[test]
    fn hot_loop_in_tainted_main_is_outlined() {
        let src = "
            int main() {
                int n; scanf(\"%d\", &n);
                int i; long acc = 0;
                for (i = 0; i < n * 10000; i++) acc += (i * 7) % 31;
                printf(\"%d\\n\", (int)(acc % 1000));
                return 0;
            }";
        let app = Offloader::new()
            .compile_source(src, "loopy", &WorkloadInput::from_stdin("50\n"))
            .unwrap();
        assert_eq!(app.plan.stats.loops_outlined, 1);
        assert!(app.plan.tasks.iter().any(|t| t.name.contains("main_loop")));
    }

    #[test]
    fn modules_verify_and_server_strips_mobile_code() {
        let app = Offloader::new()
            .compile_source(CHESS, "chess", &chess_input())
            .unwrap();
        let gpt = app.server.function_by_name("getPlayerTurn").unwrap();
        assert!(app.server.function(gpt).is_declaration());
        assert!(app.plan.stats.removed_server_functions > 0);
        assert!(app.plan.stats.unified_globals > 0);
    }

    #[test]
    fn cold_programs_produce_no_targets() {
        let app = Offloader::new()
            .compile_source(
                "int main() { printf(\"hi\\n\"); return 0; }",
                "tiny",
                &WorkloadInput::default(),
            )
            .unwrap();
        assert!(app.plan.tasks.is_empty());
    }

    #[test]
    fn traced_compile_emits_balanced_phase_spans() {
        let mut obs = offload_obs::TraceCollector::new();
        let app = Offloader::new()
            .compile_source_traced(CHESS, "chess", &chess_input(), &mut obs)
            .unwrap();
        assert!(app.plan.task_by_name("getAITurn").is_some());
        let recs = obs.records();
        for phase in CompilePhase::ALL {
            let begins = recs
                .iter()
                .filter(|r| r.kind == EventKind::Begin(Span::Compile(phase)))
                .count();
            let ends = recs
                .iter()
                .filter(|r| r.kind == EventKind::End(Span::Compile(phase)))
                .count();
            assert_eq!((begins, ends), (1, 1), "phase {}", phase.name());
        }
        // Ordinal timestamps strictly increase along the compile lane.
        assert!(recs.windows(2).all(|w| w[0].ts_s < w[1].ts_s));
    }

    #[test]
    fn per_invocation_time_and_prefetch_pages_present() {
        let app = Offloader::new()
            .compile_source(CHESS, "chess", &chess_input())
            .unwrap();
        let t = app.plan.task_by_name("getAITurn").unwrap();
        assert!(t.tm_per_invocation_s > 0.0);
        assert!(!t.prefetch_pages.is_empty());
        assert!(t.mem_bytes > 0);
    }
}
