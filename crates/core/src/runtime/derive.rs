//! Derive the evaluation artifacts from the observability event stream.
//!
//! The session accounts the Fig. 7 breakdown, the Fig. 8 power timeline
//! and the `RunReport` counters *while it runs*; every accumulation site
//! also emits exactly one typed event carrying the identical value. This
//! module replays those events with the same arithmetic in the same
//! order, so the derived artifacts are **bit-identical** to the legacy
//! ones — which is what [`check_reconciliation`] asserts, both in the
//! reconciliation tests and (in debug builds) after every traced run.
//!
//! The invariants this encodes:
//!
//! * cycle counts are `u64` sums of per-interval deltas — exact;
//! * per-lane seconds (`communication_s`, `remote_io_s`,
//!   `decompress`) are f64 sums of per-event durations, added one at a
//!   time in stream order — the session accumulates them the same way;
//! * the power timeline replays through [`PowerTimeline::push`] with the
//!   recorded durations, reproducing `total_seconds` and `energy_mj`
//!   to the last bit.

use offload_machine::power::{PowerState, PowerTimeline};
use offload_obs::{EventKind, PowerLane, Record, Span};

use crate::config::SessionConfig;
use crate::runtime::report::{OverheadBreakdown, RunReport};

/// Map an obs power lane back onto the machine power state.
fn lane_state(lane: PowerLane) -> PowerState {
    match lane {
        PowerLane::Idle => PowerState::Idle,
        PowerLane::Compute => PowerState::Compute,
        PowerLane::Waiting => PowerState::Waiting,
        PowerLane::Receive => PowerState::Receive,
        PowerLane::Transmit => PowerState::Transmit,
    }
}

/// Everything [`derive_run`] reconstructs from an event stream.
#[derive(Debug, Clone, Default)]
pub struct DerivedRun {
    /// The Fig. 7 breakdown, rebuilt from cycle/frame/compression events.
    pub breakdown: OverheadBreakdown,
    /// The Fig. 8 power timeline, replayed from `Power` events.
    pub timeline: PowerTimeline,
    /// Wall clock of the replayed timeline.
    pub total_seconds: f64,
    /// Energy of the replayed timeline under the mobile power spec.
    pub energy_mj: f64,
    /// Times a dispatcher consulted the estimator.
    pub offload_attempts: u64,
    /// Offload spans actually opened.
    pub offloads_performed: u64,
    /// Estimator refusals.
    pub offloads_refused: u64,
    /// Copy-on-demand faults serviced over the network.
    pub demand_page_fetches: u64,
    /// Pages shipped by initialization prefetch.
    pub prefetched_pages: u64,
    /// Pages pushed speculatively by the streaming predictor.
    pub pages_streamed: u64,
    /// Faults that landed on an in-flight streamed page.
    pub stream_hits: u64,
    /// Streamed pages never touched by the server.
    pub stream_wasted_pages: u64,
    /// Estimated stall seconds the stream hits avoided.
    pub stall_s_saved: f64,
    /// Dirty pages written back at finalization.
    pub dirty_pages_written_back: u64,
    /// Function-pointer translations.
    pub fn_map_translations: u64,
    /// Remote I/O operations.
    pub remote_io_calls: u64,
    /// Faults validated by the certificate oracle.
    pub oracle_faults_checked: u64,
    /// Dirty pages validated by the certificate oracle.
    pub oracle_dirty_checked: u64,
    /// Baseline snapshots skipped under the certified write filter.
    pub baseline_snapshots_skipped: u64,
}

/// Rebuild the run artifacts from `records` under `cfg`'s machine specs.
#[allow(clippy::cast_precision_loss)]
pub fn derive_run(records: &[Record], cfg: &SessionConfig) -> DerivedRun {
    let mut d = DerivedRun::default();
    let mut mobile_cycles: u64 = 0;
    let mut server_cycles: u64 = 0;
    let mut fn_map_cycles: u64 = 0;
    let mut comm_s = 0.0f64;
    let mut remote_io_s = 0.0f64;
    let mut decompress_s = 0.0f64;

    for rec in records {
        match rec.kind {
            EventKind::MobileCompute { cycles } => mobile_cycles += cycles,
            EventKind::ServerCompute { cycles } => server_cycles += cycles,
            EventKind::FnPtrTranslate { cycles } => {
                fn_map_cycles += cycles;
                d.fn_map_translations += 1;
            }
            EventKind::Frame {
                duration_s, lane, ..
            } => match lane {
                offload_obs::CostLane::Comm => comm_s += duration_s,
                offload_obs::CostLane::RemoteIo => remote_io_s += duration_s,
                // Streamed frames occupy the link concurrently with
                // server compute; no stall lane is charged. The residual
                // a fault actually waits arrives via `StreamHit`.
                offload_obs::CostLane::Stream => {}
            },
            EventKind::StreamHit {
                residual_s,
                saved_s,
                ..
            } => {
                comm_s += residual_s;
                d.stall_s_saved += saved_s;
                d.stream_hits += 1;
            }
            EventKind::PrefetchPredict { .. } => d.pages_streamed += 1,
            EventKind::StreamWaste { pages, .. } => d.stream_wasted_pages += pages,
            EventKind::Compression {
                decompress_s: dec, ..
            } => decompress_s += dec,
            EventKind::Power { state, duration_s } => {
                d.timeline.push(lane_state(state), duration_s);
            }
            EventKind::OffloadDecision { accepted, .. } => {
                d.offload_attempts += 1;
                if !accepted {
                    d.offloads_refused += 1;
                }
            }
            EventKind::Begin(Span::Offload { .. }) => d.offloads_performed += 1,
            EventKind::DemandFault { .. } => d.demand_page_fetches += 1,
            EventKind::PrefetchBatch { pages, .. } => d.prefetched_pages += pages,
            EventKind::DirtyWriteBack { pages, .. } => d.dirty_pages_written_back += pages,
            EventKind::RemoteIo { .. } => d.remote_io_calls += 1,
            EventKind::OracleCheck {
                faults_checked,
                dirty_checked,
                baseline_skipped,
                ..
            } => {
                d.oracle_faults_checked += u64::from(faults_checked);
                d.oracle_dirty_checked += u64::from(dirty_checked);
                d.baseline_snapshots_skipped += u64::from(baseline_skipped);
            }
            // DeltaWriteBack is informational: the raw/wire totals and the
            // page count still flow through Frame and DirtyWriteBack.
            // LaneGrant is scheduler-side (evloop) occupancy; it never
            // appears in a per-session trace and carries no accounting.
            EventKind::Begin(_)
            | EventKind::End(_)
            | EventKind::BatchFlush { .. }
            | EventKind::DeltaWriteBack { .. }
            | EventKind::QueueDepth { .. }
            | EventKind::AnalysisDiagnostic { .. }
            | EventKind::AnalysisVerdicts { .. }
            | EventKind::Certificate { .. }
            | EventKind::LaneGrant { .. } => {}
        }
    }

    // The exact expression shapes of `run_offloaded_traced`'s epilogue —
    // do not "simplify"; bit-identity depends on them.
    let mobile_hz = cfg.mobile.clock_hz as f64;
    let server_hz = cfg.server.clock_hz as f64;
    let fn_map_s = fn_map_cycles as f64 / server_hz;
    d.breakdown = OverheadBreakdown {
        mobile_compute_s: mobile_cycles as f64 / mobile_hz + decompress_s,
        server_compute_s: (server_cycles as f64 / server_hz - fn_map_s).max(0.0),
        fn_ptr_translation_s: fn_map_s,
        remote_io_s,
        communication_s: comm_s,
    };
    d.total_seconds = d.timeline.total_seconds();
    d.energy_mj = d.timeline.energy_mj(&cfg.mobile.power);
    d
}

/// Assert that a derived run and a session-produced report agree — the
/// f64 lanes bit-for-bit, the counters exactly.
///
/// # Errors
///
/// Returns a description of the first disagreement.
pub fn check_reconciliation(
    records: &[Record],
    report: &RunReport,
    cfg: &SessionConfig,
) -> Result<(), String> {
    let d = derive_run(records, cfg);
    let bits = |name: &str, derived: f64, legacy: f64| -> Result<(), String> {
        if derived.to_bits() == legacy.to_bits() {
            Ok(())
        } else {
            Err(format!(
                "{name}: derived {derived:.17e} != report {legacy:.17e}"
            ))
        }
    };
    bits(
        "mobile_compute_s",
        d.breakdown.mobile_compute_s,
        report.breakdown.mobile_compute_s,
    )?;
    bits(
        "server_compute_s",
        d.breakdown.server_compute_s,
        report.breakdown.server_compute_s,
    )?;
    bits(
        "fn_ptr_translation_s",
        d.breakdown.fn_ptr_translation_s,
        report.breakdown.fn_ptr_translation_s,
    )?;
    bits(
        "remote_io_s",
        d.breakdown.remote_io_s,
        report.breakdown.remote_io_s,
    )?;
    bits(
        "communication_s",
        d.breakdown.communication_s,
        report.breakdown.communication_s,
    )?;
    bits("total_seconds", d.total_seconds, report.total_seconds)?;
    bits("energy_mj", d.energy_mj, report.energy_mj)?;
    bits("stall_s_saved", d.stall_s_saved, report.stall_s_saved)?;
    let count = |name: &str, derived: u64, legacy: u64| -> Result<(), String> {
        if derived == legacy {
            Ok(())
        } else {
            Err(format!("{name}: derived {derived} != report {legacy}"))
        }
    };
    count(
        "offload_attempts",
        d.offload_attempts,
        report.offload_attempts,
    )?;
    count(
        "offloads_performed",
        d.offloads_performed,
        report.offloads_performed,
    )?;
    count(
        "offloads_refused",
        d.offloads_refused,
        report.offloads_refused,
    )?;
    count(
        "demand_page_fetches",
        d.demand_page_fetches,
        report.demand_page_fetches,
    )?;
    count(
        "prefetched_pages",
        d.prefetched_pages,
        report.prefetched_pages,
    )?;
    count("pages_streamed", d.pages_streamed, report.pages_streamed)?;
    count("stream_hits", d.stream_hits, report.stream_hits)?;
    count(
        "stream_wasted_pages",
        d.stream_wasted_pages,
        report.stream_wasted_pages,
    )?;
    count(
        "dirty_pages_written_back",
        d.dirty_pages_written_back,
        report.dirty_pages_written_back,
    )?;
    count(
        "fn_map_translations",
        d.fn_map_translations,
        report.fn_map_translations,
    )?;
    count("remote_io_calls", d.remote_io_calls, report.remote_io_calls)?;
    count(
        "oracle_faults_checked",
        d.oracle_faults_checked,
        report.oracle_faults_checked,
    )?;
    count(
        "oracle_dirty_checked",
        d.oracle_dirty_checked,
        report.oracle_dirty_checked,
    )?;
    count(
        "baseline_snapshots_skipped",
        d.baseline_snapshots_skipped,
        report.baseline_snapshots_skipped,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_obs::{CostLane, Dir, FrameKind};

    #[test]
    fn empty_stream_derives_empty_run() {
        let d = derive_run(&[], &SessionConfig::fast_network());
        assert_eq!(d.total_seconds, 0.0);
        assert_eq!(d.offload_attempts, 0);
        assert_eq!(d.breakdown.total(), 0.0);
    }

    #[test]
    fn synthetic_stream_reconstructs_lanes() {
        let cfg = SessionConfig::fast_network();
        let recs = vec![
            Record {
                ts_s: 0.0,
                kind: EventKind::MobileCompute { cycles: 1_000_000 },
            },
            Record {
                ts_s: 0.0,
                kind: EventKind::Power {
                    state: PowerLane::Compute,
                    duration_s: 0.5,
                },
            },
            Record {
                ts_s: 0.5,
                kind: EventKind::Frame {
                    kind: FrameKind::OffloadRequest,
                    dir: Dir::Up,
                    raw_bytes: 100,
                    wire_bytes: 100,
                    duration_s: 0.25,
                    lane: CostLane::Comm,
                },
            },
            Record {
                ts_s: 0.5,
                kind: EventKind::Power {
                    state: PowerLane::Transmit,
                    duration_s: 0.25,
                },
            },
            Record {
                ts_s: 0.75,
                kind: EventKind::ServerCompute { cycles: 3_000_000 },
            },
            Record {
                ts_s: 0.75,
                kind: EventKind::FnPtrTranslate { cycles: 1000 },
            },
        ];
        let d = derive_run(&recs, &cfg);
        assert!((d.breakdown.communication_s - 0.25).abs() < 1e-15);
        assert!((d.total_seconds - 0.75).abs() < 1e-15);
        assert_eq!(d.fn_map_translations, 1);
        let expect_fnmap = 1000.0 / cfg.server.clock_hz as f64;
        assert!((d.breakdown.fn_ptr_translation_s - expect_fnmap).abs() < 1e-18);
    }

    #[test]
    fn reconciliation_flags_mismatches() {
        let cfg = SessionConfig::fast_network();
        // energy_mj: an empty timeline sums to IEEE's additive identity
        // -0.0 (both in the session and here), not the default +0.0.
        let report = RunReport {
            offload_attempts: 2,
            energy_mj: -0.0,
            ..Default::default()
        };
        let err = check_reconciliation(&[], &report, &cfg).unwrap_err();
        assert!(err.contains("offload_attempts"), "{err}");
    }
}
