//! Bring your own program: write MiniC, provide inputs, inspect what the
//! compiler decided, and run it under several networks — the workflow a
//! downstream user of the library follows.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use native_offloader::{Offloader, SessionConfig, WorkloadInput};

/// An image-filter-style workload: reads a "photo" from the (mobile)
/// filesystem, sharpens it in a heavy loop, and writes the result back —
/// exercising remote file I/O in both directions when offloaded.
const PROGRAM: &str = r#"
char img[16384];
char out[16384];

long sharpen(int rounds) {
    int r; int i;
    long acc = 0;
    int fd = fopen("photo.raw", "r");
    fread(img, 1, 16384, fd);
    fclose(fd);
    for (r = 0; r < rounds; r++) {
        for (i = 1; i < 16383; i++) {
            int v = img[i] * 3 - img[i - 1] - img[i + 1];
            if (v < 0) v = 0;
            if (v > 255) v = 255;
            out[i] = (char)v;
            acc += v;
        }
    }
    int ofd = fopen("sharp.raw", "w");
    fwrite(out, 1, 16384, ofd);
    fclose(ofd);
    return acc;
}

int main() {
    int rounds;
    scanf("%d", &rounds);
    printf("sharpened: %d\n", (int)(sharpen(rounds) % 1000000));
    return 0;
}
"#;

fn photo() -> Vec<u8> {
    (0..16384u32).map(|i| ((i * 7) % 251) as u8).collect()
}

fn main() {
    let profile_input = WorkloadInput::from_stdin("40\n").with_file("photo.raw", photo());
    let app = Offloader::new()
        .compile_source(PROGRAM, "sharpen", &profile_input)
        .expect("compiles");

    println!("== compiler decisions ==");
    println!(
        "targets:          {:?}",
        app.plan.tasks.iter().map(|t| &t.name).collect::<Vec<_>>()
    );
    println!("remote I/O sites: {}", app.plan.stats.remote_io_sites);
    println!(
        "unified globals:  {}/{}",
        app.plan.stats.unified_globals, app.plan.stats.total_globals
    );
    println!("coverage:         {:.1}%", app.plan.stats.coverage_percent);

    let input = WorkloadInput::from_stdin("90\n").with_file("photo.raw", photo());
    let local = app.run_local(&input).expect("local");
    println!("\n== runs ==");
    println!(
        "local:        {:>8.2} ms  {:>8.1} mJ",
        local.total_seconds * 1e3,
        local.energy_mj
    );

    for (label, cfg) in [
        ("slow 802.11n", SessionConfig::slow_network()),
        ("fast 802.11ac", SessionConfig::fast_network()),
        ("ideal link", SessionConfig::ideal_network()),
    ] {
        let r = app.run_offloaded(&input, &cfg).expect("offloaded");
        assert_eq!(r.console, local.console);
        println!(
            "{label:<13} {:>8.2} ms  {:>8.1} mJ  (offloaded {} / refused {}, remote I/O calls {})",
            r.total_seconds * 1e3,
            r.energy_mj,
            r.offloads_performed,
            r.offloads_refused,
            r.remote_io_calls
        );
    }
}
