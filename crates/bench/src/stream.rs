//! `reproduce stream` — the speculative page-streaming benchmark behind
//! `BENCH_pr5.json`.
//!
//! Every suite workload runs in a **fault-heavy** configuration (offload
//! forced, initialization prefetch off, so copy-on-demand carries the
//! whole working set) on both paper networks, once per predictor mode.
//! The headline metric is **demand-stall seconds**: the simulated time
//! the server VM sat stalled on page arrivals — the sum over the trace
//! of every `DemandFault` duration plus every `StreamHit` residual.
//! Streaming overlaps those transfers with server compute, so the stall
//! shrinks while program results stay byte-identical (asserted here per
//! run and suite-wide in `tests/stream_equivalence.rs`).
//!
//! All numbers are deterministic simulated time, so CI gates on them:
//! the committed artifact must show a >= 25% stall reduction under the
//! history predictor on at least 6 of the 18 workloads, and speculative
//! wire waste must stay <= 10% of total wire traffic on every workload.

use std::fmt::Write as _;
use std::sync::Arc;

use native_offloader::{PageHistory, RunReport, SessionConfig, StreamMode};
use offload_net::Link;
use offload_obs::{EventKind, Record, TraceCollector};

use crate::farm::suite;

/// The two paper networks the sweep covers.
#[must_use]
pub fn links() -> Vec<(&'static str, Link)> {
    vec![
        ("802.11n", Link::wifi_802_11n()),
        ("802.11ac", Link::wifi_802_11ac()),
    ]
}

/// Fault-heavy session config: offload forced, prefetch off, so the
/// streaming predictor carries the working set.
#[must_use]
pub fn fault_heavy(
    link: Link,
    mode: StreamMode,
    history: Option<Arc<PageHistory>>,
) -> SessionConfig {
    let mut cfg = SessionConfig::with_link(link);
    cfg.dynamic_estimation = false;
    cfg.prefetch = false;
    cfg.stream_mode = mode;
    cfg.page_history = history;
    cfg
}

/// One (workload, link, mode) measurement.
#[derive(Debug, Clone)]
pub struct ModeRow {
    /// Predictor mode.
    pub mode: StreamMode,
    /// Whole-run simulated seconds.
    pub total_s: f64,
    /// Demand-stall seconds: Σ `DemandFault.duration_s` + Σ
    /// `StreamHit.residual_s` over the trace.
    pub stall_s: f64,
    /// Pages pushed speculatively.
    pub streamed: u64,
    /// Faults absorbed by an in-flight page.
    pub hits: u64,
    /// Streamed pages never touched.
    pub wasted: u64,
    /// Wasted wire bytes / total wire bytes (up + down).
    pub waste_wire_frac: f64,
}

/// One workload × link: all four predictor modes.
#[derive(Debug, Clone)]
pub struct StreamRow {
    /// Workload name.
    pub workload: String,
    /// Link name.
    pub link: &'static str,
    /// `off`, `static`, `stride`, `history` in that order.
    pub modes: Vec<ModeRow>,
}

impl StreamRow {
    /// The mode row for `mode`, if measured.
    #[must_use]
    pub fn mode(&self, mode: StreamMode) -> Option<&ModeRow> {
        self.modes.iter().find(|m| m.mode == mode)
    }

    /// Percent reduction of demand-stall seconds, history vs off
    /// (0 when the baseline had no stall).
    #[must_use]
    pub fn stall_reduction_pct(&self) -> f64 {
        let (Some(off), Some(hist)) = (self.mode(StreamMode::Off), self.mode(StreamMode::History))
        else {
            return 0.0;
        };
        if off.stall_s <= 0.0 {
            return 0.0;
        }
        (1.0 - hist.stall_s / off.stall_s) * 100.0
    }
}

/// Demand-stall seconds out of a trace: every synchronous fault's full
/// round trip plus every stream hit's residual arrival wait.
#[must_use]
pub fn demand_stall_seconds(records: &[Record]) -> f64 {
    let mut stall = 0.0;
    for r in records {
        match r.kind {
            EventKind::DemandFault { duration_s, .. } => stall += duration_s,
            EventKind::StreamHit { residual_s, .. } => stall += residual_s,
            _ => {}
        }
    }
    stall
}

/// Wasted stream wire bytes out of a trace.
#[must_use]
pub fn waste_wire_bytes(records: &[Record]) -> u64 {
    records
        .iter()
        .map(|r| match r.kind {
            EventKind::StreamWaste { wire_bytes, .. } => wire_bytes,
            _ => 0,
        })
        .sum()
}

fn mode_row(rep: &RunReport, records: &[Record], mode: StreamMode) -> ModeRow {
    let wire_total = rep.upload.wire_bytes + rep.download.wire_bytes;
    let waste = waste_wire_bytes(records);
    ModeRow {
        mode,
        total_s: rep.total_seconds,
        stall_s: demand_stall_seconds(records),
        streamed: rep.pages_streamed,
        hits: rep.stream_hits,
        wasted: rep.stream_wasted_pages,
        waste_wire_frac: if wire_total == 0 {
            0.0
        } else {
            waste as f64 / wire_total as f64
        },
    }
}

/// Sweep the whole suite over both links and all predictor modes.
///
/// # Panics
///
/// If a session fails or a streamed run's program results diverge from
/// the synchronous baseline — correctness bugs, not benchmark noise.
#[must_use]
pub fn sweep() -> Vec<StreamRow> {
    let mut rows = Vec::new();
    for (name, app, input) in suite() {
        for (link_name, link) in links() {
            // The synchronous baseline doubles as the history trainer.
            let mut obs = TraceCollector::with_capacity(1 << 20);
            let base = app
                .run_offloaded_traced(
                    &input,
                    &fault_heavy(link.clone(), StreamMode::Off, None),
                    &mut obs,
                )
                .expect("synchronous run");
            assert_eq!(obs.dropped(), 0, "{name}: trace ring too small");
            let records = obs.records();
            let history = Arc::new(PageHistory::from_records(&records));
            let mut modes = vec![mode_row(&base, &records, StreamMode::Off)];
            for mode in [StreamMode::Static, StreamMode::Stride, StreamMode::History] {
                let mut sobs = TraceCollector::with_capacity(1 << 20);
                let rep = app
                    .run_offloaded_traced(
                        &input,
                        &fault_heavy(link.clone(), mode, Some(history.clone())),
                        &mut sobs,
                    )
                    .expect("streamed run");
                assert_eq!(
                    rep.console,
                    base.console,
                    "{name} ({link_name}, {}): results diverged",
                    mode.name()
                );
                assert_eq!(rep.exit_code, base.exit_code, "{name}: exit diverged");
                modes.push(mode_row(&rep, &sobs.records(), mode));
            }
            rows.push(StreamRow {
                workload: name.clone(),
                link: link_name,
                modes,
            });
        }
    }
    rows
}

/// Per-workload best (over links) history-mode stall reduction, and the
/// count meeting the 25% bar.
#[must_use]
pub fn reduction_summary(rows: &[StreamRow]) -> (usize, usize) {
    let mut workloads: Vec<&str> = rows.iter().map(|r| r.workload.as_str()).collect();
    workloads.dedup();
    let reduced = workloads
        .iter()
        .filter(|w| {
            rows.iter()
                .filter(|r| r.workload == **w)
                .map(StreamRow::stall_reduction_pct)
                .fold(0.0f64, f64::max)
                >= 25.0
        })
        .count();
    (workloads.len(), reduced)
}

/// The largest waste fraction anywhere in the sweep.
#[must_use]
pub fn max_waste_frac(rows: &[StreamRow]) -> f64 {
    rows.iter()
        .flat_map(|r| r.modes.iter())
        .map(|m| m.waste_wire_frac)
        .fold(0.0f64, f64::max)
}

/// Render the artifact as pretty-printed JSON (hand-rolled — the
/// workspace is dependency-free by design).
#[must_use]
pub fn to_json(rows: &[StreamRow]) -> String {
    let (workloads, reduced) = reduction_summary(rows);
    let chess_slow = rows
        .iter()
        .find(|r| r.workload == "chess" && r.link == "802.11n");
    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"bench_pr5.v1\",\n");
    j.push_str(
        "  \"units\": \"total_s/stall_s are simulated seconds (deterministic, gateable); stall_s = demand-fault round trips + stream-hit residuals\",\n",
    );
    j.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"link\": \"{}\", \"stall_reduction_pct\": {:.2}, \"modes\": [",
            r.workload,
            r.link,
            r.stall_reduction_pct()
        );
        for (k, m) in r.modes.iter().enumerate() {
            let _ = write!(
                j,
                "      {{\"mode\": \"{}\", \"total_s\": {:.6}, \"stall_s\": {:.6}, \"streamed\": {}, \"hits\": {}, \"wasted\": {}, \"waste_wire_frac\": {:.4}}}",
                m.mode.name(),
                m.total_s,
                m.stall_s,
                m.streamed,
                m.hits,
                m.wasted,
                m.waste_wire_frac
            );
            j.push_str(if k + 1 == r.modes.len() { "\n" } else { ",\n" });
        }
        j.push_str("    ]}");
        j.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    let (off_stall, hist_stall) = chess_slow.map_or((0.0, 0.0), |r| {
        (
            r.mode(StreamMode::Off).map_or(0.0, |m| m.stall_s),
            r.mode(StreamMode::History).map_or(0.0, |m| m.stall_s),
        )
    });
    let _ = write!(
        j,
        "  ],\n  \"summary\": {{\"workloads\": {workloads}, \"reduced_ge_25pct\": {reduced}, \"max_waste_frac\": {:.4}, \"chess_slow_stall_off_s\": {off_stall:.6}, \"chess_slow_stall_history_s\": {hist_stall:.6}}}\n}}\n",
        max_waste_frac(rows)
    );
    j
}

/// Pull one `"key": <number>` out of `text` starting at `from`.
fn scan_f64(text: &str, from: usize, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text[from..].find(&needle)? + from + needle.len();
    let rest = text[at..].trim_start();
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Committed summary numbers from a `bench_pr5.v1` artifact:
/// `(reduced_ge_25pct, max_waste_frac, chess_off_stall, chess_history_stall)`.
///
/// # Errors
///
/// Returns a message naming the first missing field.
pub fn parse_committed_summary(text: &str) -> Result<(f64, f64, f64, f64), String> {
    let at = text
        .find("\"summary\":")
        .ok_or_else(|| "no summary in committed stream bench".to_string())?;
    let get = |key: &str| {
        scan_f64(text, at, key).ok_or_else(|| format!("summary lacks {key} in committed bench"))
    };
    Ok((
        get("reduced_ge_25pct")?,
        get("max_waste_frac")?,
        get("chess_slow_stall_off_s")?,
        get("chess_slow_stall_history_s")?,
    ))
}

/// The `reproduce stream --check` gate: re-measure the chess workload on
/// the slow network and require its demand-stall seconds to be no worse
/// than the committed baseline (simulated time is deterministic, so a
/// small tolerance covers only JSON rounding).
///
/// # Errors
///
/// A message describing the regression or a parse failure.
pub fn check_against(committed: &str) -> Result<String, String> {
    let (_, _, committed_off, committed_hist) = parse_committed_summary(committed)?;
    let input = offload_workloads::chess::input(9, 2);
    let app = native_offloader::Offloader::new()
        .compile_source(offload_workloads::chess::SOURCE, "chess", &input)
        .map_err(|e| format!("chess failed to compile: {e}"))?;
    let mut obs = TraceCollector::with_capacity(1 << 20);
    let base = app
        .run_offloaded_traced(
            &input,
            &fault_heavy(Link::wifi_802_11n(), StreamMode::Off, None),
            &mut obs,
        )
        .map_err(|e| format!("chess synchronous run failed: {e}"))?;
    let records = obs.records();
    let off_stall = demand_stall_seconds(&records);
    let history = Arc::new(PageHistory::from_records(&records));
    let mut sobs = TraceCollector::with_capacity(1 << 20);
    let rep = app
        .run_offloaded_traced(
            &input,
            &fault_heavy(Link::wifi_802_11n(), StreamMode::History, Some(history)),
            &mut sobs,
        )
        .map_err(|e| format!("chess streamed run failed: {e}"))?;
    if rep.console != base.console {
        return Err("chess streamed results diverged from synchronous".to_string());
    }
    let hist_stall = demand_stall_seconds(&sobs.records());
    let tol = |x: f64| x * 1.01 + 1e-6;
    if hist_stall > tol(committed_hist) {
        return Err(format!(
            "chess history-mode demand stall regressed: {hist_stall:.6} s vs committed {committed_hist:.6} s"
        ));
    }
    if off_stall > tol(committed_off) {
        return Err(format!(
            "chess synchronous demand stall regressed: {off_stall:.6} s vs committed {committed_off:.6} s"
        ));
    }
    Ok(format!(
        "chess 802.11n stall {off_stall:.4} s sync -> {hist_stall:.4} s history (committed {committed_off:.4} -> {committed_hist:.4})"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<StreamRow> {
        let m = |mode: StreamMode, stall_s: f64, waste: f64| ModeRow {
            mode,
            total_s: stall_s * 3.0,
            stall_s,
            streamed: 10,
            hits: 8,
            wasted: 2,
            waste_wire_frac: waste,
        };
        vec![
            StreamRow {
                workload: "chess".into(),
                link: "802.11n",
                modes: vec![
                    m(StreamMode::Off, 2.0, 0.0),
                    m(StreamMode::History, 0.5, 0.04),
                ],
            },
            StreamRow {
                workload: "chess".into(),
                link: "802.11ac",
                modes: vec![
                    m(StreamMode::Off, 1.0, 0.0),
                    m(StreamMode::History, 0.9, 0.02),
                ],
            },
            StreamRow {
                workload: "gzip".into(),
                link: "802.11n",
                modes: vec![
                    m(StreamMode::Off, 1.0, 0.0),
                    m(StreamMode::History, 0.95, 0.01),
                ],
            },
            StreamRow {
                workload: "gzip".into(),
                link: "802.11ac",
                modes: vec![
                    m(StreamMode::Off, 0.0, 0.0),
                    m(StreamMode::History, 0.0, 0.0),
                ],
            },
        ]
    }

    #[test]
    fn reduction_counts_workloads_not_rows() {
        let rows = sample_rows();
        // chess: 75% on slow -> counted; gzip: 5% best -> not counted.
        assert_eq!(reduction_summary(&rows), (2, 1));
        assert!((max_waste_frac(&rows) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn zero_stall_baseline_reports_zero_reduction() {
        let rows = sample_rows();
        assert_eq!(rows[3].stall_reduction_pct(), 0.0);
        assert!((rows[0].stall_reduction_pct() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn json_roundtrips_through_the_checker_scanner() {
        let j = to_json(&sample_rows());
        let (reduced, waste, off, hist) = parse_committed_summary(&j).expect("parses");
        assert!((reduced - 1.0).abs() < 1e-9);
        assert!((waste - 0.04).abs() < 1e-9);
        assert!((off - 2.0).abs() < 1e-9);
        assert!((hist - 0.5).abs() < 1e-9);
        assert!(parse_committed_summary("{}").is_err());
    }

    /// The PR's streaming acceptance gates, against the committed
    /// artifact: at least a 25% stall reduction on at least 6 of the 18
    /// workloads under the history predictor, waste at most 10% of wire
    /// traffic everywhere, and the chess history stall strictly below
    /// its synchronous stall.
    #[test]
    fn committed_artifact_meets_the_streaming_gates() {
        let committed = include_str!("../../../BENCH_pr5.json");
        let (reduced, waste, off, hist) =
            parse_committed_summary(committed).expect("committed artifact parses");
        assert!(
            reduced >= 6.0,
            "only {reduced} of 18 workloads reduced stall by >= 25% (gate: 6)"
        );
        assert!(
            waste <= 0.10,
            "committed max wire waste {waste} above the 10% gate"
        );
        assert!(
            hist < off,
            "committed chess history stall {hist} not below synchronous {off}"
        );
    }
}
