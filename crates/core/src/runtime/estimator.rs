//! Dynamic performance estimation (§3.1, §4 "local execution").
//!
//! The compiler's static estimate only gates *code generation*; the real
//! offloading decision happens at run time with current conditions:
//! "unlike the static performance estimation ... the dynamic performance
//! estimation reflects the current network bandwidth, memory usage, and
//! target execution time information, so the Native Offloader runtime can
//! avoid offloading under unfavorable situations such as slow network
//! connection" — this is why Fig. 6 marks `164.gzip` and friends with `*`
//! (not offloaded) on the slow network.

use offload_net::Link;

use crate::compiler::estimate::{equation1, Estimate, EstimateInput};
use crate::plan::OffloadTask;

/// Decide whether to offload one invocation of `task` right now.
///
/// Uses the per-invocation profile numbers with the *live* link bandwidth
/// and device performance ratio.
pub fn decide(task: &OffloadTask, ratio: f64, link: &Link) -> (bool, Estimate) {
    decide_with_bandwidth(task, ratio, link.bandwidth_bps)
}

/// Like [`decide`], with an explicit bandwidth figure — used by the
/// adaptive estimator, which substitutes the *observed* effective
/// bandwidth (see [`bandwidth`](crate::runtime::bandwidth)).
pub fn decide_with_bandwidth(
    task: &OffloadTask,
    ratio: f64,
    bandwidth_bps: u64,
) -> (bool, Estimate) {
    let bandwidth = if bandwidth_bps == u64::MAX {
        // Ideal link: communication is free.
        return (
            true,
            Estimate {
                t_ideal_s: task.tm_per_invocation_s * (1.0 - 1.0 / ratio),
                t_comm_s: 0.0,
                t_gain_s: task.tm_per_invocation_s * (1.0 - 1.0 / ratio),
            },
        );
    } else {
        bandwidth_bps
    };
    let est = equation1(EstimateInput {
        tm_s: task.tm_per_invocation_s,
        invocations: 1,
        mem_bytes: task.mem_bytes,
        ratio,
        bandwidth_bps: bandwidth,
    });
    (est.profitable(), est)
}

/// Like [`decide_with_bandwidth`], folding a certified page footprint
/// into the wire-cost term: the region provably cannot transfer more
/// than `cert_bytes`, so the effective memory figure is the tighter of
/// the certificate and the profile. The certificate never *raises* the
/// figure — the profile reflects pages actually touched, which bounds
/// what a real invocation ships.
pub fn decide_certified(
    task: &OffloadTask,
    cert_bytes: u64,
    ratio: f64,
    bandwidth_bps: u64,
) -> (bool, Estimate) {
    if bandwidth_bps == u64::MAX {
        return decide_with_bandwidth(task, ratio, bandwidth_bps);
    }
    let est = equation1(EstimateInput {
        tm_s: task.tm_per_invocation_s,
        invocations: 1,
        mem_bytes: cert_bytes.min(task.mem_bytes),
        ratio,
        bandwidth_bps,
    });
    (est.profitable(), est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_ir::{FuncId, Type};

    fn task(tm_s: f64, mem_bytes: u64) -> OffloadTask {
        OffloadTask {
            id: 1,
            dispatcher: FuncId(0),
            local_func: FuncId(1),
            name: "t".into(),
            params: vec![],
            ret: Type::Void,
            tm_per_invocation_s: tm_s,
            mem_bytes,
            prefetch_pages: vec![],
        }
    }

    #[test]
    fn slow_network_refuses_traffic_heavy_tasks() {
        // A gzip-shaped task: 1 s of compute against a 20 MB footprint.
        // Slow link: Tc = 2·20 MB / 10 MB/s = 4 s  > 0.83 s gain → refuse.
        // Fast link: Tc = 2·20 MB / 62.5 MB/s = 0.64 s < gain → offload.
        let t = task(1.0, 20_000_000);
        let (slow, _) = decide(&t, 6.0, &Link::wifi_802_11n());
        let (fast, _) = decide(&t, 6.0, &Link::wifi_802_11ac());
        assert!(
            !slow,
            "gzip-shaped tasks must be refused on 802.11n (the Fig. 6 `*`)"
        );
        assert!(fast, "and accepted on 802.11ac");
    }

    #[test]
    fn compute_heavy_tasks_always_go() {
        let t = task(10.0, 1_000_000);
        assert!(decide(&t, 6.0, &Link::wifi_802_11n()).0);
        assert!(decide(&t, 6.0, &Link::wifi_802_11ac()).0);
    }

    #[test]
    fn certified_footprint_tightens_the_wire_term() {
        // gzip-shaped task: refused on 802.11n by the profile figure, but
        // a small certified footprint shrinks Tc below the gain.
        let t = task(1.0, 20_000_000);
        let link = Link::wifi_802_11n();
        assert!(!decide(&t, 6.0, &link).0);
        let (go, est) = decide_certified(&t, 64 * 4096, 6.0, link.bandwidth_bps);
        assert!(go, "certified footprint should flip the decision");
        assert!(est.t_comm_s < est.t_ideal_s);
        // A certificate looser than the profile changes nothing.
        let (go2, est2) = decide_certified(&t, u64::MAX, 6.0, link.bandwidth_bps);
        let (go3, est3) = decide_with_bandwidth(&t, 6.0, link.bandwidth_bps);
        assert_eq!(go2, go3);
        assert_eq!(est2.t_comm_s.to_bits(), est3.t_comm_s.to_bits());
    }

    #[test]
    fn ideal_link_always_goes() {
        let t = task(0.001, 1 << 30);
        let (go, est) = decide(&t, 6.0, &Link::ideal());
        assert!(go);
        assert_eq!(est.t_comm_s, 0.0);
    }
}
