//! Workloads for the Native Offloader reproduction.
//!
//! The paper evaluates 17 native C programs from SPEC CPU2000/CPU2006
//! (Table 4). SPEC sources and reference inputs are licensed material and
//! far too large to interpret, so each program is represented by a
//! **miniature**: a MiniC program engineered to match its SPEC
//! counterpart's *offload-relevant signature* —
//!
//! * the ratio of computation to communicated memory (which drives the
//!   Equation-1 decisions and the slow-network refusals),
//! * the number of target invocations (`458.sjeng` calls `think` per move;
//!   `188.ammp` has two targets),
//! * function-pointer use in the hot region (`445.gobmk`'s `commands`,
//!   `458.sjeng`'s `evalRoutines`, `464.h264ref`'s SAD table),
//! * remote-input behaviour (`300.twolf`, `445.gobmk`, `464.h264ref` read
//!   files inside the offloaded region).
//!
//! Inputs are scaled ~1000× down from SPEC so the whole suite simulates in
//! seconds; scaling compute and memory together preserves every Equation-1
//! ratio. Each [`WorkloadSpec`] carries the paper's published Table 4 row
//! ([`PaperRow`]) so the benchmark harness can print paper-vs-measured
//! side by side.
//!
//! # Example
//!
//! ```
//! let w = offload_workloads::by_short_name("hmmer").unwrap();
//! let app = w.compile().unwrap();
//! assert!(app.plan.task_by_name(w.paper.target).is_some());
//! ```

pub mod chess;
pub mod programs;
pub mod rng;

use native_offloader::{CompileConfig, CompiledApp, OffloadError, Offloader, WorkloadInput};

/// The published Table 4 row for one SPEC program (plus the Fig. 6 slow-
/// network refusal flag), used for paper-vs-measured reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Lines of code (thousands) of the SPEC program.
    pub loc_k: f64,
    /// Smartphone execution time with the evaluation input, seconds.
    pub exec_time_s: f64,
    /// Offloaded functions / total functions.
    pub offloaded_fns: (u32, u32),
    /// Referenced globals / total globals.
    pub referenced_gv: (u32, u32),
    /// Function-pointer uses.
    pub fn_ptr_uses: u32,
    /// The offloaded target's name.
    pub target: &'static str,
    /// Coverage of whole-program execution time, percent.
    pub coverage_pct: f64,
    /// Target invocations.
    pub invocations: u32,
    /// Communication traffic per invocation, MB.
    pub traffic_mb_per_inv: f64,
    /// `true` if Fig. 6 marks the program `*` (not offloaded) on the slow
    /// network.
    pub refused_on_slow: bool,
}

/// One workload: a MiniC miniature plus its paper row.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// SPEC-style name (`164.gzip`).
    pub name: &'static str,
    /// Short name (`gzip`).
    pub short: &'static str,
    /// What the program does.
    pub description: &'static str,
    /// MiniC source.
    pub source: &'static str,
    /// Input for the profiling run (the paper uses *different* inputs for
    /// profiling and evaluation).
    pub profile_input: fn() -> WorkloadInput,
    /// Input for the evaluation run.
    pub eval_input: fn() -> WorkloadInput,
    /// The offload target's name in *this* reproduction (paper loop
    /// targets like `main_for.cond` appear here as outlined-loop names).
    pub expected_target: &'static str,
    /// The paper's published numbers.
    pub paper: PaperRow,
}

impl WorkloadSpec {
    /// Compile this workload with the default configuration.
    ///
    /// # Errors
    ///
    /// Compilation or profiling failures.
    pub fn compile(&self) -> Result<CompiledApp, OffloadError> {
        self.compile_with(CompileConfig::default())
    }

    /// Compile with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Compilation or profiling failures.
    pub fn compile_with(&self, config: CompileConfig) -> Result<CompiledApp, OffloadError> {
        Offloader::with_config(config).compile_source(
            self.source,
            self.name,
            &(self.profile_input)(),
        )
    }
}

/// All 17 SPEC miniatures, in Table 4 order.
pub fn all() -> Vec<WorkloadSpec> {
    programs::all()
}

/// Look a workload up by its short name (`gzip`, `sjeng`, ...).
pub fn by_short_name(short: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|w| w.short == short)
}

/// Look a workload up by its SPEC name (`164.gzip`, ...).
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_has_all_17() {
        let names: Vec<&str> = super::all().iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 17);
        for expected in [
            "164.gzip",
            "175.vpr",
            "177.mesa",
            "179.art",
            "183.equake",
            "188.ammp",
            "300.twolf",
            "401.bzip2",
            "429.mcf",
            "433.milc",
            "445.gobmk",
            "456.hmmer",
            "458.sjeng",
            "462.libquantum",
            "464.h264ref",
            "470.lbm",
            "482.sphinx3",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn lookup_by_names() {
        assert!(super::by_short_name("gzip").is_some());
        assert!(super::by_name("458.sjeng").is_some());
        assert!(super::by_short_name("nope").is_none());
    }

    #[test]
    fn refusal_set_matches_section_5_1() {
        // §5.1: gzip, bzip2, mcf, sjeng and lbm are communication-heavy
        // and not offloaded on the slow network.
        let refused: Vec<&str> = super::all()
            .iter()
            .filter(|w| w.paper.refused_on_slow)
            .map(|w| w.short)
            .collect();
        assert_eq!(refused, vec!["gzip", "bzip2", "mcf", "sjeng", "lbm"]);
    }
}
