//! Sub-page delta records for page transfers.
//!
//! §4 batches and compresses the server→mobile write-back, but a dirty
//! page still costs a full 4 KiB on the wire even when the server touched
//! eight bytes of it. This codec diffs each page against a baseline and
//! encodes only the *changed byte runs* — offset, length, bytes — falling
//! back to the full page per-page whenever the runs would be larger (a
//! page rewritten wholesale gains nothing from diffing). The session uses
//! it in both directions: write-backs diff against the pre-offload
//! baseline (see `Memory::baseline_bytes`), while prefetch and demand
//! uploads diff against the implicit all-zero page a fresh server frame
//! starts as.
//!
//! Blob layout (all varints LEB128, shared with the frame codec):
//!
//! ```text
//! varint  page_count
//! per page:
//!   varint  page_number delta from the previous page (first is absolute)
//!   u8      tag: 0 = full page, 1 = runs
//!   full:   page_size raw bytes
//!   runs:   varint run_count
//!           per run: varint offset delta from end of previous run
//!                    varint len (>= 1)
//!                    len raw bytes
//! ```
//!
//! Nearby runs separated by fewer than [`MIN_GAP`] unchanged bytes are
//! coalesced: carrying a short stretch of unchanged bytes is cheaper
//! than another run header.

use crate::frame::{FrameError, Reader, Writer};

/// Unchanged-byte gaps shorter than this are swallowed into the
/// surrounding run (2 varint header bytes ≈ break-even at 2–3 bytes; 8
/// also keeps run counts low on scattered scalar writes).
pub const MIN_GAP: usize = 8;

/// Decoding or application failure (corrupt delta blob).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "delta error: {}", self.message)
    }
}

impl std::error::Error for DeltaError {}

fn err(m: impl Into<String>) -> DeltaError {
    DeltaError { message: m.into() }
}

impl From<FrameError> for DeltaError {
    fn from(e: FrameError) -> Self {
        err(e.message)
    }
}

/// One changed byte run within a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    /// Byte offset within the page.
    pub offset: usize,
    /// The new bytes at that offset.
    pub bytes: Vec<u8>,
}

/// How one page's new contents travel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PagePayload {
    /// The whole page (diff would not have been smaller, or no baseline
    /// was available).
    Full(Vec<u8>),
    /// Only the changed runs.
    Runs(Vec<Run>),
}

/// One page's delta record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageDelta {
    /// Page number.
    pub page: u64,
    /// The payload.
    pub payload: PagePayload,
}

/// Changed byte runs of `cur` relative to `base`, gaps under `min_gap`
/// coalesced. Empty when the slices are equal.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn diff(base: &[u8], cur: &[u8], min_gap: usize) -> Vec<Run> {
    assert_eq!(base.len(), cur.len(), "diff needs equal-length slices");
    let mut runs: Vec<Run> = Vec::new();
    let mut i = 0usize;
    while i < cur.len() {
        if base[i] == cur[i] {
            i += 1;
            continue;
        }
        let start = i;
        let mut end = i + 1; // exclusive end of the run being built
        let mut j = end;
        // Extend across changed bytes and short unchanged gaps.
        while j < cur.len() {
            if base[j] != cur[j] {
                end = j + 1;
                j = end;
            } else if j - end < min_gap {
                j += 1;
            } else {
                break;
            }
        }
        runs.push(Run {
            offset: start,
            bytes: cur[start..end].to_vec(),
        });
        i = j.max(end);
    }
    runs
}

/// Bytes a varint takes.
fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7).max(1)
}

/// Encoded size of a runs payload (tag + count + headers + bytes).
fn runs_encoded_len(runs: &[Run]) -> usize {
    let mut n = 1 + varint_len(runs.len() as u64);
    let mut prev_end = 0usize;
    for r in runs {
        n += varint_len((r.offset - prev_end) as u64);
        n += varint_len(r.bytes.len() as u64);
        n += r.bytes.len();
        prev_end = r.offset + r.bytes.len();
    }
    n
}

/// Build the delta record for one dirty page: diff against `base` when
/// one exists, fall back to the full page when diffing loses (or there is
/// nothing to diff against).
pub fn page_delta(page: u64, base: Option<&[u8]>, cur: &[u8], min_gap: usize) -> PageDelta {
    let payload = match base {
        Some(b) => {
            let runs = diff(b, cur, min_gap);
            // tag + page bytes is what Full costs.
            if runs_encoded_len(&runs) < 1 + cur.len() {
                PagePayload::Runs(runs)
            } else {
                PagePayload::Full(cur.to_vec())
            }
        }
        None => PagePayload::Full(cur.to_vec()),
    };
    PageDelta { page, payload }
}

/// Encode delta records into a blob. `page_size` fixes the byte length of
/// `Full` payloads (and bounds run extents on decode).
///
/// # Panics
///
/// Panics if a `Full` payload is not exactly `page_size` bytes or a run
/// extends past `page_size` (caller bug, not wire corruption).
pub fn encode(deltas: &[PageDelta], page_size: usize) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    w.varint(deltas.len() as u64);
    let mut prev_page = 0u64;
    for d in deltas {
        w.varint(d.page.wrapping_sub(prev_page));
        prev_page = d.page;
        match &d.payload {
            PagePayload::Full(bytes) => {
                assert_eq!(bytes.len(), page_size, "full payload must be one page");
                w.u8(0);
                w.0.extend_from_slice(bytes);
            }
            PagePayload::Runs(runs) => {
                w.u8(1);
                w.varint(runs.len() as u64);
                let mut prev_end = 0usize;
                for r in runs {
                    assert!(
                        r.offset >= prev_end && r.offset + r.bytes.len() <= page_size,
                        "runs must be sorted, disjoint and in-page"
                    );
                    assert!(!r.bytes.is_empty(), "empty run");
                    w.varint((r.offset - prev_end) as u64);
                    w.varint(r.bytes.len() as u64);
                    w.0.extend_from_slice(&r.bytes);
                    prev_end = r.offset + r.bytes.len();
                }
            }
        }
    }
    w.0
}

/// Decode a blob produced by [`encode`].
///
/// # Errors
///
/// Returns [`DeltaError`] on truncation, bad tags, or runs that escape
/// the page.
pub fn decode(blob: &[u8], page_size: usize) -> Result<Vec<PageDelta>, DeltaError> {
    let mut r = Reader(blob, 0);
    let count = r.varint()? as usize;
    // Each record costs at least 3 bytes; reject absurd counts early.
    if count > blob.len() {
        return Err(err(format!("implausible page count {count}")));
    }
    let mut out = Vec::with_capacity(count);
    let mut prev_page = 0u64;
    for _ in 0..count {
        prev_page = prev_page.wrapping_add(r.varint()?);
        let payload = match r.u8()? {
            0 => PagePayload::Full(r.take(page_size)?.to_vec()),
            1 => {
                let nruns = r.varint()? as usize;
                if nruns > page_size {
                    return Err(err(format!("implausible run count {nruns}")));
                }
                let mut runs = Vec::with_capacity(nruns);
                let mut prev_end = 0usize;
                for _ in 0..nruns {
                    let gap = r.varint()? as usize;
                    let len = r.varint()? as usize;
                    let offset = prev_end
                        .checked_add(gap)
                        .ok_or_else(|| err("run offset overflow"))?;
                    let end = offset
                        .checked_add(len)
                        .ok_or_else(|| err("run length overflow"))?;
                    if len == 0 || end > page_size {
                        return Err(err(format!("run [{offset}, {end}) escapes the page")));
                    }
                    runs.push(Run {
                        offset,
                        bytes: r.take(len)?.to_vec(),
                    });
                    prev_end = end;
                }
                PagePayload::Runs(runs)
            }
            t => return Err(err(format!("unknown payload tag {t}"))),
        };
        out.push(PageDelta {
            page: prev_page,
            payload,
        });
    }
    if r.1 != blob.len() {
        return Err(err("trailing bytes after last record"));
    }
    Ok(out)
}

/// Apply one payload to a page buffer.
///
/// # Errors
///
/// Returns [`DeltaError`] if a full payload or run does not fit `page`.
pub fn apply(payload: &PagePayload, page: &mut [u8]) -> Result<(), DeltaError> {
    match payload {
        PagePayload::Full(bytes) => {
            if bytes.len() != page.len() {
                return Err(err("full payload size mismatch"));
            }
            page.copy_from_slice(bytes);
        }
        PagePayload::Runs(runs) => {
            for r in runs {
                let end = r.offset + r.bytes.len();
                if end > page.len() {
                    return Err(err("run escapes the page"));
                }
                page[r.offset..end].copy_from_slice(&r.bytes);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: usize = 4096;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn rand_page(state: &mut u64) -> Vec<u8> {
        (0..PAGE / 8)
            .flat_map(|_| splitmix64(state).to_le_bytes())
            .collect()
    }

    #[test]
    fn diff_of_equal_slices_is_empty() {
        let a = vec![7u8; 64];
        assert!(diff(&a, &a, MIN_GAP).is_empty());
    }

    #[test]
    fn diff_finds_isolated_changes() {
        let base = vec![0u8; 64];
        let mut cur = base.clone();
        cur[3] = 1;
        cur[40] = 2;
        let runs = diff(&base, &cur, MIN_GAP);
        assert_eq!(runs.len(), 2);
        assert_eq!((runs[0].offset, runs[0].bytes.as_slice()), (3, &[1u8][..]));
        assert_eq!((runs[1].offset, runs[1].bytes.as_slice()), (40, &[2u8][..]));
    }

    #[test]
    fn diff_coalesces_short_gaps() {
        let base = vec![0u8; 64];
        let mut cur = base.clone();
        cur[10] = 1;
        cur[14] = 2; // gap of 3 < MIN_GAP: one run
        let runs = diff(&base, &cur, MIN_GAP);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].offset, 10);
        assert_eq!(runs[0].bytes.len(), 5);
    }

    #[test]
    fn sparse_page_delta_is_tiny_and_roundtrips() {
        let base = vec![0u8; PAGE];
        let mut cur = base.clone();
        cur[100..108].copy_from_slice(&[9; 8]);
        let d = page_delta(7, Some(&base), &cur, MIN_GAP);
        assert!(matches!(d.payload, PagePayload::Runs(_)));
        let blob = encode(std::slice::from_ref(&d), PAGE);
        assert!(blob.len() < 32, "sparse delta took {} bytes", blob.len());
        let back = decode(&blob, PAGE).unwrap();
        assert_eq!(back, vec![d.clone()]);
        let mut rebuilt = base.clone();
        apply(&back[0].payload, &mut rebuilt).unwrap();
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn rewritten_page_falls_back_to_full() {
        let mut s = 1u64;
        let base = rand_page(&mut s);
        let cur = rand_page(&mut s);
        let d = page_delta(0, Some(&base), &cur, MIN_GAP);
        assert!(matches!(d.payload, PagePayload::Full(_)));
        let blob = encode(std::slice::from_ref(&d), PAGE);
        // Full fallback costs the page + a few header bytes, never more.
        assert!(blob.len() <= PAGE + 8);
    }

    #[test]
    fn missing_baseline_ships_full_page() {
        let cur = vec![3u8; PAGE];
        let d = page_delta(0, None, &cur, MIN_GAP);
        assert_eq!(d.payload, PagePayload::Full(cur));
    }

    #[test]
    fn multi_page_blob_roundtrips() {
        let mut s = 42u64;
        let mut deltas = Vec::new();
        for page in [3u64, 4, 9, 1000] {
            let base = rand_page(&mut s);
            let mut cur = base.clone();
            for _ in 0..(splitmix64(&mut s) % 20) {
                let at = (splitmix64(&mut s) as usize) % PAGE;
                cur[at] = splitmix64(&mut s) as u8;
            }
            deltas.push(page_delta(page, Some(&base), &cur, MIN_GAP));
        }
        let blob = encode(&deltas, PAGE);
        assert_eq!(decode(&blob, PAGE).unwrap(), deltas);
    }

    #[test]
    fn fuzz_diff_apply_is_identity() {
        // Fixed-seed fuzz: random base, random mutation patterns (sparse
        // pokes, dense smears, block rewrites), always apply(diff) == cur.
        let mut s = 0xDEAD_BEEFu64;
        for round in 0..200 {
            let base = rand_page(&mut s);
            let mut cur = base.clone();
            match round % 4 {
                0 => {
                    for _ in 0..(splitmix64(&mut s) % 32) {
                        let at = (splitmix64(&mut s) as usize) % PAGE;
                        cur[at] = splitmix64(&mut s) as u8;
                    }
                }
                1 => {
                    let start = (splitmix64(&mut s) as usize) % PAGE;
                    let len = ((splitmix64(&mut s) as usize) % 512).min(PAGE - start);
                    for b in &mut cur[start..start + len] {
                        *b = splitmix64(&mut s) as u8;
                    }
                }
                2 => cur = rand_page(&mut s),
                _ => {} // unchanged page
            }
            let d = page_delta(round as u64, Some(&base), &cur, MIN_GAP);
            let blob = encode(std::slice::from_ref(&d), PAGE);
            let back = decode(&blob, PAGE).unwrap();
            assert_eq!(back.len(), 1);
            let mut rebuilt = base.clone();
            apply(&back[0].payload, &mut rebuilt).unwrap();
            assert_eq!(rebuilt, cur, "round {round}");
            // The delta encoding never beats a full page by losing.
            assert!(blob.len() <= PAGE + 8, "round {round}: {}", blob.len());
        }
    }

    #[test]
    fn corrupt_blobs_error_not_panic() {
        let base = vec![0u8; PAGE];
        let mut cur = base.clone();
        cur[5] = 1;
        let d = page_delta(0, Some(&base), &cur, MIN_GAP);
        let blob = encode(&[d], PAGE);
        // Every truncation errors cleanly.
        for cut in 0..blob.len() {
            assert!(decode(&blob[..cut], PAGE).is_err(), "cut at {cut}");
        }
        // Bad tag.
        let mut bad = blob.clone();
        bad[2] = 9; // payload tag position for a single small-page record
        assert!(decode(&bad, PAGE).is_err());
        // A run escaping the page.
        let escape = encode(
            &[PageDelta {
                page: 0,
                payload: PagePayload::Runs(vec![Run {
                    offset: PAGE - 2,
                    bytes: vec![1, 2],
                }]),
            }],
            PAGE,
        );
        // Grow the run length varint past the page edge.
        let mut bad = escape.clone();
        *bad.last_mut().unwrap() = 0xFF; // corrupt final byte; decode must not panic
        let _ = decode(&bad, PAGE);
    }

    #[test]
    fn apply_rejects_out_of_range_runs() {
        let mut page = vec![0u8; 16];
        let p = PagePayload::Runs(vec![Run {
            offset: 15,
            bytes: vec![1, 2, 3],
        }]);
        assert!(apply(&p, &mut page).is_err());
        let f = PagePayload::Full(vec![0u8; 8]);
        assert!(apply(&f, &mut page).is_err());
    }
}
