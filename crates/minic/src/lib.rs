//! MiniC — the front-end of the Native Offloader reproduction.
//!
//! The paper's prototype compiles C with clang and partitions at LLVM IR
//! level (§2, Fig. 1): "since IR codes are independent from source code
//! languages and target machines, the IR level partitioning allows Native
//! Offloader to easily enlarge its source language and target machine
//! applicability." This crate plays the clang role for a C subset rich
//! enough to express the paper's workloads:
//!
//! * scalars `char`, `short`, `int`, `long` (64-bit), `double`, `void`
//! * pointers, fixed-size arrays, `struct`s, `typedef`
//! * function pointers (including arrays of them — the `evals` table of
//!   Fig. 3 and the `commands`/`evalRoutines` tables of §5.1)
//! * full expression and statement grammar of everyday C (including
//!   `for`/`while`/`do`, `++`/`--`, compound assignment, ternary,
//!   short-circuit logic, casts, `sizeof`)
//! * the libc-flavoured builtins the VM implements (`malloc`, `printf`,
//!   `scanf`, `fopen`/`fread`/..., math), plus `asm("...")` and
//!   `syscall(n, ...)` so tests can mark regions machine specific
//!
//! # Example
//!
//! ```
//! let module = offload_minic::compile(
//!     "int add(int a, int b) { return a + b; }\n\
//!      int main() { return add(2, 3); }",
//!     "demo",
//! )?;
//! assert!(module.function_by_name("add").is_some());
//! # Ok::<(), offload_minic::CompileError>(())
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod token;

pub use error::CompileError;

use offload_ir::Module;

/// Compile MiniC source text into an IR [`Module`].
///
/// # Errors
///
/// Returns a [`CompileError`] carrying the source line on lexical, syntax
/// or semantic errors.
pub fn compile(source: &str, module_name: &str) -> Result<Module, CompileError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(tokens)?;
    lower::lower(&unit, module_name)
}

#[cfg(test)]
mod tests {
    #[test]
    fn compile_hello() {
        let m = super::compile(r#"int main() { printf("hi\n"); return 0; }"#, "hello").unwrap();
        assert!(m.entry.is_some());
        assert!(offload_ir::verify::verify_module(&m).is_ok());
    }

    #[test]
    fn error_carries_line() {
        let err = super::compile("int main() { return }", "bad").unwrap_err();
        assert_eq!(err.line, 1);
    }
}
