//! Host-side microbenchmarks of the simulation substrate itself: IR
//! interpretation throughput, the LZ codec, paged-memory access, and the
//! MiniC front-end. These measure *wall-clock* performance of the
//! simulator (unlike the figure benches, which report simulated time).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use offload_machine::host::LocalHost;
use offload_machine::loader;
use offload_machine::mem::{BackingPolicy, Memory};
use offload_machine::target::TargetSpec;
use offload_machine::vm::{StackBank, Vm};
use offload_net::lz;

const HOT_LOOP: &str = "
    int main() {
        int i; long acc = 0;
        for (i = 0; i < 200000; i++) acc += (i * 7) % 31;
        return (int)(acc % 97);
    }";

fn bench_interpreter(c: &mut Criterion) {
    let module = offload_minic::compile(HOT_LOOP, "hot").expect("compiles");
    let spec = TargetSpec::xps_8700();
    let mut group = c.benchmark_group("substrate/interpreter");
    // ~1.4M instructions per run.
    group.throughput(Throughput::Elements(1_400_000));
    group.bench_function("hot_loop", |b| {
        b.iter(|| {
            let image = loader::load(&module, &spec.data_layout()).expect("loads");
            let mut host = LocalHost::new();
            let mut vm = Vm::new(&module, &spec, image, StackBank::Mobile);
            vm.run_entry(&mut host).expect("runs")
        });
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let compressible: Vec<u8> = (0..262_144u32).map(|i| ((i / 13) % 40) as u8).collect();
    let mut x = 0x2545_F491u32;
    let noise: Vec<u8> = (0..262_144)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            (x >> 24) as u8
        })
        .collect();
    let mut group = c.benchmark_group("substrate/lz");
    group.throughput(Throughput::Bytes(262_144));
    group.bench_function("compress_compressible", |b| {
        b.iter(|| lz::compress(&compressible));
    });
    group.bench_function("compress_noise", |b| {
        b.iter(|| lz::compress(&noise));
    });
    let packed = lz::compress(&compressible);
    group.bench_function("decompress", |b| {
        b.iter(|| lz::decompress(&packed).expect("roundtrips"));
    });
    group.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/memory");
    group.throughput(Throughput::Bytes(1 << 20));
    group.bench_function("write_read_1mb", |b| {
        b.iter(|| {
            let mut m = Memory::new(BackingPolicy::DemandZero);
            let chunk = [0xA5u8; 4096];
            for page in 0..256u64 {
                m.write(page * 4096, &chunk).expect("writes");
            }
            let mut buf = [0u8; 4096];
            for page in 0..256u64 {
                m.read(page * 4096, &mut buf).expect("reads");
            }
            m.dirty_count()
        });
    });
    group.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let source = offload_workloads::by_short_name("sjeng").expect("exists").source;
    let mut group = c.benchmark_group("substrate/minic");
    group.bench_function("compile_sjeng_miniature", |b| {
        b.iter(|| offload_minic::compile(source, "sjeng").expect("compiles"));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Simulated-time measurements are deterministic (zero variance), which
    // breaks Criterion's plot generation; plots stay off.
    config = Criterion::default().without_plots();
    targets = bench_interpreter, bench_codec, bench_memory, bench_frontend
}
criterion_main!(benches);
