//! Property tests for Equation 1 and the dynamic-estimation decision
//! boundary — the logic that decides whether a user's task leaves the
//! phone at all.

use native_offloader::compiler::estimate::{equation1, EstimateInput};
use offload_net::Link;
use proptest::prelude::*;

fn input() -> impl Strategy<Value = EstimateInput> {
    (
        0.001f64..100.0,
        1u64..100,
        0u64..1_000_000_000,
        1.5f64..20.0,
        1_000_000u64..1_000_000_000,
    )
        .prop_map(|(tm_s, invocations, mem_bytes, ratio, bandwidth_bps)| EstimateInput {
            tm_s,
            invocations,
            mem_bytes,
            ratio,
            bandwidth_bps,
        })
}

proptest! {
    /// Tg decomposes exactly: Tg = Tideal − Tc, with both parts
    /// non-negative for valid inputs.
    #[test]
    fn decomposition_holds(i in input()) {
        let e = equation1(i);
        prop_assert!((e.t_gain_s - (e.t_ideal_s - e.t_comm_s)).abs() < 1e-9);
        prop_assert!(e.t_ideal_s >= 0.0);
        prop_assert!(e.t_comm_s >= 0.0);
    }

    /// More bandwidth never hurts: Tg is monotone non-decreasing in BW.
    #[test]
    fn monotone_in_bandwidth(i in input(), extra in 1u64..1_000_000_000) {
        let better = EstimateInput { bandwidth_bps: i.bandwidth_bps.saturating_add(extra), ..i };
        prop_assert!(equation1(better).t_gain_s >= equation1(i).t_gain_s - 1e-12);
    }

    /// A faster server never hurts: Tg is monotone in R.
    #[test]
    fn monotone_in_ratio(i in input(), extra in 0.1f64..50.0) {
        let better = EstimateInput { ratio: i.ratio + extra, ..i };
        prop_assert!(equation1(better).t_gain_s >= equation1(i).t_gain_s - 1e-12);
    }

    /// More memory or more invocations never helps.
    #[test]
    fn monotone_against_traffic(i in input(), extra_mem in 1u64..1_000_000_000, extra_invo in 1u64..100) {
        let heavier = EstimateInput { mem_bytes: i.mem_bytes + extra_mem, ..i };
        prop_assert!(equation1(heavier).t_gain_s <= equation1(i).t_gain_s + 1e-12);
        let chattier = EstimateInput { invocations: i.invocations + extra_invo, ..i };
        prop_assert!(equation1(chattier).t_gain_s <= equation1(i).t_gain_s + 1e-12);
    }

    /// The runtime decision agrees with raw Equation 1 on every input:
    /// there is exactly one decision boundary and it sits at Tg = 0.
    #[test]
    fn decision_matches_equation(tm_ms in 1u64..1_000, mem_kb in 1u64..1_000_000) {
        use native_offloader::OffloadTask;
        use offload_ir::{FuncId, Type};
        let task = OffloadTask {
            id: 1,
            dispatcher: FuncId(0),
            local_func: FuncId(1),
            name: "t".into(),
            params: vec![],
            ret: Type::Void,
            tm_per_invocation_s: tm_ms as f64 / 1e3,
            mem_bytes: mem_kb * 1024,
            prefetch_pages: vec![],
        };
        for link in [Link::wifi_802_11n(), Link::wifi_802_11ac()] {
            let (go, est) = native_offloader::runtime::estimator::decide(&task, 6.0, &link);
            prop_assert_eq!(go, est.t_gain_s > 0.0);
        }
    }
}
