//! `reproduce profile` — the trace-analytics benchmark behind
//! `BENCH_pr6.json`.
//!
//! Every suite workload runs on both paper networks in two modes —
//! `offload` (forced offload, the Fig. 7 defaults) and `stream`
//! (fault-heavy with the stride predictor) — with a recording collector.
//! Each cell's trace is reduced to a
//! [`ProfileSummary`](offload_obs::profile::ProfileSummary): the
//! critical-path lane attribution (where every simulated second of
//! makespan went), the remote-I/O op table, and the per-cell fault /
//! frame latency quantiles. Suite-wide, the makespan / fault-service /
//! frame-serialization distributions are folded into percentile rows.
//!
//! Everything is deterministic simulated time, so the committed artifact
//! gates CI: `check_against` re-measures chess on the slow link and
//! requires the makespan and every lane to be no worse than committed,
//! and the critical path must reconcile with the reported makespan **bit
//! for bit** (the same discipline `runtime::derive` enforces).
//!
//! Profiling is observe-only by construction: the sweep runs every cell
//! a second time with the no-op collector and asserts console output and
//! makespan bits are identical.

use std::fmt::Write as _;

use native_offloader::{SessionConfig, StreamMode};
use offload_net::Link;
use offload_obs::metrics::EXACT_SAMPLE_CAP;
use offload_obs::profile::{critical_path, summaries_to_json, Lane, ProfileSummary};
use offload_obs::{Histogram, MetricsSnapshot, TraceCollector};

use crate::farm::suite;
use crate::stream::{fault_heavy, links};

/// The two run modes the sweep covers.
pub const MODES: [&str; 2] = ["offload", "stream"];

/// Session config for one profiled mode on `link`.
///
/// # Panics
///
/// On an unknown mode name.
#[must_use]
pub fn mode_config(mode: &str, link: Link) -> SessionConfig {
    match mode {
        "offload" => {
            // The Fig. 7 defaults with estimation forced so every
            // workload actually offloads (profiles of local runs would
            // be a single compute_local bar).
            let mut cfg = SessionConfig::with_link(link);
            cfg.dynamic_estimation = false;
            cfg
        }
        "stream" => fault_heavy(link, StreamMode::Stride, None),
        other => panic!("unknown profile mode {other}"),
    }
}

/// Per-cell latency quantiles read off the collector's histograms.
#[must_use]
pub fn cell_quantiles(metrics: &MetricsSnapshot) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (hist, label) in [("fault_latency_s", "fault"), ("frame_seconds", "frame")] {
        let Some(h) = metrics.histogram(hist) else {
            continue;
        };
        for (q, qname) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")] {
            if let Some(v) = h.quantile(q) {
                out.push((format!("{label}_{qname}_s"), v));
            }
        }
    }
    out
}

/// Run one (workload, link, mode) cell traced and summarize it.
///
/// # Panics
///
/// If the run fails, the trace ring drops records, the critical path
/// does not reconcile bit-for-bit with the reported makespan, or the
/// traced run's results diverge from an untraced run (profiling must be
/// observe-only).
#[must_use]
pub fn profile_cell(
    name: &str,
    app: &native_offloader::CompiledApp,
    input: &native_offloader::WorkloadInput,
    link_name: &str,
    link: Link,
    mode: &str,
) -> (
    ProfileSummary,
    native_offloader::RunReport,
    Vec<offload_obs::Record>,
) {
    let cfg = mode_config(mode, link);
    let mut obs = TraceCollector::with_capacity(1 << 20);
    let rep = app
        .run_offloaded_traced(input, &cfg, &mut obs)
        .unwrap_or_else(|e| panic!("{name} ({link_name}, {mode}) failed: {e}"));
    assert_eq!(obs.dropped(), 0, "{name}: trace ring too small");
    let records = obs.records();
    let cp = critical_path(&records);
    assert_eq!(
        cp.makespan_s.to_bits(),
        rep.total_seconds.to_bits(),
        "{name} ({link_name}, {mode}): critical path does not reconcile: \
         attributed {} s vs reported {} s",
        cp.makespan_s,
        rep.total_seconds
    );
    // Observe-only gate: the same cell untraced must produce identical
    // results — the collector can never feed back into the simulation.
    let untraced = app
        .run_offloaded(input, &cfg)
        .unwrap_or_else(|e| panic!("{name} ({link_name}, {mode}) untraced failed: {e}"));
    assert_eq!(
        untraced.total_seconds.to_bits(),
        rep.total_seconds.to_bits(),
        "{name} ({link_name}, {mode}): tracing changed the makespan"
    );
    assert_eq!(
        untraced.console, rep.console,
        "{name} ({link_name}, {mode}): tracing changed program output"
    );
    let summary = ProfileSummary::from_critical_path(
        name,
        link_name,
        mode,
        &cp,
        cell_quantiles(&rep.metrics),
    );
    (summary, rep, records)
}

/// Sweep the whole suite: 18 workloads × 2 links × 2 modes. Returns the
/// per-cell summaries plus each cell's metrics snapshot (for the
/// suite-wide distribution fold).
#[must_use]
pub fn sweep() -> (Vec<ProfileSummary>, Vec<(String, String, MetricsSnapshot)>) {
    let mut out = Vec::new();
    let mut metrics = Vec::new();
    for (name, app, input) in suite() {
        for (link_name, link) in links() {
            for mode in MODES {
                let (summary, rep, _) =
                    profile_cell(&name, &app, &input, link_name, link.clone(), mode);
                out.push(summary);
                metrics.push((name.clone(), mode.to_string(), rep.metrics));
            }
        }
    }
    (out, metrics)
}

/// Fold `h` into `acc` (bucket-wise; both sides must share bounds).
fn merge_into(acc: &mut Option<Histogram>, h: &Histogram) {
    match acc {
        None => *acc = Some(h.clone()),
        Some(a) => {
            assert_eq!(a.bounds, h.bounds, "histogram bounds diverged");
            for (c, d) in a.counts.iter_mut().zip(&h.counts) {
                *c += d;
            }
            a.count += h.count;
            a.sum += h.sum;
            a.min = a.min.min(h.min);
            a.max = a.max.max(h.max);
            for &s in &h.samples {
                if a.samples.len() < EXACT_SAMPLE_CAP {
                    a.samples.push(s);
                }
            }
        }
    }
}

/// Suite-wide distributions for one mode: makespan across cells plus the
/// merged fault-service and frame-serialization histograms.
#[must_use]
pub fn suite_quantiles(
    summaries: &[ProfileSummary],
    cell_metrics: &[(String, String, MetricsSnapshot)],
    mode: &str,
) -> Vec<(String, f64)> {
    let mut makespan = Histogram::new(&offload_obs::metrics::exp_buckets(1e-3, 4.0, 12));
    for s in summaries.iter().filter(|s| s.mode == mode) {
        makespan.observe(s.makespan_s);
    }
    let mut fault: Option<Histogram> = None;
    let mut frame: Option<Histogram> = None;
    for (_, m, metrics) in cell_metrics.iter().filter(|(_, m, _)| m == mode) {
        debug_assert_eq!(m, mode);
        if let Some(h) = metrics.histogram("fault_latency_s") {
            merge_into(&mut fault, h);
        }
        if let Some(h) = metrics.histogram("frame_seconds") {
            merge_into(&mut frame, h);
        }
    }
    let mut out = Vec::new();
    for (label, h) in [
        ("makespan", Some(&makespan).filter(|h| h.count > 0)),
        ("fault", fault.as_ref()),
        ("frame", frame.as_ref()),
    ] {
        let Some(h) = h else { continue };
        for (q, qname) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")] {
            if let Some(v) = h.quantile(q) {
                out.push((format!("{label}_{qname}_s"), v));
            }
        }
    }
    out
}

/// Render the full artifact: the `bench_pr6.v1` profile document with a
/// trailing suite-quantile section per mode.
#[must_use]
pub fn to_json(
    summaries: &[ProfileSummary],
    suite_sections: &[(&str, Vec<(String, f64)>)],
) -> String {
    let mut j = summaries_to_json(summaries);
    // summaries_to_json closes with "  ]\n}\n"; splice the suite section
    // in before the final brace.
    let trimmed = j.trim_end_matches("}\n").len();
    j.truncate(trimmed);
    j.push_str("  ,\"suite\": {\n");
    for (i, (mode, qs)) in suite_sections.iter().enumerate() {
        let _ = write!(j, "    \"{mode}\": {{");
        for (k, (name, v)) in qs.iter().enumerate() {
            if k > 0 {
                j.push_str(", ");
            }
            let _ = write!(j, "\"{name}\": {v}");
        }
        j.push('}');
        j.push_str(if i + 1 == suite_sections.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    j.push_str("  }\n}\n");
    j
}

/// Render a human summary table: one row per cell with its makespan and
/// dominant lane.
#[must_use]
pub fn render_table(summaries: &[ProfileSummary]) -> String {
    let mut out = String::from(
        "workload         link      mode     makespan_s   dominant lane            share\n",
    );
    for s in summaries {
        let (lane, lane_s) = Lane::ALL
            .into_iter()
            .map(|l| (l, s.lane_s(l)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let share = if s.makespan_s > 0.0 {
            lane_s / s.makespan_s * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<16} {:<9} {:<8} {:>10.4}   {:<16} {:>12.1}%",
            s.workload,
            s.link,
            s.mode,
            s.makespan_s,
            lane.name(),
            share
        );
    }
    out
}

/// The `reproduce profile --check` gate: re-profile chess on the slow
/// link in offload mode and require the makespan and every lane to be no
/// worse than the committed artifact (plus the bit-for-bit reconcile
/// assert inside [`profile_cell`]).
///
/// # Errors
///
/// A message describing the regression or a parse failure.
pub fn check_against(committed: &str) -> Result<String, String> {
    let cells = offload_obs::profile::parse_summaries(committed);
    let base = cells
        .iter()
        .find(|s| s.workload == "chess" && s.link == "802.11n" && s.mode == "offload")
        .ok_or_else(|| "committed profile lacks the chess/802.11n/offload cell".to_string())?;
    let input = offload_workloads::chess::input(9, 2);
    let app = native_offloader::Offloader::new()
        .compile_source(offload_workloads::chess::SOURCE, "chess", &input)
        .map_err(|e| format!("chess failed to compile: {e}"))?;
    let (fresh, _, _) = profile_cell(
        "chess",
        &app,
        &input,
        "802.11n",
        Link::wifi_802_11n(),
        "offload",
    );
    let tol = |x: f64| x * 1.01 + 1e-6;
    if fresh.makespan_s > tol(base.makespan_s) {
        return Err(format!(
            "chess makespan regressed: {:.6} s vs committed {:.6} s",
            fresh.makespan_s, base.makespan_s
        ));
    }
    for lane in Lane::ALL {
        let (b, n) = (base.lane_s(lane), fresh.lane_s(lane));
        if n > tol(b) {
            return Err(format!(
                "chess lane {} regressed: {n:.6} s vs committed {b:.6} s",
                lane.name()
            ));
        }
    }
    Ok(format!(
        "chess 802.11n offload makespan {:.4} s (committed {:.4} s), lanes within tolerance",
        fresh.makespan_s, base.makespan_s
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_obs::metrics::exp_buckets;

    #[test]
    fn mode_configs_differ_as_documented() {
        let off = mode_config("offload", Link::wifi_802_11n());
        assert!(!off.dynamic_estimation);
        assert!(off.prefetch);
        let st = mode_config("stream", Link::wifi_802_11n());
        assert!(!st.prefetch);
        assert_eq!(st.stream_mode, StreamMode::Stride);
    }

    #[test]
    fn suite_quantiles_merge_across_cells() {
        let mk = |workload: &str, mode: &str, makespan: f64| ProfileSummary {
            workload: workload.into(),
            link: "802.11n".into(),
            mode: mode.into(),
            makespan_s: makespan,
            lanes: [makespan, 0.0, 0.0, 0.0, 0.0, 0.0],
            ops: vec![],
            quantiles: vec![],
        };
        let summaries = vec![
            mk("a", "offload", 0.1),
            mk("b", "offload", 0.3),
            mk("a", "stream", 0.2),
        ];
        let mut reg = offload_obs::MetricsRegistry::new();
        reg.observe("fault_latency_s", &exp_buckets(1e-6, 10.0, 8), 1e-4);
        reg.observe("fault_latency_s", &exp_buckets(1e-6, 10.0, 8), 3e-4);
        let snap_a = reg.snapshot();
        let mut reg2 = offload_obs::MetricsRegistry::new();
        reg2.observe("fault_latency_s", &exp_buckets(1e-6, 10.0, 8), 5e-4);
        let snap_b = reg2.snapshot();
        let metrics = vec![
            ("a".to_string(), "offload".to_string(), snap_a),
            ("b".to_string(), "offload".to_string(), snap_b),
        ];
        let qs = suite_quantiles(&summaries, &metrics, "offload");
        let get = |k: &str| qs.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        // Exact small-sample path: the merged fault histogram holds all
        // three samples, so p50 is the middle one.
        assert_eq!(get("fault_p50_s"), Some(3e-4));
        assert_eq!(get("makespan_p50_s"), Some(0.2));
        // Stream mode has no fault metrics here.
        let qs_stream = suite_quantiles(&summaries, &metrics, "stream");
        assert!(qs_stream.iter().all(|(n, _)| !n.starts_with("fault")));
    }

    #[test]
    fn artifact_json_parses_back_and_carries_suite_section() {
        let s = ProfileSummary {
            workload: "chess".into(),
            link: "802.11n".into(),
            mode: "offload".into(),
            makespan_s: 0.5,
            lanes: [0.1, 0.2, 0.1, 0.05, 0.03, 0.02],
            ops: vec![("printf".into(), 0.01)],
            quantiles: vec![("fault_p99_s".into(), 0.001)],
        };
        let j = to_json(
            std::slice::from_ref(&s),
            &[("offload", vec![("makespan_p50_s".to_string(), 0.5)])],
        );
        let back = offload_obs::profile::parse_summaries(&j);
        assert_eq!(back, vec![s]);
        assert!(j.contains("\"suite\""));
        assert!(j.contains("\"makespan_p50_s\": 0.5"));
        let table = render_table(&back);
        assert!(table.contains("chess"));
        assert!(table.contains("compute_server"));
    }

    /// The committed artifact must parse, cover the full 72-cell sweep
    /// (18 workloads × 2 links × 2 modes), include the gate cell, and
    /// reconcile: each cell's lane partition must re-sum to its makespan
    /// within float-reassociation noise.
    #[test]
    fn committed_artifact_covers_the_sweep_and_reconciles() {
        let committed = include_str!("../../../BENCH_pr6.json");
        let cells = offload_obs::profile::parse_summaries(committed);
        assert_eq!(cells.len(), 72, "expected 18 workloads x 2 links x 2 modes");
        assert!(cells
            .iter()
            .any(|s| s.workload == "chess" && s.link == "802.11n" && s.mode == "offload"));
        for s in &cells {
            let lane_sum: f64 = s.lanes.iter().sum();
            let tol = s.makespan_s.abs() * 1e-9 + 1e-9;
            assert!(
                (lane_sum - s.makespan_s).abs() <= tol,
                "{}/{}/{}: lanes sum {} vs makespan {}",
                s.workload,
                s.link,
                s.mode,
                lane_sum,
                s.makespan_s
            );
        }
        assert!(committed.contains("\"suite\""));
        // A self-diff of the committed artifact is exactly empty.
        let regs = offload_obs::profile::diff_summaries(
            &cells,
            &cells,
            offload_obs::profile::DiffTolerance::default(),
        );
        assert!(regs.is_empty(), "{regs:?}");
    }
}
