//! Byte-addressable paged memory with present/dirty tracking.
//!
//! Each simulated device owns one [`Memory`]. Pages are created on first
//! write for addresses the device is allowed to back locally; accesses to
//! *absent* pages surface as [`MemError::PageFault`], which the offload
//! runtime turns into copy-on-demand transfers (§4). Writes set per-page
//! dirty bits, which the finalization step harvests to send only modified
//! pages home.

use std::collections::BTreeMap;

use crate::PAGE_SIZE;

/// Page number of an address.
pub fn page_of(addr: u64) -> u64 {
    addr / PAGE_SIZE
}

/// First address of a page.
pub fn page_base(page: u64) -> u64 {
    page * PAGE_SIZE
}

/// A memory-access failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The page is not present on this device; the runtime may service it
    /// (copy-on-demand) and retry.
    PageFault {
        /// Faulting page number.
        page: u64,
    },
    /// The address is outside this device's mapped policy (wild pointer).
    AccessViolation {
        /// Faulting address.
        addr: u64,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::PageFault { page } => write!(f, "page fault at page {page:#x}"),
            MemError::AccessViolation { addr } => write!(f, "access violation at {addr:#x}"),
        }
    }
}

impl std::error::Error for MemError {}

#[derive(Debug, Clone)]
struct Page {
    data: Box<[u8]>,
    dirty: bool,
}

impl Page {
    fn zeroed() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE as usize].into_boxed_slice(),
            dirty: false,
        }
    }
}

/// How a device may back pages it has never seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackingPolicy {
    /// Create zeroed pages on demand for any address (the mobile device:
    /// it owns the canonical memory).
    DemandZero,
    /// Fault on any absent page (the server during offload execution: an
    /// absent page means the data lives on the mobile device and must be
    /// copied on demand).
    FaultOnAbsent,
}

/// One device's physical memory plus its page table.
#[derive(Debug, Clone)]
pub struct Memory {
    pages: BTreeMap<u64, Page>,
    policy: BackingPolicy,
    /// Pages written since the last [`Memory::clear_dirty`].
    dirty_count: usize,
}

impl Memory {
    /// An empty memory with the given backing policy.
    pub fn new(policy: BackingPolicy) -> Self {
        Memory {
            pages: BTreeMap::new(),
            policy,
            dirty_count: 0,
        }
    }

    /// The device's backing policy.
    pub fn policy(&self) -> BackingPolicy {
        self.policy
    }

    /// Change the backing policy (the server flips to
    /// [`BackingPolicy::FaultOnAbsent`] when an offload session starts).
    pub fn set_policy(&mut self, policy: BackingPolicy) {
        self.policy = policy;
    }

    /// `true` if `page` is present.
    pub fn is_present(&self, page: u64) -> bool {
        self.pages.contains_key(&page)
    }

    /// Number of present pages.
    pub fn present_count(&self) -> usize {
        self.pages.len()
    }

    /// Install a page's bytes (copy-on-demand delivery or prefetch). The
    /// installed page starts clean.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly one page long.
    pub fn install_page(&mut self, page: u64, bytes: &[u8]) {
        assert_eq!(bytes.len(), PAGE_SIZE as usize, "partial page install");
        let mut p = Page::zeroed();
        p.data.copy_from_slice(bytes);
        if let Some(old) = self.pages.insert(page, p) {
            if old.dirty {
                self.dirty_count -= 1;
            }
        }
    }

    /// Drop a page (used when a finished offload session tears down the
    /// server process, §4 finalization).
    pub fn evict_page(&mut self, page: u64) {
        if let Some(old) = self.pages.remove(&page) {
            if old.dirty {
                self.dirty_count -= 1;
            }
        }
    }

    /// Drop every page.
    pub fn clear(&mut self) {
        self.pages.clear();
        self.dirty_count = 0;
    }

    /// A snapshot of one present page's bytes.
    pub fn page_bytes(&self, page: u64) -> Option<&[u8]> {
        self.pages.get(&page).map(|p| &*p.data)
    }

    /// Page numbers of all present pages.
    pub fn present_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.pages.keys().copied()
    }

    /// Page numbers of all dirty pages.
    pub fn dirty_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.pages.iter().filter(|(_, p)| p.dirty).map(|(n, _)| *n)
    }

    /// Number of dirty pages.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Clear every dirty bit (after a write-back).
    pub fn clear_dirty(&mut self) {
        for p in self.pages.values_mut() {
            p.dirty = false;
        }
        self.dirty_count = 0;
    }

    fn page_for_read(&mut self, page: u64) -> Result<&Page, MemError> {
        if !self.pages.contains_key(&page) {
            match self.policy {
                BackingPolicy::DemandZero => {
                    self.pages.insert(page, Page::zeroed());
                }
                BackingPolicy::FaultOnAbsent => return Err(MemError::PageFault { page }),
            }
        }
        Ok(self.pages.get(&page).expect("just ensured"))
    }

    fn page_for_write(&mut self, page: u64) -> Result<&mut Page, MemError> {
        if !self.pages.contains_key(&page) {
            match self.policy {
                BackingPolicy::DemandZero => {
                    self.pages.insert(page, Page::zeroed());
                }
                BackingPolicy::FaultOnAbsent => return Err(MemError::PageFault { page }),
            }
        }
        let p = self.pages.get_mut(&page).expect("just ensured");
        if !p.dirty {
            p.dirty = true;
            self.dirty_count += 1;
        }
        Ok(p)
    }

    /// Read `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::PageFault`] for the first absent page touched.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        let mut addr = addr;
        let mut off = 0usize;
        while off < buf.len() {
            let page = page_of(addr);
            let in_page = (addr - page_base(page)) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            let p = self.page_for_read(page)?;
            buf[off..off + n].copy_from_slice(&p.data[in_page..in_page + n]);
            addr += n as u64;
            off += n;
        }
        Ok(())
    }

    /// Write `buf` starting at `addr`, marking touched pages dirty.
    ///
    /// # Errors
    ///
    /// [`MemError::PageFault`] for the first absent page touched.
    pub fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemError> {
        let mut addr = addr;
        let mut off = 0usize;
        while off < buf.len() {
            let page = page_of(addr);
            let in_page = (addr - page_base(page)) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            let p = self.page_for_write(page)?;
            p.data[in_page..in_page + n].copy_from_slice(&buf[off..off + n]);
            addr += n as u64;
            off += n;
        }
        Ok(())
    }

    /// Read a NUL-terminated C string at `addr` (capped at 1 MiB).
    ///
    /// # Errors
    ///
    /// Propagates page faults; [`MemError::AccessViolation`] if no NUL is
    /// found within the cap.
    pub fn read_cstr(&mut self, addr: u64) -> Result<Vec<u8>, MemError> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            let mut byte = [0u8];
            self.read(a, &mut byte)?;
            if byte[0] == 0 {
                return Ok(out);
            }
            out.push(byte[0]);
            a += 1;
            if out.len() > 1 << 20 {
                return Err(MemError::AccessViolation { addr });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_zero_reads_zeroes() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        let mut buf = [0xFFu8; 8];
        m.read(0x1234, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn fault_on_absent_page() {
        let mut m = Memory::new(BackingPolicy::FaultOnAbsent);
        let mut buf = [0u8; 4];
        let err = m.read(0x5000, &mut buf).unwrap_err();
        assert_eq!(err, MemError::PageFault { page: 5 });
    }

    #[test]
    fn write_read_roundtrip_across_pages() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let addr = PAGE_SIZE - 100; // straddles three pages
        m.write(addr, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read(addr, &mut back).unwrap();
        assert_eq!(back, data);
        assert!(m.present_count() >= 3);
    }

    #[test]
    fn dirty_tracking() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        m.write(0, &[1, 2, 3]).unwrap();
        m.write(PAGE_SIZE * 5, &[9]).unwrap();
        let dirty: Vec<u64> = m.dirty_pages().collect();
        assert_eq!(dirty, vec![0, 5]);
        assert_eq!(m.dirty_count(), 2);
        m.clear_dirty();
        assert_eq!(m.dirty_count(), 0);
        // Reads do not dirty.
        let mut b = [0u8];
        m.read(0, &mut b).unwrap();
        assert_eq!(m.dirty_count(), 0);
    }

    #[test]
    fn install_and_evict() {
        let mut m = Memory::new(BackingPolicy::FaultOnAbsent);
        let bytes = vec![7u8; PAGE_SIZE as usize];
        m.install_page(3, &bytes);
        let mut b = [0u8; 2];
        m.read(PAGE_SIZE * 3 + 10, &mut b).unwrap();
        assert_eq!(b, [7, 7]);
        // Installed pages are clean until written.
        assert_eq!(m.dirty_count(), 0);
        m.write(PAGE_SIZE * 3, &[1]).unwrap();
        assert_eq!(m.dirty_count(), 1);
        m.evict_page(3);
        assert!(!m.is_present(3));
        assert_eq!(m.dirty_count(), 0);
    }

    #[test]
    fn read_cstr() {
        let mut m = Memory::new(BackingPolicy::DemandZero);
        m.write(100, b"hello\0").unwrap();
        assert_eq!(m.read_cstr(100).unwrap(), b"hello");
    }

    #[test]
    #[should_panic(expected = "partial page install")]
    fn install_requires_full_page() {
        let mut m = Memory::new(BackingPolicy::FaultOnAbsent);
        m.install_page(0, &[1, 2, 3]);
    }
}
